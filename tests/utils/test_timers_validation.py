"""Tests for Timer and the argument validators."""

import time

import pytest

from repro.utils import Timer, check_fraction, check_non_negative, check_positive


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestValidators:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)

    def test_check_non_negative_accepts_zero(self):
        check_non_negative("x", 0)

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative("x", -0.1)

    @pytest.mark.parametrize("ok", [0.1, 0.5, 0.99])
    def test_check_fraction_open_interval(self, ok):
        check_fraction("f", ok)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.2, 1.5])
    def test_check_fraction_rejects_bounds(self, bad):
        with pytest.raises(ValueError):
            check_fraction("f", bad)

    def test_check_fraction_inclusive_allows_bounds(self):
        check_fraction("f", 0.0, inclusive=True)
        check_fraction("f", 1.0, inclusive=True)

    def test_error_message_contains_value(self):
        with pytest.raises(ValueError, match="-3"):
            check_positive("count", -3)
