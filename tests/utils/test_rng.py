"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(7)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(ensure_rng(0), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rng(ensure_rng(0), 2)
        a, b = children[0].random(10), children[1].random(10)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic(self):
        a = spawn_rng(ensure_rng(5), 3)[2].random(4)
        b = spawn_rng(ensure_rng(5), 3)[2].random(4)
        np.testing.assert_array_equal(a, b)

    def test_zero_children(self):
        assert spawn_rng(ensure_rng(0), 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(ensure_rng(0), -1)
