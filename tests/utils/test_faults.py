"""The fault-injection harness itself: arming, firing, byte budgets."""

from __future__ import annotations

import io

import pytest

from repro.utils import faults
from repro.utils.faults import InjectedCrash


class TestInject:
    def test_unarmed_crash_point_is_a_noop(self):
        faults.crash_point("anything.at.all")  # must not raise

    def test_armed_point_fires_once(self):
        with faults.inject("p") as fault:
            with pytest.raises(InjectedCrash, match="'p'"):
                faults.crash_point("p")
            assert fault.fired
            faults.crash_point("p")  # already fired: passes through

    def test_other_points_pass_while_one_is_armed(self):
        with faults.inject("p"):
            faults.crash_point("q")  # must not raise

    def test_disarmed_after_the_block(self):
        with faults.inject("p"):
            pass
        faults.crash_point("p")
        assert faults.active_fault() is None

    def test_skip_passes_early_hits(self):
        with faults.inject("p", skip=2) as fault:
            faults.crash_point("p")
            faults.crash_point("p")
            with pytest.raises(InjectedCrash):
                faults.crash_point("p")
        assert fault.hits == 3

    def test_nesting_is_rejected(self):
        with faults.inject("p"):
            with pytest.raises(RuntimeError, match="already armed"):
                with faults.inject("q"):
                    pass

    def test_fired_reports_unreached_points(self):
        with faults.inject("never.reached") as fault:
            pass
        assert not fault.fired

    def test_byte_limit_faults_skip_plain_crash_points(self):
        # A torn-write fault must fire where the partial bytes can be
        # produced, not at a bare marker of the same name.
        with faults.inject("p", byte_limit=4):
            faults.crash_point("p")  # must not raise


class TestTornWrite:
    def test_unarmed_writes_everything(self):
        buf = io.BytesIO()
        faults.torn_write(buf, b"abcdef", "p")
        assert buf.getvalue() == b"abcdef"

    def test_armed_writes_exactly_the_budget(self):
        buf = io.BytesIO()
        with faults.inject("p", byte_limit=4):
            with pytest.raises(InjectedCrash, match="4 of 6"):
                faults.torn_write(buf, b"abcdef", "p")
        assert buf.getvalue() == b"abcd"

    def test_requires_a_byte_limit_to_tear(self):
        buf = io.BytesIO()
        with faults.inject("p"):  # no byte_limit: torn_write passes through
            faults.torn_write(buf, b"abcdef", "p")
        assert buf.getvalue() == b"abcdef"

    def test_skip_applies_to_whole_writes(self):
        buf = io.BytesIO()
        with faults.inject("p", skip=1, byte_limit=2):
            faults.torn_write(buf, b"aa", "p")
            with pytest.raises(InjectedCrash):
                faults.torn_write(buf, b"bbbb", "p")
        assert buf.getvalue() == b"aabb"


class TestWrapFile:
    def test_unarmed_returns_the_file_itself(self):
        buf = io.BytesIO()
        assert faults.wrap_file(buf, "p") is buf

    def test_budget_spans_multiple_writes(self):
        buf = io.BytesIO()
        with faults.inject("p", byte_limit=5):
            fh = faults.wrap_file(buf, "p")
            fh.write(b"abc")
            with pytest.raises(InjectedCrash, match="budget"):
                fh.write(b"defg")
        assert buf.getvalue() == b"abcde"

    def test_wrapper_delegates_other_attributes(self):
        buf = io.BytesIO()
        with faults.inject("p", byte_limit=100):
            fh = faults.wrap_file(buf, "p")
            fh.write(b"xy")
            assert fh.tell() == 2
            fh.seek(0)
            assert fh.read() == b"xy"

    def test_exhausted_budget_refuses_further_writes(self):
        buf = io.BytesIO()
        with faults.inject("p", byte_limit=2):
            fh = faults.wrap_file(buf, "p")
            with pytest.raises(InjectedCrash):
                fh.write(b"abc")
            with pytest.raises(InjectedCrash):
                fh.write(b"d")
        assert buf.getvalue() == b"ab"
