"""Tests for the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import AliasTable, ensure_rng


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasTable(np.ones((2, 2)))

    def test_len(self):
        assert len(AliasTable([1, 2, 3])) == 3


class TestSampling:
    def test_single_weight(self):
        table = AliasTable([3.0])
        assert table.sample(ensure_rng(0)) == 0

    def test_scalar_sample_type(self):
        out = AliasTable([1, 1]).sample(ensure_rng(0))
        assert isinstance(out, int)

    def test_batch_shape(self):
        out = AliasTable([1, 2, 3]).sample(ensure_rng(0), size=(4, 5))
        assert out.shape == (4, 5)
        assert out.dtype == np.int64

    def test_zero_weight_never_sampled(self):
        table = AliasTable([0.0, 1.0, 0.0])
        draws = table.sample(ensure_rng(0), size=1000)
        assert set(np.unique(draws)) == {1}

    def test_empirical_distribution_matches(self):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        draws = table.sample(ensure_rng(42), size=60_000)
        freq = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)

    def test_deterministic_given_seed(self):
        table = AliasTable([1, 2, 3])
        a = table.sample(ensure_rng(9), size=20)
        b = table.sample(ensure_rng(9), size=20)
        np.testing.assert_array_equal(a, b)


class TestProbabilities:
    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_reconstructed_probabilities_exact(self, weights):
        """The alias decomposition must reproduce the normalized weights."""
        w = np.array(weights)
        table = AliasTable(w)
        np.testing.assert_allclose(table.probabilities(), w / w.sum(), atol=1e-9)
