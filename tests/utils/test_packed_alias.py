"""Tests for the vectorized multi-table alias construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import PackedAliasTables, build_alias_tables, ensure_rng


def _csr(segment_weights):
    sizes = [len(s) for s in segment_weights]
    indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    flat = np.concatenate([np.asarray(s, dtype=np.float64) for s in segment_weights if len(s)]) \
        if any(sizes) else np.empty(0)
    return flat, indptr


class TestConstruction:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            build_alias_tables(np.array([1.0, -0.5]), np.array([0, 2]))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            build_alias_tables(np.array([1.0, np.nan]), np.array([0, 2]))

    def test_rejects_zero_sum_segment(self):
        with pytest.raises(ValueError):
            build_alias_tables(np.array([1.0, 0.0, 0.0]), np.array([0, 1, 3]))

    def test_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            build_alias_tables(np.array([1.0, 2.0]), np.array([0, 1]))

    def test_empty_segments_allowed(self):
        packed = PackedAliasTables(np.array([1.0, 3.0]), np.array([0, 0, 2, 2]))
        assert len(packed) == 3
        np.testing.assert_array_equal(packed.table_sizes(), [0, 2, 0])

    def test_alias_stays_inside_segment(self):
        rng = np.random.default_rng(0)
        sizes = [3, 7, 1, 12, 5]
        indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        w = rng.random(indptr[-1]) + 1e-3
        _, alias = build_alias_tables(w, indptr)
        for s in range(len(sizes)):
            seg = alias[indptr[s] : indptr[s + 1]]
            assert np.all(seg >= indptr[s]) and np.all(seg < indptr[s + 1])


class TestDecomposition:
    @given(
        st.lists(
            st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=20),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_reconstructed_probabilities_exact(self, segments):
        """Every segment's alias decomposition reproduces its distribution."""
        flat, indptr = _csr(segments)
        packed = PackedAliasTables(flat, indptr)
        for s, seg in enumerate(segments):
            w = np.asarray(seg)
            np.testing.assert_allclose(
                packed.probabilities(s), w / w.sum(), atol=1e-9
            )


class TestSampling:
    def test_empirical_distribution(self):
        w = np.array([1.0, 2.0, 7.0, 5.0, 5.0])
        packed = PackedAliasTables(w, np.array([0, 3, 5]))
        draws = packed.sample(np.zeros(60_000, dtype=np.int64), ensure_rng(42))
        freq = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(freq, w[:3] / w[:3].sum(), atol=0.02)
        draws = packed.sample(np.ones(10_000, dtype=np.int64), ensure_rng(0))
        np.testing.assert_allclose(
            np.bincount(draws, minlength=2) / draws.size, [0.5, 0.5], atol=0.03
        )

    def test_mixed_rows_in_one_batch(self):
        w = np.array([1.0, 1.0, 1.0, 9.0])
        packed = PackedAliasTables(w, np.array([0, 2, 4]))
        rows = np.array([0, 1, 0, 1, 1])
        draws = packed.sample(rows, ensure_rng(3))
        assert draws.shape == (5,)
        assert np.all(draws >= 0)
        assert np.all(draws < 2)

    def test_zero_weight_never_sampled(self):
        packed = PackedAliasTables(np.array([0.0, 1.0, 0.0]), np.array([0, 3]))
        draws = packed.sample(np.zeros(2000, dtype=np.int64), ensure_rng(1))
        assert set(np.unique(draws)) == {1}

    def test_sampling_empty_table_raises(self):
        packed = PackedAliasTables(np.array([1.0]), np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            packed.sample(np.array([0]), ensure_rng(0))

    def test_deterministic_given_seed(self):
        packed = PackedAliasTables(np.array([1.0, 2.0, 3.0]), np.array([0, 3]))
        rows = np.zeros(50, dtype=np.int64)
        a = packed.sample(rows, ensure_rng(9))
        b = packed.sample(rows, ensure_rng(9))
        np.testing.assert_array_equal(a, b)
