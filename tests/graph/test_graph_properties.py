"""Property-based tests of TemporalGraph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TemporalGraph


@st.composite
def edge_lists(draw, max_nodes=12, max_edges=40):
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    m = draw(st.integers(min_value=1, max_value=max_edges))
    src, dst, time = [], [], []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        src.append(u)
        dst.append(v)
        time.append(draw(st.floats(min_value=0, max_value=1000, allow_nan=False)))
    return np.array(src), np.array(dst), np.array(time), n


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_time_sorted_globally(data):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    assert np.all(np.diff(g.time) >= 0)


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_per_node_incidence_time_sorted(data):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    for v in range(n):
        _, times, _ = g.incident(v)
        assert np.all(np.diff(times) >= 0)


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_degree_handshake(data):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    assert g.degrees().sum() == 2 * g.num_edges


@given(edge_lists(), st.floats(min_value=0, max_value=1000))
@settings(max_examples=80, deadline=None)
def test_events_before_is_prefix_filter(data, cut):
    """events_before(v, t) returns exactly the incident events with time <= t."""
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    for v in range(n):
        nbrs_all, times_all, _ = g.incident(v)
        nbrs, times, _ = g.events_before(v, cut, inclusive=True)
        expected = times_all <= cut
        assert times.size == int(expected.sum())
        np.testing.assert_array_equal(nbrs, nbrs_all[expected])


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_snapshot_plus_future_partitions_edges(data):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    median = float(np.median(g.time))
    until = g.edges_until(median, inclusive=True)
    assert until.size == int(np.sum(g.time <= median))


@given(edge_lists(), st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=60, deadline=None)
def test_split_recent_partition(data, frac):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    if g.num_edges < 2:
        return
    train, held = g.split_recent(frac)
    assert train.num_edges + held.size == g.num_edges
    # Held edges are the most recent block.
    if held.size and train.num_edges:
        assert g.time[held].min() >= train.time.max()


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_times01_is_affine_monotone(data):
    src, dst, t, n = data
    g = TemporalGraph.from_edges(src, dst, t, num_nodes=n)
    t01 = g.times01()
    assert t01.min() >= 0.0 and t01.max() <= 1.0
    order_raw = np.argsort(g.time, kind="stable")
    order_01 = np.argsort(t01, kind="stable")
    np.testing.assert_array_equal(order_raw, order_01)
