"""Tests for TemporalGraph.extend — the partial_fit streaming path."""

import numpy as np
import pytest

from repro.graph import TemporalGraph


def base_graph() -> TemporalGraph:
    return TemporalGraph.from_edges(
        src=np.array([0, 1, 2, 0]),
        dst=np.array([1, 2, 3, 2]),
        time=np.array([1.0, 2.0, 3.0, 4.0]),
        weight=np.array([1.0, 2.0, 1.0, 3.0]),
    )


class TestExtend:
    def test_appends_and_sorts(self):
        g = base_graph()
        g2, fresh = g.extend([3], [0], [2.5])
        assert g2.num_edges == 5
        assert np.all(np.diff(g2.time) >= 0)
        # The arrival with t=2.5 lands between t=2 and t=3.
        assert fresh.tolist() == [2]
        assert g2.src[2] == 3 and g2.dst[2] == 0

    def test_original_untouched(self):
        g = base_graph()
        g.extend([3], [0], [10.0])
        assert g.num_edges == 4

    def test_fresh_ids_index_new_graph(self):
        g = base_graph()
        src, dst, t = [1, 0], [3, 3], [0.5, 9.0]
        g2, fresh = g.extend(src, dst, t)
        assert fresh.size == 2
        np.testing.assert_array_equal(np.sort(g2.time[fresh]), [0.5, 9.0])
        pairs = {(int(g2.src[e]), int(g2.dst[e])) for e in fresh}
        assert pairs == {(1, 3), (0, 3)}

    def test_equal_times_append_after_existing(self):
        g = base_graph()
        g2, fresh = g.extend([3], [1], [2.0])  # ties with the existing t=2 edge
        assert fresh.tolist() == [2]  # stable: after the old t=2 edge (id 1)
        assert g2.src[1] == 1 and g2.dst[1] == 2

    def test_new_nodes_grow_id_space(self):
        g = base_graph()
        g2, _ = g.extend([0], [7], [5.0])
        assert g2.num_nodes == 8
        assert g.num_nodes == 4

    def test_num_nodes_headroom(self):
        g = base_graph()
        g2, _ = g.extend([0], [1], [5.0], num_nodes=100)
        assert g2.num_nodes == 100

    def test_num_nodes_too_small_rejected(self):
        g = base_graph()
        with pytest.raises(ValueError, match="num_nodes"):
            g.extend([0], [7], [5.0], num_nodes=5)

    def test_empty_batch_is_noop(self):
        g = base_graph()
        g2, fresh = g.extend([], [], [])
        assert g2 is g
        assert fresh.size == 0

    def test_incidence_rebuilt(self):
        g = base_graph()
        g2, _ = g.extend([3], [0], [5.0])
        nbrs, times, _ = g2.events_before(3, 6.0)
        assert 0 in nbrs.tolist()
        assert g2.degrees()[3] == g.degrees()[3] + 1

    @pytest.mark.parametrize(
        "src,dst,t,w",
        [
            ([0], [0], [1.0], None),  # self-loop
            ([0], [1], [np.inf], None),  # non-finite time
            ([0], [1], [1.0], [0.0]),  # non-positive weight
            ([-1], [1], [1.0], None),  # negative id
        ],
    )
    def test_invalid_edges_rejected(self, src, dst, t, w):
        g = base_graph()
        with pytest.raises(ValueError):
            g.extend(src, dst, t, w)

    def test_extend_matches_from_edges(self):
        """Extending must equal building the union graph from scratch."""
        g = base_graph()
        g2, _ = g.extend([3, 1], [0, 3], [2.5, 0.25], weight=[2.0, 1.0])
        union = TemporalGraph.from_edges(
            src=np.array([0, 1, 2, 0, 3, 1]),
            dst=np.array([1, 2, 3, 2, 0, 3]),
            time=np.array([1.0, 2.0, 3.0, 4.0, 2.5, 0.25]),
            weight=np.array([1.0, 2.0, 1.0, 3.0, 2.0, 1.0]),
        )
        np.testing.assert_array_equal(g2.src, union.src)
        np.testing.assert_array_equal(g2.dst, union.dst)
        np.testing.assert_array_equal(g2.time, union.time)
        np.testing.assert_array_equal(g2.weight, union.weight)
