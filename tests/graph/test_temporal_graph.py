"""Tests for the TemporalGraph data structure."""

import numpy as np
import pytest

from repro.graph import TemporalGraph


def make(edges, **kwargs):
    src, dst, t = zip(*edges)
    return TemporalGraph.from_edges(np.array(src), np.array(dst), np.array(t), **kwargs)


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_nodes == 8
        assert tiny_graph.num_edges == 11

    def test_edges_sorted_by_time(self):
        g = make([(0, 1, 5.0), (1, 2, 1.0), (2, 3, 3.0)])
        assert list(g.time) == [1.0, 3.0, 5.0]

    def test_stable_sort_preserves_tied_order(self):
        g = make([(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)])
        assert list(g.src) == [0, 2, 4]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            make([(1, 1, 0.0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one edge"):
            TemporalGraph.from_edges(np.array([]), np.array([]), np.array([]))

    def test_rejects_negative_node_id(self):
        with pytest.raises(ValueError, match="non-negative"):
            make([(-1, 2, 0.0)])

    def test_rejects_nonfinite_time(self):
        with pytest.raises(ValueError, match="finite"):
            make([(0, 1, float("inf"))])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TemporalGraph.from_edges(np.array([0]), np.array([1, 2]), np.array([0.0]))

    def test_rejects_small_num_nodes(self):
        with pytest.raises(ValueError, match="too small"):
            make([(0, 5, 0.0)], num_nodes=3)

    def test_explicit_num_nodes_allows_isolated(self):
        g = make([(0, 1, 0.0)], num_nodes=5)
        assert g.num_nodes == 5
        assert g.degrees()[4] == 0

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="positive"):
            TemporalGraph.from_edges(
                np.array([0]), np.array([1]), np.array([0.0]), np.array([0.0])
            )

    def test_default_weights_are_one(self, path_graph):
        np.testing.assert_array_equal(path_graph.weight, np.ones(4))

    def test_parallel_edges_kept(self):
        g = make([(0, 1, 1.0), (0, 1, 2.0), (1, 0, 3.0)])
        assert g.num_edges == 3

    def test_repr(self, path_graph):
        assert "nodes=5" in repr(path_graph)
        assert "events=4" in repr(path_graph)


class TestDegreesAndNeighbors:
    def test_temporal_degree_counts_events(self):
        g = make([(0, 1, 1.0), (0, 1, 2.0), (0, 2, 3.0)])
        assert g.degrees()[0] == 3
        assert g.degrees()[1] == 2

    def test_distinct_neighbor_counts(self):
        g = make([(0, 1, 1.0), (0, 1, 2.0), (0, 2, 3.0)])
        np.testing.assert_array_equal(g.distinct_neighbor_counts(), [2, 1, 1])

    def test_neighbors_sorted_unique(self):
        g = make([(0, 3, 1.0), (0, 1, 2.0), (0, 3, 3.0)])
        np.testing.assert_array_equal(g.neighbors(0), [1, 3])

    def test_degree_sum_is_twice_edges(self, sbm_graph):
        assert sbm_graph.degrees().sum() == 2 * sbm_graph.num_edges


class TestIncidenceQueries:
    def test_incident_time_sorted(self, tiny_graph):
        _, times, _ = tiny_graph.incident(0)
        assert np.all(np.diff(times) >= 0)

    def test_events_before_inclusive(self, path_graph):
        nbrs, times, _ = path_graph.events_before(1, 2.0, inclusive=True)
        assert set(nbrs.tolist()) == {0, 2}

    def test_events_before_exclusive(self, path_graph):
        nbrs, times, _ = path_graph.events_before(1, 2.0, inclusive=False)
        assert nbrs.tolist() == [0]

    def test_events_before_none(self, path_graph):
        nbrs, _, _ = path_graph.events_before(4, 3.0, inclusive=True)
        assert nbrs.size == 0

    def test_events_before_edge_ids_match_times(self, tiny_graph):
        _, times, eids = tiny_graph.events_before(0, 2015.5)
        np.testing.assert_array_equal(times, tiny_graph.time[eids])

    def test_last_event_time(self, tiny_graph):
        assert tiny_graph.last_event_time(0) == 2018.0

    def test_last_event_time_isolated(self):
        g = make([(0, 1, 1.0)], num_nodes=3)
        assert g.last_event_time(2) is None

    def test_last_event_times_matches_scalar(self, sbm_graph):
        times = sbm_graph.last_event_times()
        assert times.shape == (sbm_graph.num_nodes,)
        for v in range(sbm_graph.num_nodes):
            ref = sbm_graph.last_event_time(v)
            if ref is None:
                assert np.isnan(times[v])
            else:
                assert times[v] == ref

    def test_last_event_times_subset_and_isolated(self):
        g = make([(0, 1, 1.0), (1, 2, 3.0)], num_nodes=5)
        out = g.last_event_times(np.array([4, 2, 0]))
        assert np.isnan(out[0])
        assert out[1] == 3.0 and out[2] == 1.0

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)
        assert not tiny_graph.has_edge(1, 7)


class TestTimeScaling:
    def test_times01_range(self, tiny_graph):
        t01 = tiny_graph.times01()
        assert t01.min() == 0.0
        assert t01.max() == 1.0

    def test_times01_monotone(self, tiny_graph):
        assert np.all(np.diff(tiny_graph.times01()) >= 0)

    def test_scale_time_endpoints(self, path_graph):
        assert path_graph.scale_time(1.0) == 0.0
        assert path_graph.scale_time(4.0) == 1.0
        assert path_graph.scale_time(2.5) == 0.5

    def test_constant_time_graph_scales_to_zero(self):
        g = make([(0, 1, 7.0), (1, 2, 7.0)])
        np.testing.assert_array_equal(g.times01(), [0.0, 0.0])
        assert g.scale_time(7.0) == 0.0


class TestSlicing:
    def test_snapshot_cuts_future(self, path_graph):
        snap = path_graph.snapshot(2.0)
        assert snap.num_edges == 2
        assert snap.num_nodes == path_graph.num_nodes

    def test_snapshot_exclusive(self, path_graph):
        snap = path_graph.snapshot(2.0, inclusive=False)
        assert snap.num_edges == 1

    def test_snapshot_empty_raises(self, path_graph):
        with pytest.raises(ValueError, match="no edges"):
            path_graph.snapshot(0.5)

    def test_split_recent_sizes(self, sbm_graph):
        train, held = sbm_graph.split_recent(0.2)
        assert held.size == round(sbm_graph.num_edges * 0.2)
        assert train.num_edges + held.size == sbm_graph.num_edges

    def test_split_recent_keeps_oldest(self, path_graph):
        train, held = path_graph.split_recent(0.25)
        assert train.time.max() <= path_graph.time[held].min()

    def test_split_recent_preserves_node_space(self, sbm_graph):
        train, _ = sbm_graph.split_recent(0.3)
        assert train.num_nodes == sbm_graph.num_nodes

    def test_split_recent_rejects_bad_fraction(self, path_graph):
        with pytest.raises(ValueError):
            path_graph.split_recent(1.0)

    def test_iter_chronological(self, path_graph):
        events = list(path_graph.iter_chronological())
        assert [e.time for e in events] == [1.0, 2.0, 3.0, 4.0]
        assert events[0].u == 0 and events[0].v == 1

    def test_edge_tuples_subset(self, path_graph):
        tuples = path_graph.edge_tuples([0, 2])
        assert tuples == [(0, 1, 1.0), (2, 3, 3.0)]


class TestCSRAccessors:
    def test_incidence_csr_matches_incident(self, tiny_graph):
        indptr, nbr, times, weights, eids = tiny_graph.incidence_csr()
        assert indptr[-1] == 2 * tiny_graph.num_edges
        for v in range(tiny_graph.num_nodes):
            ref_nbr, ref_t, ref_e = tiny_graph.incident(v)
            lo, hi = indptr[v], indptr[v + 1]
            np.testing.assert_array_equal(nbr[lo:hi], ref_nbr)
            np.testing.assert_array_equal(times[lo:hi], ref_t)
            np.testing.assert_array_equal(eids[lo:hi], ref_e)
            np.testing.assert_array_equal(weights[lo:hi], tiny_graph.weight[ref_e])

    def test_incidence_slices_time_sorted(self, sbm_graph):
        indptr, _, times, _, _ = sbm_graph.incidence_csr()
        for v in range(sbm_graph.num_nodes):
            assert np.all(np.diff(times[indptr[v] : indptr[v + 1]]) >= 0)

    def test_distinct_csr_matches_unique(self, sbm_graph):
        dindptr, dnbr, mult = sbm_graph.distinct_csr()
        inc_indptr, inc_nbr, _, _, _ = sbm_graph.incidence_csr()
        for v in range(sbm_graph.num_nodes):
            inc = inc_nbr[inc_indptr[v] : inc_indptr[v + 1]]
            ref, ref_counts = np.unique(inc, return_counts=True)
            np.testing.assert_array_equal(dnbr[dindptr[v] : dindptr[v + 1]], ref)
            np.testing.assert_array_equal(mult[dindptr[v] : dindptr[v + 1]], ref_counts)

    def test_distinct_neighbor_counts_consistent(self, sbm_graph):
        counts = sbm_graph.distinct_neighbor_counts()
        for v in range(sbm_graph.num_nodes):
            assert counts[v] == sbm_graph.neighbors(v).size

    def test_scale_times_matches_scalar(self, sbm_graph):
        ts = np.linspace(*sbm_graph.time_span, 13)
        scaled = sbm_graph.scale_times(ts)
        for t, s in zip(ts, scaled):
            assert s == sbm_graph.scale_time(float(t))

    def test_scale_times_constant_graph(self):
        g = make([(0, 1, 2.0), (1, 2, 2.0)])
        np.testing.assert_array_equal(g.scale_times([2.0, 2.0]), [0.0, 0.0])
