"""Tests for edge-list IO and graph statistics."""

import numpy as np
import pytest

from repro.graph import (
    TemporalGraph,
    graph_statistics,
    load_edge_list,
    save_edge_list,
)


class TestIO:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(tiny_graph, path)
        loaded, labels = load_edge_list(path)
        assert loaded.num_edges == tiny_graph.num_edges
        assert loaded.num_nodes == tiny_graph.num_nodes
        np.testing.assert_allclose(loaded.time, tiny_graph.time)

    def test_round_trip_weights(self, tmp_path):
        g = TemporalGraph.from_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0]),
            np.array([0.5, 2.5]),
        )
        path = tmp_path / "w.txt"
        save_edge_list(g, path)
        loaded, _ = load_edge_list(path)
        np.testing.assert_allclose(loaded.weight, [0.5, 2.5])

    def test_no_weight_column(self, tiny_graph, tmp_path):
        path = tmp_path / "nw.txt"
        save_edge_list(tiny_graph, path, include_weight=False)
        loaded, _ = load_edge_list(path)
        np.testing.assert_array_equal(loaded.weight, np.ones(tiny_graph.num_edges))

    def test_string_labels_relabelled(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("alice bob 1.5\nbob carol 2.5\n")
        g, labels = load_edge_list(path)
        assert labels == {"alice": 0, "bob": 1, "carol": 2}
        assert g.num_nodes == 3

    def test_comma_separated(self, tmp_path):
        path = tmp_path / "csv.txt"
        path.write_text("0,1,1.0\n1,2,2.0\n")
        g, _ = load_edge_list(path)
        assert g.num_edges == 2

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0 1 1.0\n")
        g, _ = load_edge_list(path)
        assert g.num_edges == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.0\n0 1\n")
        with pytest.raises(ValueError, match=":2:"):
            load_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no edges"):
            load_edge_list(path)


class TestStatistics:
    def test_counts(self, tiny_graph):
        st = graph_statistics(tiny_graph)
        assert st.num_nodes == 8
        assert st.num_temporal_edges == 11
        assert st.num_static_edges == 11  # no repeat pairs in the fixture

    def test_static_edges_deduplicate(self):
        g = TemporalGraph.from_edges(
            np.array([0, 1, 0]), np.array([1, 0, 2]), np.array([1.0, 2.0, 3.0])
        )
        st = graph_statistics(g)
        assert st.num_temporal_edges == 3
        assert st.num_static_edges == 2

    def test_time_span(self, path_graph):
        st = graph_statistics(path_graph)
        assert (st.time_min, st.time_max) == (1.0, 4.0)

    def test_isolated_nodes_counted(self):
        g = TemporalGraph.from_edges(
            np.array([0]), np.array([1]), np.array([1.0]), num_nodes=4
        )
        assert graph_statistics(g).isolated_nodes == 2

    def test_as_row_shape(self, tiny_graph):
        row = graph_statistics(tiny_graph).as_row()
        assert row["# nodes"] == 8
        assert row["# temporal edges"] == 11
        assert "mean degree" in row
