"""Memory accounting and int32 index narrowing of TemporalGraph."""

from __future__ import annotations

import numpy as np

from repro.datasets import temporal_sbm
from repro.graph import TemporalGraph


class TestIndexNarrowing:
    def test_small_graph_narrows_to_int32(self, tiny_graph):
        assert tiny_graph.index_dtype == np.int32
        indptr, nbr, _times, _weights, eids = tiny_graph.incidence_csr()
        assert indptr.dtype == np.int32
        assert nbr.dtype == np.int32
        assert eids.dtype == np.int32
        dindptr, dnbr, _mult = tiny_graph.distinct_csr()
        assert dindptr.dtype == np.int32
        assert dnbr.dtype == np.int32

    def test_edge_table_stays_int64(self, tiny_graph):
        """The public edge table (and hence checkpoints) keeps int64 — only
        the derived index structures narrow."""
        assert tiny_graph.src.dtype == np.int64
        assert tiny_graph.dst.dtype == np.int64

    def test_narrowing_preserves_queries(self, sbm_graph):
        """Narrowed indices are exact: every incidence/adjacency answer
        matches a manual int64 reconstruction."""
        for v in range(0, sbm_graph.num_nodes, 7):
            nbrs, times, eids = sbm_graph.incident(v)
            mask = (sbm_graph.src == v) | (sbm_graph.dst == v)
            assert nbrs.size == int(mask.sum())
            assert np.all(np.diff(times) >= 0)
            other = np.where(
                sbm_graph.src[eids] == v, sbm_graph.dst[eids], sbm_graph.src[eids]
            )
            np.testing.assert_array_equal(np.asarray(nbrs, dtype=np.int64), other)


class TestNbytes:
    def test_nbytes_counts_edge_table_and_incidence(self, path_graph):
        base = path_graph.nbytes
        m = path_graph.num_edges
        # At minimum: 2 int64 id columns + 2 float64 columns + the incidence
        # arrays (2m int32 slots x3 + 2m float64 times).
        assert base >= m * (8 * 4) + 2 * m * (4 * 3 + 8)

    def test_nbytes_grows_when_lazy_structures_materialize(self, sbm_graph):
        g = temporal_sbm(num_nodes=30, num_edges=150, seed=1)
        before = g.nbytes
        g.distinct_csr()
        g.times01()
        g.incidence_csr()  # materializes per-slot weights
        g._pair_index()
        assert g.nbytes > before

    def test_narrowing_is_observable(self):
        """The int32 index halves the CSR bytes relative to the int64 edge
        ids it indexes — visible directly in nbytes."""
        g = temporal_sbm(num_nodes=50, num_edges=400, seed=2)
        assert g.index_dtype == np.int32
        indptr, nbr, times, _w, eids = g.incidence_csr()
        narrow = indptr.nbytes + nbr.nbytes + eids.nbytes
        wide = narrow * 2  # what int64 would cost
        assert narrow * 2 == wide
        assert nbr.itemsize == 4

    def test_repr_includes_memory(self, tiny_graph):
        text = repr(tiny_graph)
        assert "mem=" in text
        assert text.endswith(")")

    def test_repr_formats_units(self):
        g = temporal_sbm(num_nodes=60, num_edges=500, seed=3)
        assert any(unit in repr(g) for unit in ("B", "KB", "MB"))


class TestExtendKeepsNarrowing:
    def test_extend_rebuilds_narrowed_index(self, path_graph):
        g2, fresh = path_graph.extend(
            np.array([0]), np.array([4]), np.array([9.0])
        )
        assert g2.index_dtype == np.int32
        assert fresh.dtype == np.int64
        assert g2.num_edges == path_graph.num_edges + 1

    def test_snapshot_keeps_narrowing(self, sbm_graph):
        snap = sbm_graph.snapshot(sbm_graph.time_span[1])
        assert snap.index_dtype == np.int32
        assert snap.nbytes <= sbm_graph.nbytes


class TestOverflowGuard:
    def test_guard_condition_matches_documented_rule(self, monkeypatch):
        """The rule is `max(2*num_edges, num_nodes+1) < 2**31`; simulate the
        boundary without allocating a 2^31-slot graph by checking the
        computed dtype on a constructed instance."""
        g = TemporalGraph.from_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([0.0, 1.0])
        )
        assert g.index_dtype == np.int32
        # The decision is a pure function of the two sizes; replay it at the
        # boundary values the docstring promises.
        for n, m, expected in [
            (10, 2**30, np.int64),  # 2*m hits 2**31
            (2**31, 10, np.int64),  # node-id space too large
            (10, 2**30 - 1, np.int32),
        ]:
            idx = np.int32 if max(2 * m, n + 1) < 2**31 else np.int64
            assert idx is expected
