"""The amortized (buffered) graph-growth path: extend_in_place/compact.

The contract under test: no matter how ``extend_in_place`` / ``compact`` /
reads interleave, the graph is indistinguishable from a from-scratch
``from_edges`` build over the same events in the same arrival order —
bitwise, down to tie order (both paths rely on the same stable sort).  The
seeded property sweep drives randomized interleavings; the stress-marked
variant widens it to ~200 cases (``make test-stream``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import TemporalGraph


def random_events(rng, n_nodes, n_events, t_lo=0.0, t_hi=100.0):
    """One batch of random events (ties are likely: times are coarse)."""
    src = rng.integers(0, n_nodes, size=n_events)
    dst = (src + 1 + rng.integers(0, n_nodes - 1, size=n_events)) % n_nodes
    time = np.round(rng.uniform(t_lo, t_hi, size=n_events), 1)
    weight = rng.uniform(0.5, 2.0, size=n_events)
    return src, dst, time, weight


def assert_graphs_bitwise_equal(got: TemporalGraph, want: TemporalGraph):
    assert got.num_nodes == want.num_nodes
    assert got.num_edges == want.num_edges
    np.testing.assert_array_equal(got.src, want.src)
    np.testing.assert_array_equal(got.dst, want.dst)
    np.testing.assert_array_equal(got.time, want.time)
    np.testing.assert_array_equal(got.weight, want.weight)
    for a, b in zip(got.incidence_csr(), want.incidence_csr()):
        np.testing.assert_array_equal(a, b)
    for a, b in zip(got.distinct_csr(), want.distinct_csr()):
        np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(got.times01(), want.times01())


def assert_invariants(g: TemporalGraph):
    """Structural invariants every reader relies on."""
    t = g.time
    assert np.all(np.diff(t) >= 0), "edge table must stay time-sorted"
    offsets, nbrs, times, _weights, eids = g.incidence_csr()
    assert offsets[0] == 0 and offsets[-1] == eids.size
    for v in range(g.num_nodes):
        seg = times[offsets[v] : offsets[v + 1]]
        assert np.all(np.diff(seg) >= 0), f"node {v} incidence not time-sorted"


class TestBufferedAccounting:
    def test_pending_events_and_num_edges_include_the_buffer(self, path_graph):
        g = path_graph.copy()
        assert g.pending_events == 0
        g.extend_in_place([0], [2], [5.0])
        g.extend_in_place([1], [3], [6.0])
        assert g.pending_events == 2
        assert g.num_edges == 6  # 4 compacted + 2 buffered
        assert g.compactions == 0

    def test_any_reader_compacts_transparently(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [2], [5.0])
        assert g.time[-1] == 5.0  # the read absorbed the buffer
        assert g.pending_events == 0
        assert g.compactions == 1

    def test_compact_every_triggers_automatically(self, path_graph):
        g = path_graph.copy()
        for i in range(5):
            g.extend_in_place([0], [1], [10.0 + i], compact_every=3)
        # 3 events tripped one compaction; 2 are still buffered.
        assert g.compactions == 1
        assert g.pending_events == 2

    def test_compact_returns_sorted_fresh_positions(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [1], [0.5])  # lands before everything
        g.extend_in_place([2], [3], [9.0])  # lands at the end
        fresh = g.compact()
        np.testing.assert_array_equal(fresh, [0, 5])
        np.testing.assert_array_equal(g.time[fresh], [0.5, 9.0])

    def test_compact_with_empty_buffer_is_a_noop(self, path_graph):
        g = path_graph.copy()
        assert g.compact().size == 0
        assert g.compactions == 0

    def test_empty_batch_is_a_noop(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place(np.empty(0, int), np.empty(0, int), np.empty(0))
        assert g.pending_events == 0
        assert g.num_edges == 4

    def test_num_nodes_grows_with_new_ids_and_headroom(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([5], [6], [9.0])
        assert g.num_nodes == 7
        g.extend_in_place([0], [1], [9.5], num_nodes=10)
        assert g.num_nodes == 10

    def test_num_nodes_too_small_is_rejected(self, path_graph):
        g = path_graph.copy()
        with pytest.raises(ValueError, match="num_nodes=3 too small"):
            g.extend_in_place([7], [0], [9.0], num_nodes=3)


class TestTakeFresh:
    def test_take_fresh_claims_each_event_exactly_once(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [2], [5.0])
        fresh = g.take_fresh()
        assert fresh.size == 1
        assert g.time[fresh[0]] == 5.0
        assert g.take_fresh().size == 0  # claimed, not re-delivered

    def test_take_fresh_accumulates_across_compactions(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [2], [5.0])
        g.compact()
        g.extend_in_place([1], [3], [0.5])  # sorts before the first batch
        fresh = g.take_fresh()
        # Both unclaimed events, at their *current* (re-sorted) positions.
        np.testing.assert_array_equal(np.sort(g.time[fresh]), [0.5, 5.0])
        assert fresh.size == 2

    def test_plain_extend_does_not_mark_fresh_for_take(self, path_graph):
        g2, fresh = path_graph.extend([0], [2], [5.0])
        assert fresh.size == 1
        assert g2.take_fresh().size == 0  # extend() hands ids back directly


class TestCopy:
    def test_copy_shares_arrays_but_not_growth(self, path_graph):
        g = path_graph.copy()
        twin = g.copy()
        assert twin.src is g.src
        g.extend_in_place([0], [2], [5.0])
        g.compact()
        assert g.num_edges == 5
        assert twin.num_edges == 4
        assert twin.pending_events == 0
        assert twin.time[-1] == 4.0

    def test_copy_flushes_the_source_buffer_first(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [2], [5.0])
        twin = g.copy()
        assert twin.num_edges == 5
        assert twin.pending_events == 0

    def test_copy_preserves_unabsorbed_events_independently(self, path_graph):
        g = path_graph.copy()
        g.extend_in_place([0], [2], [5.0])
        twin = g.copy()
        assert twin.take_fresh().size == 1
        assert g.take_fresh().size == 1  # the original's claim is its own


class TestPinnedTimeScale:
    def test_pinned_scale_freezes_times01_as_the_head_grows(self, path_graph):
        g = path_graph.copy().pin_time_scale()
        before = g.times01().copy()
        g.extend_in_place([0], [1], [10.0])
        g.compact()
        np.testing.assert_array_equal(g.times01()[:4], before)
        # The new event scales beyond 1 instead of squashing history.
        assert g.times01()[-1] > 1.0

    def test_unpinned_scale_rescales_live(self, path_graph):
        g = path_graph.copy()
        before = g.times01().copy()
        g.extend_in_place([0], [1], [10.0])
        g.compact()
        assert not np.array_equal(g.times01()[:4], before)

    def test_pin_propagates_through_extend_and_copy(self, path_graph):
        g = path_graph.copy().pin_time_scale()
        span = g.time_scale
        g2, _ = g.extend([0], [1], [10.0])
        assert g2.time_scale == span
        assert g.copy().time_scale == span

    def test_pin_validates_its_span(self, path_graph):
        g = path_graph.copy()
        with pytest.raises(ValueError):
            g.pin_time_scale(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            g.pin_time_scale(lo=0.0, hi=float("inf"))


def _random_interleaving(seed: int):
    """Drive one random op sequence; return (buffered graph, event log)."""
    rng = np.random.default_rng(seed)
    n_nodes = int(rng.integers(4, 12))
    src, dst, time, weight = random_events(rng, n_nodes, int(rng.integers(3, 10)))
    g = TemporalGraph.from_edges(src, dst, time, weight, num_nodes=n_nodes)
    log = [(src, dst, time, weight)]
    for _ in range(int(rng.integers(3, 9))):
        op = rng.integers(0, 4)
        if op == 0:  # buffered append
            batch = random_events(rng, n_nodes, int(rng.integers(1, 6)))
            g.extend_in_place(*batch)
            log.append(batch)
        elif op == 1:  # append with auto-compaction threshold
            batch = random_events(rng, n_nodes, int(rng.integers(1, 6)))
            g.extend_in_place(*batch, compact_every=int(rng.integers(1, 8)))
            log.append(batch)
        elif op == 2:
            g.compact()
        else:  # a read mid-stream (forces compaction via a reader)
            assert np.all(np.diff(g.time) >= 0)
    return g, log


def _from_scratch(log, num_nodes) -> TemporalGraph:
    src = np.concatenate([b[0] for b in log])
    dst = np.concatenate([b[1] for b in log])
    time = np.concatenate([b[2] for b in log])
    weight = np.concatenate([b[3] for b in log])
    return TemporalGraph.from_edges(src, dst, time, weight, num_nodes=num_nodes)


def _check_case(seed: int):
    g, log = _random_interleaving(seed)
    reference = _from_scratch(log, g.num_nodes)
    assert_invariants(g)
    assert_graphs_bitwise_equal(g, reference)


@pytest.mark.parametrize("seed", range(30))
def test_property_interleavings_match_from_scratch(seed):
    """Tier-1 slice of the sweep: 30 random interleavings, bitwise equal."""
    _check_case(seed)


@pytest.mark.stress
@pytest.mark.parametrize("seed", range(30, 230))
def test_property_interleavings_match_from_scratch_stress(seed):
    """The full ~200-case sweep (make test-stream)."""
    _check_case(seed)
