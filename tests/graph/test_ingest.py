"""Chunked edge-list ingestion and the exact save/load round trip.

``ingest_edge_list`` streams a text file into the columnar on-disk store;
these tests pin its equivalence with the in-memory ``load_edge_list`` path
(same chunked parser, different sink) and the edge cases a multi-million-row
ingest hits: empty files, unsorted timestamps, duplicate events, chunk
boundaries.  The round-trip class pins the ``repr``-exact float format and
the ``# label`` header table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    TemporalGraph,
    ingest_edge_list,
    load_edge_list,
    save_edge_list,
)
from repro.graph.temporal_graph import TemporalGraph as TG
from repro.storage import MemmapStorage


def graph_of(store):
    return TG.from_storage(store)


class TestIngestEdgeList:
    def test_matches_load_edge_list(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0 0.5\n1 2 2.0 1.5\n0 2 3.0 2.5\n")
        g_mem, labels_mem = load_edge_list(path)
        store, labels = ingest_edge_list(path, tmp_path / "store")
        assert labels == labels_mem
        g = graph_of(store)
        np.testing.assert_array_equal(g.src, g_mem.src)
        np.testing.assert_array_equal(g.dst, g_mem.dst)
        np.testing.assert_array_equal(g.time, g_mem.time)
        np.testing.assert_array_equal(g.weight, g_mem.weight)

    def test_empty_file_raises_and_writes_no_store(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n\n")
        with pytest.raises(ValueError, match="no edges"):
            ingest_edge_list(path, tmp_path / "store")
        from repro.storage import is_store_dir

        assert not is_store_dir(tmp_path / "store")

    def test_unsorted_timestamps_sorted_like_from_edges(self, tmp_path):
        path = tmp_path / "unsorted.txt"
        path.write_text("0 1 5.0\n1 2 1.0\n2 3 3.0\n")
        store, _ = ingest_edge_list(path, tmp_path / "store")
        g_mem, _ = load_edge_list(path)  # from_edges stable-sorts by time
        g = graph_of(store)
        np.testing.assert_array_equal(g.time, g_mem.time)
        np.testing.assert_array_equal(g.src, g_mem.src)

    def test_duplicate_events_preserved(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0 1 2.0\n0 1 2.0\n0 1 2.0\n")
        store, _ = ingest_edge_list(path, tmp_path / "store")
        assert store.num_events == 3

    def test_ties_keep_file_order(self, tmp_path):
        # Events sharing a timestamp come out in file order (stable sort),
        # matching load_edge_list/from_edges exactly.
        path = tmp_path / "ties.txt"
        path.write_text("0 1 2.0\n2 3 1.0\n4 5 2.0\n6 7 2.0\n")
        store, _ = ingest_edge_list(path, tmp_path / "store")
        g = graph_of(store)
        np.testing.assert_array_equal(g.src, [2, 0, 4, 6])

    def test_chunk_boundaries_invisible(self, tmp_path):
        lines = [f"{i % 7} {(i % 7) + 1} {float(i)}\n" for i in range(50)]
        path = tmp_path / "chunky.txt"
        path.write_text("".join(lines))
        store_small, _ = ingest_edge_list(path, tmp_path / "a", chunk_lines=3)
        store_big, _ = ingest_edge_list(path, tmp_path / "b", chunk_lines=1000)
        np.testing.assert_array_equal(store_small.src, store_big.src)
        np.testing.assert_array_equal(store_small.time, store_big.time)

    def test_string_labels_interned_across_chunks(self, tmp_path):
        path = tmp_path / "named.txt"
        path.write_text("alice bob 1.0\ncarol alice 2.0\nbob carol 3.0\n")
        store, labels = ingest_edge_list(path, tmp_path / "store", chunk_lines=1)
        assert labels == {"alice": 0, "bob": 1, "carol": 2}
        g = graph_of(store)
        np.testing.assert_array_equal(g.src, [0, 2, 1])

    def test_meta_records_source(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 1.0\n")
        store, _ = ingest_edge_list(path, tmp_path / "store", meta={"tag": "x"})
        assert store.meta["source"] == str(path)
        assert store.meta["tag"] == "x"

    def test_malformed_line_keeps_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 1.0\n0 1 2.0 3.0 4.0\n")
        with pytest.raises(ValueError, match=":2:"):
            ingest_edge_list(path, tmp_path / "store")


class TestExactRoundTrip:
    def test_float_columns_bitwise(self, tmp_path):
        rng = np.random.default_rng(5)
        n = 64
        src = rng.integers(0, 20, n)
        dst = (src + 1 + rng.integers(0, 5, n)) % 25
        time = np.sort(rng.uniform(0.0, 1.0, n))  # awkward decimals
        weight = rng.uniform(1e-8, 1e8, n)
        g = TemporalGraph.from_edges(src, dst, time, weight)
        path = tmp_path / "exact.txt"
        save_edge_list(g, path)
        loaded, _ = load_edge_list(path)
        np.testing.assert_array_equal(loaded.time, g.time)  # bitwise
        np.testing.assert_array_equal(loaded.weight, g.weight)

    def test_labels_and_isolated_nodes_round_trip(self, tmp_path):
        g = TemporalGraph.from_edges(
            np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0]), num_nodes=5
        )
        labels = {"a": 0, "b": 1, "c": 2, "lonely": 3, "ghost": 4}
        path = tmp_path / "labelled.txt"
        save_edge_list(g, path, labels=labels)
        loaded, labels_back = load_edge_list(path)
        assert labels_back == labels
        assert loaded.num_nodes == 5  # isolated nodes survived
        np.testing.assert_array_equal(loaded.src, g.src)

    def test_save_rejects_ambiguous_labels(self, tmp_path):
        g = TemporalGraph.from_edges(np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError, match="two names"):
            save_edge_list(g, tmp_path / "x.txt", labels={"a": 0, "b": 0})
        with pytest.raises(ValueError, match="whitespace"):
            save_edge_list(g, tmp_path / "x.txt", labels={"a b": 0})

    def test_label_redefinition_rejected(self, tmp_path):
        path = tmp_path / "redef.txt"
        path.write_text("# label 0 a\n# label 1 a\n0 1 1.0\n")
        with pytest.raises(ValueError, match="redefined"):
            load_edge_list(path)

    def test_round_trip_through_ingest(self, tmp_path):
        g = TemporalGraph.from_edges(
            np.array([0, 1, 2]),
            np.array([1, 2, 0]),
            np.array([0.1, 0.2, 0.3]),
            np.array([1.5, 2.5, 3.5]),
        )
        labels = {"x": 0, "y": 1, "z": 2}
        path = tmp_path / "rt.txt"
        save_edge_list(g, path, labels=labels)
        store, labels_back = ingest_edge_list(path, tmp_path / "store")
        assert labels_back == labels
        back = graph_of(store)
        np.testing.assert_array_equal(back.src, g.src)
        np.testing.assert_array_equal(back.time, g.time)
        np.testing.assert_array_equal(back.weight, g.weight)
