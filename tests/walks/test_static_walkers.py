"""Tests for the uniform and node2vec walkers."""

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.walks import Node2VecWalker, UniformWalker


def star_graph():
    """Node 0 connected to 1..4."""
    return TemporalGraph.from_edges(
        np.zeros(4, dtype=int), np.arange(1, 5), np.arange(4, dtype=float)
    )


class TestUniformWalker:
    def test_walks_stay_on_edges(self, tiny_graph):
        walker = UniformWalker(tiny_graph)
        rng = np.random.default_rng(0)
        for _ in range(30):
            w = walker.walk(0, 5, rng)
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert tiny_graph.has_edge(a, b)

    def test_isolated_node_stays_put(self):
        g = TemporalGraph.from_edges(
            np.array([0]), np.array([1]), np.array([1.0]), num_nodes=3
        )
        w = UniformWalker(g).walk(2, 4, np.random.default_rng(0))
        assert w.nodes == [2]

    def test_length_bound(self, sbm_graph):
        walker = UniformWalker(sbm_graph)
        w = walker.walk(0, 7, np.random.default_rng(1))
        assert len(w.nodes) <= 8

    def test_walks_batch(self, tiny_graph):
        ws = UniformWalker(tiny_graph).walks(0, 6, 3, np.random.default_rng(0))
        assert len(ws) == 6

    def test_uniform_over_neighbors(self):
        walker = UniformWalker(star_graph())
        rng = np.random.default_rng(0)
        counts = np.zeros(5)
        for _ in range(2000):
            counts[walker.walk(0, 1, rng).nodes[1]] += 1
        np.testing.assert_allclose(counts[1:] / 2000, 0.25, atol=0.04)


class TestNode2VecWalker:
    def test_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            Node2VecWalker(tiny_graph, p=0)
        with pytest.raises(ValueError):
            Node2VecWalker(tiny_graph, q=-1)

    def test_walks_stay_on_edges(self, tiny_graph):
        walker = Node2VecWalker(tiny_graph, p=0.5, q=2.0)
        rng = np.random.default_rng(0)
        for start in range(tiny_graph.num_nodes):
            w = walker.walk(start, 6, rng)
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert tiny_graph.has_edge(a, b)

    def test_multiplicity_weights_first_step(self):
        """Parallel temporal edges double the static transition weight."""
        g = TemporalGraph.from_edges(
            np.array([0, 0, 0]), np.array([1, 1, 2]), np.array([1.0, 2.0, 3.0])
        )
        walker = Node2VecWalker(g)
        rng = np.random.default_rng(0)
        to_1 = sum(walker.walk(0, 1, rng).nodes[1] == 1 for _ in range(900))
        assert to_1 / 900 == pytest.approx(2 / 3, abs=0.05)

    def test_low_p_backtracks(self):
        """p << 1 on a path graph forces constant backtracking."""
        g = TemporalGraph.from_edges(
            np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0])
        )
        rng = np.random.default_rng(0)
        returny = Node2VecWalker(g, p=0.01, q=1.0)
        w = [returny.walk(0, 10, rng).nodes for _ in range(50)]
        backtracks = sum(
            nodes[i] == nodes[i - 2] for nodes in w for i in range(2, len(nodes))
        )
        total = sum(max(len(nodes) - 2, 0) for nodes in w)
        assert backtracks / total > 0.8

    def test_corpus_shape(self, sbm_graph):
        walker = Node2VecWalker(sbm_graph)
        corpus = walker.corpus(2, 5, np.random.default_rng(0))
        # every non-isolated node contributes one walk per round
        assert len(corpus) <= 2 * sbm_graph.num_nodes
        assert all(len(s) >= 2 for s in corpus)

    def test_alias_cache_reused(self, sbm_graph):
        walker = Node2VecWalker(sbm_graph)
        rng = np.random.default_rng(0)
        walker.walk(0, 10, rng)
        size_once = len(walker._alias_cache)
        walker.walk(0, 10, rng)
        assert len(walker._alias_cache) >= size_once  # grows or reuses, never resets
