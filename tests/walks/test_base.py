"""Tests for the Walk record."""

import numpy as np
import pytest

from repro.walks import Walk


class TestWalkValidation:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            Walk(nodes=[])

    def test_edge_times_length_checked(self):
        with pytest.raises(ValueError):
            Walk(nodes=[0, 1, 2], edge_times=[1.0])

    def test_static_walk_allows_empty_times(self):
        w = Walk(nodes=[0, 1, 2])
        assert len(w) == 3
        assert w.edge_times == []

    def test_len(self):
        assert len(Walk(nodes=[3])) == 1


class TestNodeTimeSums:
    def test_each_edge_contributes_to_both_endpoints(self):
        w = Walk(nodes=[0, 1, 2], edge_times=[10.0, 20.0])
        np.testing.assert_allclose(w.node_time_sums(), [10.0, 30.0, 20.0])

    def test_repeat_visits_accumulate(self):
        # 0 -> 1 -> 0: node 0 at both ends
        w = Walk(nodes=[0, 1, 0], edge_times=[5.0, 7.0])
        np.testing.assert_allclose(w.node_time_sums(), [5.0, 12.0, 7.0])

    def test_scale_applied(self):
        w = Walk(nodes=[0, 1], edge_times=[100.0])
        np.testing.assert_allclose(
            w.node_time_sums(scale=lambda t: t / 100.0), [1.0, 1.0]
        )

    def test_single_node_walk_zero_sums(self):
        np.testing.assert_allclose(Walk(nodes=[4]).node_time_sums(), [0.0])

    def test_static_walk_zero_sums(self):
        np.testing.assert_allclose(Walk(nodes=[0, 1, 2]).node_time_sums(), np.zeros(3))
