"""candidate_cap: the hub-node window over historical candidate edges.

The cap bounds per-step gather work at hub nodes by considering only the
``candidate_cap`` most recent events before the temporal cut.  Because the
decay kernel already weights candidates by recency (exponentially under
``decay > 0``), the truncated tail carries exponentially little probability
mass — but a capped engine is still a *different sampler*, so the contract
is: ``candidate_cap=0`` (the default) is bitwise-identical to the uncapped
engine, a cap at least as large as every history segment is too, and small
caps produce valid walks that respect the temporal constraint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.walks.engine import BatchedWalkEngine


@pytest.fixture
def hub_graph():
    """A star-heavy graph: node 0 accumulates a long event history."""
    rng = np.random.default_rng(2)
    n, m = 30, 500
    src = np.where(rng.random(m) < 0.5, 0, rng.integers(0, n, m))
    dst = rng.integers(1, n, m)
    keep = src != dst
    return TemporalGraph.from_edges(
        src[keep], dst[keep], rng.uniform(0.0, 10.0, int(keep.sum()))
    )


def temporal_batch(graph, cap, seed=9):
    engine = BatchedWalkEngine(graph, candidate_cap=cap)
    starts = np.arange(graph.num_nodes, dtype=np.int64)
    anchors = np.full(starts.size, 11.0)
    return engine.temporal_walk_batch(
        starts, anchors, 3, 6, np.random.default_rng(seed)
    )


class TestCandidateCap:
    def test_zero_cap_is_bitwise_unchanged(self, hub_graph):
        default = temporal_batch(hub_graph, cap=0)
        explicit = temporal_batch(hub_graph, cap=0)
        np.testing.assert_array_equal(default.ids, explicit.ids)
        np.testing.assert_array_equal(default.valid, explicit.valid)

    def test_huge_cap_equals_uncapped(self, hub_graph):
        # A window wider than any node's history truncates nothing, so the
        # gather (and every downstream draw) is bitwise the uncapped one.
        uncapped = temporal_batch(hub_graph, cap=0)
        wide = temporal_batch(hub_graph, cap=hub_graph.num_edges + 1)
        np.testing.assert_array_equal(uncapped.ids, wide.ids)
        np.testing.assert_array_equal(uncapped.valid, wide.valid)
        np.testing.assert_array_equal(uncapped.time_sums, wide.time_sums)

    def test_small_cap_changes_the_sample_but_stays_valid(self, hub_graph):
        uncapped = temporal_batch(hub_graph, cap=0)
        capped = temporal_batch(hub_graph, cap=4)
        # Every id stays in range and some steps survive the narrow window.
        assert ((capped.ids >= 0) & (capped.ids < hub_graph.num_nodes)).all()
        assert np.asarray(capped.valid).astype(bool).any()
        # On a hub-heavy graph a 4-event window really does alter draws.
        assert not np.array_equal(capped.ids, uncapped.ids)

    def test_capped_walks_respect_temporal_order(self, hub_graph):
        engine = BatchedWalkEngine(hub_graph, candidate_cap=4)
        starts = np.arange(hub_graph.num_nodes, dtype=np.int64)
        anchors = np.full(starts.size, 11.0)
        walks = engine.temporal(starts, anchors, 6, np.random.default_rng(9))
        for walk in walks:
            times = walk.edge_times
            assert all(b <= a for a, b in zip(times, times[1:]))
            assert all(t <= 11.0 for t in times)

    def test_negative_cap_rejected(self, hub_graph):
        with pytest.raises(ValueError):
            BatchedWalkEngine(hub_graph, candidate_cap=-1)
