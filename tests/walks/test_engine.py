"""Tests for the vectorized batched walk engine.

The central contract: with a batch of one walk, the engine consumes the RNG
stream draw-for-draw like the per-node ``*_sequential`` reference loops, so
outputs are bitwise identical under a fixed seed — for all four walk
families.  Plus: batched walks obey the same structural invariants as
sequential ones, and the LRU walk cache returns the memoized sets without
touching the RNG.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load, temporal_sbm
from repro.graph import TemporalGraph
from repro.walks import (
    BatchedWalkEngine,
    CTDNEWalker,
    Node2VecWalker,
    TemporalWalker,
    UniformWalker,
    WalkCache,
)


@pytest.fixture(scope="module")
def graph() -> TemporalGraph:
    return load("dblp", scale=0.3, seed=0)


def _rng_pair(seed):
    return np.random.default_rng(seed), np.random.default_rng(seed)


def _assert_same_walk(a, b):
    assert a.nodes == b.nodes
    assert a.edge_times == b.edge_times


# ----------------------------------------------------------------------
# batch-size-1 bitwise identity vs. the seed per-node walkers
# ----------------------------------------------------------------------
class TestBatchOneBitwiseIdentity:
    def test_temporal(self, graph):
        anchor = graph.time_span[1] + 1.0
        walker = TemporalWalker(graph, p=0.5, q=2.0, decay=1.0)
        for start in range(graph.num_nodes):
            r1, r2 = _rng_pair(start)
            _assert_same_walk(
                walker.walk_sequential(start, anchor, 8, r1),
                walker.walk(start, anchor, 8, r2),
            )
            # the streams must also end in the same state
            assert r1.random() == r2.random()

    def test_temporal_mid_history_anchor(self, graph):
        anchor = float(np.median(graph.time))
        walker = TemporalWalker(graph, p=2.0, q=0.5, decay=0.3)
        for start in range(graph.num_nodes):
            r1, r2 = _rng_pair((start, 1))
            _assert_same_walk(
                walker.walk_sequential(start, anchor, 6, r1),
                walker.walk(start, anchor, 6, r2),
            )
            assert r1.random() == r2.random()

    def test_temporal_include_context(self, graph):
        anchor = float(np.median(graph.time))
        walker = TemporalWalker(graph)
        for start in range(0, graph.num_nodes, 3):
            r1, r2 = _rng_pair(start)
            _assert_same_walk(
                walker.walk_sequential(start, anchor, 5, r1, include_context=True),
                walker.walk(start, anchor, 5, r2, include_context=True),
            )

    def test_uniform(self, graph):
        walker = UniformWalker(graph)
        for start in range(graph.num_nodes):
            r1, r2 = _rng_pair(start)
            _assert_same_walk(
                walker.walk_sequential(start, 7, r1), walker.walk(start, 7, r2)
            )
            assert r1.random() == r2.random()

    def test_node2vec(self, graph):
        walker = Node2VecWalker(graph, p=0.5, q=2.0)
        for start in range(graph.num_nodes):
            r1, r2 = _rng_pair(start)
            _assert_same_walk(
                walker.walk_sequential(start, 9, r1), walker.walk(start, 9, r2)
            )
            assert r1.random() == r2.random()

    def test_ctdne(self, graph):
        walker = CTDNEWalker(graph)
        for edge in range(graph.num_edges):
            r1, r2 = _rng_pair(edge)
            _assert_same_walk(
                walker.walk_from_edge_sequential(edge, 8, r1),
                walker.walk_from_edge(edge, 8, r2),
            )
            assert r1.random() == r2.random()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_temporal_property(self, seed):
        graph = temporal_sbm(num_nodes=25, num_edges=120, seed=7)
        anchor = float(np.median(graph.time))
        walker = TemporalWalker(graph, p=0.7, q=1.4, decay=2.0)
        start = seed % graph.num_nodes
        r1, r2 = _rng_pair(seed)
        _assert_same_walk(
            walker.walk_sequential(start, anchor, 6, r1),
            walker.walk(start, anchor, 6, r2),
        )
        assert r1.random() == r2.random()


# ----------------------------------------------------------------------
# batched invariants
# ----------------------------------------------------------------------
class TestBatchedInvariants:
    def test_temporal_constraints_hold_in_batch(self, graph):
        engine = BatchedWalkEngine(graph, p=0.5, q=2.0)
        anchor = float(np.median(graph.time))
        starts = np.arange(graph.num_nodes)
        walks = engine.temporal(
            starts, np.full(starts.size, anchor), 8, np.random.default_rng(0)
        )
        assert len(walks) == graph.num_nodes
        for start, w in zip(starts, walks):
            assert w.nodes[0] == start
            assert all(t < anchor for t in w.edge_times)
            assert all(
                w.edge_times[i] >= w.edge_times[i + 1]
                for i in range(len(w.edge_times) - 1)
            )
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert graph.has_edge(a, b)

    def test_uniform_walks_stay_on_edges(self, graph):
        engine = BatchedWalkEngine(graph)
        walks = engine.uniform(np.arange(graph.num_nodes), 6, np.random.default_rng(1))
        for w in walks:
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert graph.has_edge(a, b)

    def test_node2vec_walks_stay_on_edges(self, graph):
        engine = BatchedWalkEngine(graph, p=0.25, q=4.0)
        walks = engine.node2vec(np.arange(graph.num_nodes), 8, np.random.default_rng(2))
        for w in walks:
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert graph.has_edge(a, b)

    def test_ctdne_time_respecting_in_batch(self, graph):
        engine = BatchedWalkEngine(graph)
        edges = np.arange(graph.num_edges)
        walks = engine.ctdne(edges, 8, np.random.default_rng(3))
        for e, w in zip(edges, walks):
            assert set(w.nodes[:2]) == {int(graph.src[e]), int(graph.dst[e])}
            assert all(
                w.edge_times[i] <= w.edge_times[i + 1]
                for i in range(len(w.edge_times) - 1)
            )

    def test_batched_deterministic_given_seed(self, graph):
        engine = BatchedWalkEngine(graph, p=0.5, q=2.0)
        anchor = graph.time_span[1] + 1.0
        starts = np.arange(graph.num_nodes)
        anchors = np.full(starts.size, anchor)
        a = engine.temporal(starts, anchors, 6, np.random.default_rng(9))
        b = engine.temporal(starts, anchors, 6, np.random.default_rng(9))
        assert [w.nodes for w in a] == [w.nodes for w in b]

    def test_mixed_weight_scales_do_not_starve_tiny_walks(self):
        """A walk with tiny weights must survive huge-weight batch neighbors.

        Regression test: differencing the global cumsum for segment totals
        cancels catastrophically when a segment's weights are ~20 orders of
        magnitude below the batch prefix, spuriously terminating the walk.
        """
        g = TemporalGraph.from_edges(
            np.array([0, 0, 2, 2]),
            np.array([1, 1, 3, 3]),
            np.array([1.0, 2.0, 1.0, 2.0]),
            np.array([1e20, 1e20, 1e-8, 2e-8]),
        )
        engine = BatchedWalkEngine(g, decay=0.0)
        walks = engine.temporal(
            np.array([0, 2]), np.array([3.0, 3.0]), 3, np.random.default_rng(0)
        )
        assert len(walks[0].nodes) > 1
        assert len(walks[1].nodes) > 1  # the tiny-weight walk keeps walking

    def test_mismatched_injected_engine_rejected(self, graph):
        with pytest.raises(ValueError, match="differ"):
            TemporalWalker(graph, p=0.5, engine=BatchedWalkEngine(graph))
        with pytest.raises(ValueError, match="differ"):
            Node2VecWalker(graph, q=3.0, engine=BatchedWalkEngine(graph))

    def test_isolated_nodes_terminate_immediately(self):
        g = TemporalGraph.from_edges(
            np.array([0]), np.array([1]), np.array([1.0]), num_nodes=4
        )
        engine = BatchedWalkEngine(g)
        walks = engine.uniform(np.array([2, 3]), 5, np.random.default_rng(0))
        assert [w.nodes for w in walks] == [[2], [3]]
        walks = engine.temporal(
            np.array([2, 0]), np.array([5.0, 5.0]), 5, np.random.default_rng(0)
        )
        assert walks[0].nodes == [2]
        assert walks[1].nodes[:2] == [0, 1]


# ----------------------------------------------------------------------
# walk cache
# ----------------------------------------------------------------------
class TestWalkCache:
    def test_lru_eviction(self):
        cache = WalkCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None  # evicted
        assert cache.get("b") == 2
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_recency_refresh(self):
        cache = WalkCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_temporal_sets_hit_returns_identical_walks(self, graph):
        engine = BatchedWalkEngine(graph, p=0.5, q=2.0, cache_size=64)
        anchor = float(np.median(graph.time))
        nodes = np.arange(8)
        anchors = np.full(8, anchor)
        rng = np.random.default_rng(0)
        first = engine.temporal_walk_sets(nodes, anchors, 3, 5, rng)
        second = engine.temporal_walk_sets(nodes, anchors, 3, 5, rng)
        assert engine.cache.hits == 8
        for a, b in zip(first, second):
            assert [w.nodes for w in a] == [w.nodes for w in b]
            assert [w.edge_times for w in a] == [w.edge_times for w in b]

    def test_full_hit_consumes_no_randomness(self, graph):
        engine = BatchedWalkEngine(graph, cache_size=64)
        nodes = np.arange(6)
        engine.uniform_walk_sets(nodes, 2, 4, np.random.default_rng(0))
        rng = np.random.default_rng(123)
        engine.uniform_walk_sets(nodes, 2, 4, rng)
        untouched = np.random.default_rng(123)
        assert rng.random() == untouched.random()

    def test_different_anchor_misses_with_exact_keys(self, graph):
        engine = BatchedWalkEngine(graph, cache_size=64, time_buckets=0)
        lo, hi = graph.time_span
        nodes = np.arange(4)
        rng = np.random.default_rng(0)
        engine.temporal_walk_sets(nodes, np.full(4, hi), 2, 4, rng)
        engine.temporal_walk_sets(nodes, np.full(4, hi - (hi - lo) / 1e6), 2, 4, rng)
        assert engine.cache.hits == 0

    def test_time_buckets_coarsen_keys(self, graph):
        engine = BatchedWalkEngine(graph, cache_size=64, time_buckets=4)
        lo, hi = graph.time_span
        span = hi - lo
        nodes = np.arange(4)
        rng = np.random.default_rng(0)
        # 0.50 and 0.55 land in the same of 4 buckets on the [0, 1] scale.
        engine.temporal_walk_sets(nodes, np.full(4, lo + 0.50 * span), 2, 4, rng)
        engine.temporal_walk_sets(nodes, np.full(4, lo + 0.55 * span), 2, 4, rng)
        assert engine.cache.hits == 4

    def test_cache_results_match_uncached(self, graph):
        """A cold cached engine must produce exactly the uncached walks."""
        anchor = float(np.median(graph.time))
        nodes = np.arange(10)
        anchors = np.full(10, anchor)
        plain = BatchedWalkEngine(graph, p=0.5, q=2.0)
        cached = BatchedWalkEngine(graph, p=0.5, q=2.0, cache_size=64)
        a = plain.temporal_walk_sets(nodes, anchors, 3, 5, np.random.default_rng(4))
        b = cached.temporal_walk_sets(nodes, anchors, 3, 5, np.random.default_rng(4))
        for sa, sb in zip(a, b):
            assert [w.nodes for w in sa] == [w.nodes for w in sb]

    def test_model_cache_smoke(self):
        """EHNA trains with the walk cache enabled and records hits."""
        from repro.core import EHNA

        g = temporal_sbm(num_nodes=30, num_edges=120, seed=11)
        model = EHNA(
            dim=8, epochs=2, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2, walk_cache_size=512, seed=0,
        ).fit(g)
        assert np.all(np.isfinite(model.embeddings()))
        assert model.engine.cache.hits > 0
