"""Tests for CTDNE's time-respecting walks."""

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.walks import CTDNEWalker


class TestTimeRespecting:
    def test_times_non_decreasing(self, tiny_graph):
        walker = CTDNEWalker(tiny_graph)
        rng = np.random.default_rng(0)
        for e in range(tiny_graph.num_edges):
            w = walker.walk_from_edge(e, 6, rng)
            assert all(
                w.edge_times[i] <= w.edge_times[i + 1]
                for i in range(len(w.edge_times) - 1)
            )

    def test_walk_starts_with_edge_endpoints(self, path_graph):
        walker = CTDNEWalker(path_graph)
        w = walker.walk_from_edge(0, 3, np.random.default_rng(0))
        assert set(w.nodes[:2]) == {0, 1}
        assert w.edge_times[0] == 1.0

    def test_forward_only_on_path(self, path_graph):
        """From edge (0,1,t=1) the only time-respecting direction is right."""
        walker = CTDNEWalker(path_graph)
        rng = np.random.default_rng(0)
        for _ in range(20):
            w = walker.walk_from_edge(0, 4, rng)
            if w.nodes[0] == 0:  # oriented 0 -> 1
                assert w.nodes == [0, 1, 2, 3, 4]

    def test_stuck_walk_terminates(self, path_graph):
        """From the last edge there is nowhere newer to go."""
        walker = CTDNEWalker(path_graph)
        w = walker.walk_from_edge(3, 5, np.random.default_rng(0))
        assert len(w.nodes) <= 3  # at most the edge + one tie step

    def test_walks_stay_on_edges(self, sbm_graph):
        walker = CTDNEWalker(sbm_graph)
        rng = np.random.default_rng(1)
        for _ in range(30):
            e = int(rng.integers(sbm_graph.num_edges))
            w = walker.walk_from_edge(e, 8, rng)
            for a, b in zip(w.nodes, w.nodes[1:]):
                assert sbm_graph.has_edge(a, b)


class TestCorpus:
    def test_corpus_size(self, sbm_graph):
        corpus = CTDNEWalker(sbm_graph).corpus(50, 6, np.random.default_rng(0))
        assert len(corpus) == 50

    def test_sentences_are_node_lists(self, sbm_graph):
        corpus = CTDNEWalker(sbm_graph).corpus(10, 6, np.random.default_rng(0))
        for s in corpus:
            assert len(s) >= 2
            assert all(isinstance(v, int) for v in s)

    def test_validation(self, sbm_graph):
        with pytest.raises(ValueError):
            CTDNEWalker(sbm_graph).corpus(0, 6)
