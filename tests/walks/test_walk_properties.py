"""Property-based invariants of the walk engines on random temporal graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import TemporalGraph
from repro.walks import CTDNEWalker, TemporalWalker, UniformWalker


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    m = draw(st.integers(min_value=2, max_value=25))
    src, dst, time = [], [], []
    for _ in range(m):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        src.append(u)
        dst.append(v)
        time.append(draw(st.floats(min_value=0, max_value=100, allow_nan=False)))
    return TemporalGraph.from_edges(
        np.array(src), np.array(dst), np.array(time), num_nodes=n
    )


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_temporal_walk_never_uses_future_edges(graph, seed):
    rng = np.random.default_rng(seed)
    t_anchor = float(np.median(graph.time))
    walker = TemporalWalker(graph, p=0.5, q=2.0)
    for start in range(graph.num_nodes):
        w = walker.walk(start, t_anchor, 5, rng)
        assert all(t < t_anchor for t in w.edge_times)
        assert all(
            w.edge_times[i] >= w.edge_times[i + 1]
            for i in range(len(w.edge_times) - 1)
        )


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_temporal_walk_edges_exist(graph, seed):
    rng = np.random.default_rng(seed)
    walker = TemporalWalker(graph)
    t_anchor = float(graph.time[-1]) + 1.0
    for start in range(graph.num_nodes):
        w = walker.walk(start, t_anchor, 4, rng)
        for a, b in zip(w.nodes, w.nodes[1:]):
            assert graph.has_edge(a, b)


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_ctdne_walks_time_respecting(graph, seed):
    rng = np.random.default_rng(seed)
    walker = CTDNEWalker(graph)
    for _ in range(5):
        e = int(rng.integers(graph.num_edges))
        w = walker.walk_from_edge(e, 5, rng)
        assert all(
            w.edge_times[i] <= w.edge_times[i + 1]
            for i in range(len(w.edge_times) - 1)
        )
        for a, b in zip(w.nodes, w.nodes[1:]):
            assert graph.has_edge(a, b)


@given(random_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_uniform_walks_valid(graph, seed):
    rng = np.random.default_rng(seed)
    walker = UniformWalker(graph)
    for start in range(graph.num_nodes):
        w = walker.walk(start, 4, rng)
        assert w.nodes[0] == start
        for a, b in zip(w.nodes, w.nodes[1:]):
            assert graph.has_edge(a, b)
