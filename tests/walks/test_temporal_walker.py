"""Tests for the paper's temporal random walk (Eq. 1-2, Definition 2)."""

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.walks import TemporalWalker


class TestHistoricalConstraint:
    def test_first_hop_strictly_before_context(self, path_graph):
        """A walk anchored at t=2 from node 1 may only use the t=1 edge."""
        walker = TemporalWalker(path_graph)
        for _ in range(20):
            w = walker.walk(1, t_context=2.0, length=3, rng=np.random.default_rng(_))
            assert all(t < 2.0 for t in w.edge_times)

    def test_times_non_increasing_along_walk(self, tiny_graph):
        walker = TemporalWalker(tiny_graph)
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = walker.walk(0, t_context=2018.5, length=6, rng=rng)
            times = w.edge_times
            assert all(times[i] >= times[i + 1] for i in range(len(times) - 1))

    def test_early_termination_when_no_history(self, path_graph):
        """Node 0's only edge is at t=1; anchored at t=1 nothing is usable."""
        walker = TemporalWalker(path_graph)
        w = walker.walk(0, t_context=1.0, length=5, rng=np.random.default_rng(0))
        assert w.nodes == [0]
        assert w.edge_times == []

    def test_include_context_allows_boundary_edge(self, path_graph):
        walker = TemporalWalker(path_graph)
        w = walker.walk(
            0, t_context=1.0, length=1, rng=np.random.default_rng(0),
            include_context=True,
        )
        assert w.nodes == [0, 1]

    def test_walk_respects_length_bound(self, tiny_graph):
        walker = TemporalWalker(tiny_graph)
        rng = np.random.default_rng(1)
        for _ in range(20):
            w = walker.walk(0, t_context=2018.5, length=4, rng=rng)
            assert len(w.nodes) <= 5

    def test_relevance_definition2(self, tiny_graph):
        """Every visited node must reach the start through a time-respecting
        path — guaranteed if walk edges are non-increasing backwards."""
        walker = TemporalWalker(tiny_graph)
        rng = np.random.default_rng(2)
        for _ in range(50):
            w = walker.walk(0, t_context=2018.5, length=8, rng=rng)
            # reverse the walk: from the far end back to 0, times must be
            # non-decreasing (Definition 2's ordering).
            rev = w.edge_times[::-1]
            assert all(rev[i] <= rev[i + 1] for i in range(len(rev) - 1))


class TestBiasParameters:
    def _backtrack_rate(self, graph, p, seed=0, walks=300):
        walker = TemporalWalker(graph, p=p, q=1.0, decay=0.0)
        rng = np.random.default_rng(seed)
        backtracks = total = 0
        for _ in range(walks):
            w = walker.walk(0, t_context=2018.5, length=4, rng=rng)
            for i in range(2, len(w.nodes)):
                total += 1
                if w.nodes[i] == w.nodes[i - 2]:
                    backtracks += 1
        return backtracks / max(total, 1)

    def test_small_p_increases_backtracking(self, tiny_graph):
        high_return = self._backtrack_rate(tiny_graph, p=0.05)
        low_return = self._backtrack_rate(tiny_graph, p=20.0)
        assert high_return > low_return

    def test_decay_prefers_recent_edges(self, tiny_graph):
        """With strong decay, walks from node 0 anchored after 2018 should
        overwhelmingly start with the most recent (2018) edge to node 6."""
        strong = TemporalWalker(tiny_graph, decay=50.0)
        weak = TemporalWalker(tiny_graph, decay=0.0)
        rng = np.random.default_rng(3)

        def recent_rate(walker):
            hits = 0
            for _ in range(200):
                w = walker.walk(0, t_context=2018.5, length=1, rng=rng)
                if len(w.nodes) > 1 and w.nodes[1] == 6:
                    hits += 1
            return hits / 200

        assert recent_rate(strong) > recent_rate(weak) + 0.2

    def test_parameter_validation(self, tiny_graph):
        with pytest.raises(ValueError):
            TemporalWalker(tiny_graph, p=0.0)
        with pytest.raises(ValueError):
            TemporalWalker(tiny_graph, q=-1.0)
        with pytest.raises(ValueError):
            TemporalWalker(tiny_graph, decay=-0.5)


class TestWalkSets:
    def test_walks_count(self, tiny_graph):
        walker = TemporalWalker(tiny_graph)
        ws = walker.walks(0, 2018.5, num_walks=5, length=3, rng=np.random.default_rng(0))
        assert len(ws) == 5

    def test_walks_deterministic_with_seed(self, tiny_graph):
        walker = TemporalWalker(tiny_graph)
        a = walker.walks(0, 2018.5, 4, 5, rng=np.random.default_rng(7))
        b = walker.walks(0, 2018.5, 4, 5, rng=np.random.default_rng(7))
        assert [w.nodes for w in a] == [w.nodes for w in b]

    def test_edge_weights_bias_transitions(self):
        """A heavier parallel edge must attract proportionally more walks."""
        g = TemporalGraph.from_edges(
            np.array([0, 0]), np.array([1, 2]), np.array([1.0, 1.0]),
            np.array([9.0, 1.0]),
        )
        walker = TemporalWalker(g, decay=0.0)
        rng = np.random.default_rng(0)
        to_1 = sum(
            walker.walk(0, 2.0, 1, rng).nodes[-1] == 1 for _ in range(500)
        )
        assert to_1 / 500 == pytest.approx(0.9, abs=0.05)
