"""Array-native WalkBatch fast path vs the Walk-object reference pipeline.

``BatchedWalkEngine.temporal_walk_batch`` / ``uniform_walk_batch`` must
produce *bitwise* the same padded arrays as sampling ``Walk`` sets and
padding them through ``batch_walks`` — same RNG draws, same [0, 1] time
scaling, same time-sum accumulation order, same reversal and zero padding —
for every layout (chronological or not, with or without context, two-level
or merged).
"""

import numpy as np
import pytest

from repro.core.aggregation import batch_walks
from repro.datasets import temporal_sbm
from repro.walks.base import Walk, WalkBatch
from repro.walks.engine import BatchedWalkEngine

K, LENGTH = 4, 6


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=40, num_edges=300, seed=5)


@pytest.fixture(scope="module")
def engine(graph):
    return BatchedWalkEngine(graph, p=0.5, q=2.0, decay=1.0)


def _assert_batches_equal(ref: WalkBatch, fast: WalkBatch):
    np.testing.assert_array_equal(ref.ids, fast.ids)
    np.testing.assert_array_equal(ref.valid, fast.valid)
    np.testing.assert_array_equal(ref.time_sums, fast.time_sums)
    assert ref.k == fast.k


class TestTemporalWalkBatch:
    @pytest.mark.parametrize("chronological", [True, False])
    @pytest.mark.parametrize("include_context", [True, False])
    def test_bitwise_equals_reference(self, graph, engine, chronological, include_context):
        nodes = np.arange(30)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        sets = engine.temporal_walk_sets(
            nodes, anchors, K, LENGTH, r1,
            include_context=include_context, use_cache=False,
        )
        ref = batch_walks(sets, graph.scale_time, chronological=chronological)
        fast = engine.temporal_walk_batch(
            nodes, anchors, K, LENGTH, r2,
            include_context=include_context, chronological=chronological,
        )
        _assert_batches_equal(ref, fast)
        # Both paths consumed the RNG stream identically.
        assert r1.random() == r2.random()

    def test_mixed_anchors_and_short_history(self, graph, engine):
        """Anchors early in the timeline give short/length-1 walks; the fast
        path must pad and zero them exactly like the reference."""
        lo, hi = graph.time_span
        nodes = np.arange(20)
        anchors = np.linspace(lo - 1.0, hi + 1.0, nodes.size)
        r1, r2 = np.random.default_rng(3), np.random.default_rng(3)
        sets = engine.temporal_walk_sets(nodes, anchors, K, LENGTH, r1, use_cache=False)
        ref = batch_walks(sets, graph.scale_time)
        fast = engine.temporal_walk_batch(nodes, anchors, K, LENGTH, r2)
        _assert_batches_equal(ref, fast)

    def test_merged_layout(self, graph, engine):
        """WalkBatch.merged() == batch_walks(..., merge=True) (EHNA-SL)."""
        nodes = np.arange(15)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        r1, r2 = np.random.default_rng(9), np.random.default_rng(9)
        sets = engine.temporal_walk_sets(nodes, anchors, K, LENGTH, r1, use_cache=False)
        ref = batch_walks(sets, graph.scale_time, merge=True)
        fast = engine.temporal_walk_batch(nodes, anchors, K, LENGTH, r2).merged()
        _assert_batches_equal(ref, fast)

    def test_take_targets_matches_subset_padding(self, graph, engine):
        """Selecting targets re-trims exactly like batch_walks on the subset."""
        nodes = np.arange(30)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        keep = np.array([0, 3, 17, 29])
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        sets = engine.temporal_walk_sets(nodes, anchors, K, LENGTH, r1, use_cache=False)
        ref = batch_walks([sets[i] for i in keep], graph.scale_time)
        fast = engine.temporal_walk_batch(nodes, anchors, K, LENGTH, r2)
        _assert_batches_equal(ref, fast.take_targets(keep))


class TestUniformWalkBatch:
    @pytest.mark.parametrize("length", [1, 2, 5])
    def test_bitwise_equals_reference(self, graph, engine, length):
        nodes = np.arange(25)
        r1, r2 = np.random.default_rng(11), np.random.default_rng(11)
        sets = engine.uniform_walk_sets(nodes, K, length, r1, use_cache=False)
        ref = batch_walks(sets, graph.scale_time)
        fast = engine.uniform_walk_batch(nodes, K, length, r2)
        _assert_batches_equal(ref, fast)
        assert r1.random() == r2.random()

    def test_static_batches_have_zero_time_sums(self, engine):
        fast = engine.uniform_walk_batch(np.arange(10), K, 3, np.random.default_rng(0))
        assert np.all(fast.time_sums == 0.0)


class TestWalkBatchHelpers:
    def test_row_lengths(self):
        batch = batch_walks(
            [[Walk([1, 2, 3], [5.0, 6.0]), Walk([4])]], lambda t: t
        )
        np.testing.assert_array_equal(batch.row_lengths(), [3, 1])

    def test_merged_single_target(self):
        batch = batch_walks(
            [[Walk([1, 2], [5.0]), Walk([3, 4, 5], [6.0, 7.0])]],
            lambda t: t,
            chronological=False,
        )
        merged = batch.merged()
        assert merged.k == 1
        np.testing.assert_array_equal(merged.ids, [[1, 2, 3, 4, 5]])
        np.testing.assert_array_equal(merged.valid, [[1.0] * 5])

    def test_padding_slots_are_zero(self, graph, engine):
        nodes = np.arange(12)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        fast = engine.temporal_walk_batch(
            nodes, anchors, K, LENGTH, np.random.default_rng(1)
        )
        pad = fast.valid == 0.0
        assert np.all(fast.ids[pad] == 0)
        assert np.all(fast.time_sums[pad] == 0.0)
