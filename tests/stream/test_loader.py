"""EventStreamLoader: micro-batching policies, validation, replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import TemporalGraph
from repro.stream import EventBatch, EventStreamLoader


def stream(n=10):
    """A simple n-event stream with times 0..n-1 and a tie at 3.0."""
    src = np.arange(n) % 4
    dst = (np.arange(n) + 1) % 4
    time = np.arange(n, dtype=np.float64)
    if n > 4:
        time[4] = 3.0  # tie with event 3
    return src, dst, np.sort(time)


class TestCountBatching:
    def test_batches_have_the_requested_size(self):
        loader = EventStreamLoader(*stream(10), batch_size=4)
        sizes = [len(b) for b in loader]
        assert sizes == [4, 4, 2]
        assert len(loader) == 3

    def test_events_concatenate_back_to_the_stream(self):
        src, dst, time = stream(10)
        loader = EventStreamLoader(src, dst, time, batch_size=3)
        np.testing.assert_array_equal(
            np.concatenate([b.time for b in loader]), time
        )
        np.testing.assert_array_equal(
            np.concatenate([b.src for b in loader]), src
        )

    def test_a_timestamp_tie_may_split_across_batches(self):
        # Events 3 and 4 share time 3.0; batch_size=4 puts the boundary
        # exactly between them — count batching slices by position.
        loader = EventStreamLoader(*stream(10), batch_size=4)
        batches = list(loader)
        assert batches[0].t_hi == 3.0
        assert batches[1].t_lo == 3.0

    def test_single_batch_when_batch_size_exceeds_stream(self):
        loader = EventStreamLoader(*stream(5), batch_size=100)
        assert len(loader) == 1
        assert list(loader)[0].num_events == 5


class TestWindowBatching:
    def test_half_open_windows_partition_the_timeline(self):
        src = np.zeros(6, dtype=int)
        dst = np.ones(6, dtype=int)
        time = np.array([0.0, 0.5, 1.0, 1.5, 3.0, 3.5])
        loader = EventStreamLoader(src, dst, time, window=1.0)
        spans = [(b.t_lo, b.t_hi) for b in loader if len(b)]
        assert spans == [(0.0, 0.5), (1.0, 1.5), (3.0, 3.5)]

    def test_a_boundary_tie_never_splits(self):
        # Three events share t=2.0, exactly on a window boundary: all of
        # them open the second window together (half-open intervals).
        src = np.zeros(5, dtype=int)
        dst = np.ones(5, dtype=int)
        time = np.array([0.0, 1.9, 2.0, 2.0, 2.0])
        loader = EventStreamLoader(src, dst, time, window=2.0)
        batches = list(loader)
        assert [len(b) for b in batches] == [2, 3]
        np.testing.assert_array_equal(batches[1].time, [2.0, 2.0, 2.0])

    def test_empty_windows_are_kept_by_default(self):
        src = np.zeros(2, dtype=int)
        dst = np.ones(2, dtype=int)
        time = np.array([0.0, 5.0])
        loader = EventStreamLoader(src, dst, time, window=1.0)
        sizes = [len(b) for b in loader]
        assert sizes == [1, 0, 0, 0, 0, 1]
        empty = list(loader)[2]
        assert empty.num_events == 0
        assert np.isnan(empty.t_lo) and np.isnan(empty.t_hi)

    def test_drop_empty_skips_quiet_windows(self):
        src = np.zeros(2, dtype=int)
        dst = np.ones(2, dtype=int)
        time = np.array([0.0, 5.0])
        loader = EventStreamLoader(src, dst, time, window=1.0, drop_empty=True)
        assert [len(b) for b in loader] == [1, 1]


class TestValidation:
    def test_out_of_order_stream_is_rejected_with_the_position(self):
        src, dst, time = stream(6)
        time = time.copy()
        time[3] = 0.5  # reaches back
        with pytest.raises(ValueError, match="event stream is out of order"):
            EventStreamLoader(src, dst, time, batch_size=2)
        with pytest.raises(ValueError, match="event 3"):
            EventStreamLoader(src, dst, time, batch_size=2)

    def test_exactly_one_batching_policy_is_required(self):
        src, dst, time = stream(4)
        with pytest.raises(ValueError, match="exactly one"):
            EventStreamLoader(src, dst, time)
        with pytest.raises(ValueError, match="exactly one"):
            EventStreamLoader(src, dst, time, batch_size=2, window=1.0)

    def test_column_length_mismatch_is_rejected(self):
        with pytest.raises(ValueError, match="disagree on length"):
            EventStreamLoader([0, 1], [1], [0.0, 1.0], batch_size=1)

    def test_nonpositive_sizes_are_rejected(self):
        src, dst, time = stream(4)
        with pytest.raises(ValueError):
            EventStreamLoader(src, dst, time, batch_size=0)
        with pytest.raises(ValueError):
            EventStreamLoader(src, dst, time, window=0.0)

    def test_empty_stream_yields_no_batches(self):
        empty = np.empty(0)
        for kw in ({"batch_size": 4}, {"window": 1.0}):
            loader = EventStreamLoader(empty, empty, empty, **kw)
            assert len(loader) == 0
            assert list(loader) == []


class TestReplayAndBatches:
    def test_from_graph_replays_all_edges_in_time_order(self, tiny_graph):
        loader = EventStreamLoader.from_graph(tiny_graph, batch_size=4)
        assert loader.num_events == tiny_graph.num_edges
        times = np.concatenate([b.time for b in loader])
        np.testing.assert_array_equal(times, tiny_graph.time)

    def test_from_graph_accepts_any_edge_id_order(self, tiny_graph):
        ids = np.array([7, 2, 9, 0])
        loader = EventStreamLoader.from_graph(tiny_graph, ids, batch_size=2)
        times = np.concatenate([b.time for b in loader])
        np.testing.assert_array_equal(times, tiny_graph.time[np.sort(ids)])

    def test_batches_carry_weights(self):
        src, dst, time = stream(4)
        w = np.array([1.0, 2.0, 3.0, 4.0])
        loader = EventStreamLoader(src, dst, time, w, batch_size=3)
        batches = list(loader)
        np.testing.assert_array_equal(batches[0].weight, [1.0, 2.0, 3.0])
        assert len(batches[0].columns()) == 4

    def test_columns_feed_graph_growth_directly(self, tiny_graph):
        base, held = tiny_graph.split_recent(0.3)
        g = base.copy()
        for batch in EventStreamLoader.from_graph(tiny_graph, held, batch_size=2):
            g.extend_in_place(*batch.columns())
        g.compact()
        np.testing.assert_array_equal(g.time, tiny_graph.time)

    def test_event_batch_len_and_bounds(self):
        b = EventBatch(
            src=np.array([0, 1]),
            dst=np.array([1, 2]),
            time=np.array([1.0, 2.0]),
        )
        assert len(b) == 2 and b.num_events == 2
        assert b.t_lo == 1.0 and b.t_hi == 2.0
        assert len(b.columns()) == 3
