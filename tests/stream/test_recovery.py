"""Crash-safe serving: WAL + checkpoint recovery under fault injection.

The property under test: **kill the service at any instant and
:meth:`OnlineService.recover` rebuilds the exact pre-crash service** — the
recovered run, resumed from where its counters say it stands, ends with a
bitwise-identical event table and graph and the same encode answers as a
run that never crashed.  The sweep in :class:`TestCrashEverywhere` proves
it at every named injection point of the ingest -> WAL -> absorb ->
checkpoint cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import load
from repro.stream import EventStreamLoader, OnlineService, WALError, WriteAheadLog
from repro.utils import faults
from repro.utils.checkpoint import CheckpointError, load_checkpoint
from repro.utils.faults import SERVICE_INJECTION_POINTS, InjectedCrash

TRAIN_EVERY = 2
CHECKPOINT_EVERY = 3
BATCH_SIZE = 12


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """A fitted model (saved once) plus the held-out stream it will ingest."""
    graph = load("digg", scale=0.05, seed=0)
    train, held = graph.split_recent(0.3)
    model = EHNA(
        dim=8, epochs=1, num_walks=2, walk_length=4, batch_size=64, seed=0
    )
    model.fit(train)
    base = model.save(tmp_path_factory.mktemp("base") / "base.npz")
    loader = EventStreamLoader.from_graph(graph, held, batch_size=BATCH_SIZE)
    return base, list(loader)


def fresh_service(world, tmp_path, **kw):
    base, batches = world
    model = EHNA.load(base)
    kw.setdefault("train_every", TRAIN_EVERY)
    kw.setdefault("wal_dir", tmp_path / "wal")
    kw.setdefault("checkpoint_every", CHECKPOINT_EVERY)
    kw.setdefault("checkpoint_path", tmp_path / "ck.npz")
    return OnlineService(model, **kw), batches


@pytest.fixture(scope="module")
def reference(world):
    """Final state of the uncrashed run every recovery must reproduce."""
    base, batches = world
    model = EHNA.load(base)
    svc = OnlineService(model, train_every=TRAIN_EVERY)
    for batch in batches:
        svc.ingest(batch)
    nodes = np.arange(min(20, svc.graph.num_nodes))
    at = float(svc.graph.time[-1])
    return svc, nodes, at, svc.encode(nodes, at=at)


def assert_matches_reference(svc, reference):
    ref, nodes, at, ref_emb = reference
    np.testing.assert_array_equal(svc.graph.src, ref.graph.src)
    np.testing.assert_array_equal(svc.graph.dst, ref.graph.dst)
    np.testing.assert_array_equal(svc.graph.time, ref.graph.time)
    np.testing.assert_array_equal(svc.graph.weight, ref.graph.weight)
    assert svc.graph.num_nodes == ref.graph.num_nodes
    assert svc.staleness == ref.staleness
    np.testing.assert_allclose(
        svc.encode(nodes, at=at), ref_emb, rtol=0, atol=0
    )


#: How many hits to let pass before firing, per point: ingest-side points
#: fire on the third batch (mid-stream, after the first auto-checkpoint is
#: scheduled), absorb points on the second absorb, checkpoint points on the
#: first auto-checkpoint.  The stream is 4 batches, so every point is
#: actually reached (asserted below).
def skip_for(point: str) -> int:
    if ".absorb." in point:
        return 1
    if "checkpoint" in point:
        return 0
    return 2


@pytest.mark.faults
class TestCrashEverywhere:
    @pytest.mark.parametrize("point", SERVICE_INJECTION_POINTS)
    def test_exact_recovery_at_every_injection_point(
        self, world, reference, tmp_path, point
    ):
        svc, batches = fresh_service(world, tmp_path)
        ck = svc.checkpoint()  # recovery anchor before the faulty stretch
        name, _, torn = point.partition(":")
        kw = {"byte_limit": 37} if torn else {}
        with faults.inject(name, skip=skip_for(point), **kw) as fault:
            with pytest.raises(InjectedCrash):
                for batch in batches:
                    svc.ingest(batch)
        assert fault.fired, f"stream never reached {point}"

        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        for batch in batches[recovered.stats()["batches_ingested"] :]:
            recovered.ingest(batch)
        assert_matches_reference(recovered, reference)


@pytest.mark.faults
class TestRecoveryEdgeCases:
    def test_recovery_with_an_empty_wal(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        for batch in batches:
            svc.ingest(batch)
        ck = svc.checkpoint()  # rotates + prunes: the WAL is now empty
        assert list(svc.wal.records(start_seq=svc.stats()["batches_ingested"] + 1)) == []
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.stats()["batches_ingested"] == len(batches)
        np.testing.assert_array_equal(recovered.graph.time, svc.graph.time)

    def test_recovery_without_a_wal_directory(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        svc.ingest(batches[0])
        ck = svc.checkpoint()
        recovered = OnlineService.recover(ck)  # checkpoint only, no replay
        assert recovered.wal is None
        assert recovered.stats()["batches_ingested"] == 1
        np.testing.assert_array_equal(recovered.graph.time, svc.graph.time)

    def test_batch_durable_but_unapplied_is_replayed(self, world, tmp_path):
        # The canonical WAL win: crash after the record is durable but
        # before the graph sees it — the batch must NOT be lost.
        svc, batches = fresh_service(world, tmp_path)
        ck = svc.checkpoint()
        before = svc.graph.num_edges
        with faults.inject("wal.append.synced"):
            with pytest.raises(InjectedCrash):
                svc.ingest(batches[0])
        assert svc.graph.num_edges == before  # crashed pre-apply
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.stats()["batches_ingested"] == 1
        assert recovered.graph.num_edges == before + batches[0].num_events

    def test_crash_during_checkpoint_publish_keeps_the_old_one(
        self, world, tmp_path
    ):
        svc, batches = fresh_service(world, tmp_path)
        ck = svc.checkpoint()
        old_watermark = load_checkpoint(ck).watermark
        svc.ingest(batches[0])
        with faults.inject("checkpoint.write", byte_limit=512):
            with pytest.raises(InjectedCrash):
                svc.checkpoint()
        # The half-written temp never replaced the published archive.
        assert load_checkpoint(ck).watermark == old_watermark
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.stats()["batches_ingested"] == 1

    def test_replay_runs_the_train_every_schedule(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        ck = svc.checkpoint()
        for batch in batches[:TRAIN_EVERY]:
            svc.ingest(batch)
        assert svc.stats()["absorbs"] == 1  # schedule fired pre-crash
        # Crash without checkpointing again: recovery replays both batches
        # and must re-run the auto-absorb exactly where it originally fired.
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.stats()["absorbs"] == 1
        assert recovered.staleness == svc.staleness == 0

    def test_double_recovery_is_idempotent(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        ck = svc.checkpoint()
        for batch in batches[:3]:
            svc.ingest(batch)
        first = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        second = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        np.testing.assert_array_equal(first.graph.src, second.graph.src)
        np.testing.assert_array_equal(first.graph.time, second.graph.time)
        assert first.stats()["batches_ingested"] == second.stats()["batches_ingested"]
        nodes = np.arange(min(10, first.graph.num_nodes))
        at = float(first.graph.time[-1])
        np.testing.assert_array_equal(
            first.encode(nodes, at=at), second.encode(nodes, at=at)
        )

    def test_resumed_ingest_continues_a_fully_pruned_wal(self, world, tmp_path):
        # A checkpoint can prune the whole log; the recovered service must
        # still accept new batches with continuing sequence numbers instead
        # of refusing them as out-of-sequence (regression test).
        svc, batches = fresh_service(world, tmp_path)
        for batch in batches[:-1]:
            svc.ingest(batch)
        ck = svc.checkpoint()  # prunes every logged batch
        svc.close()
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.wal.last_seq == len(batches) - 1
        recovered.ingest(batches[-1])
        assert recovered.wal.last_seq == len(batches)
        (record,) = recovered.wal.records(start_seq=len(batches))
        assert record.num_events == batches[-1].num_events

    def test_plain_model_checkpoint_is_not_recoverable(self, world, tmp_path):
        base, _ = world
        with pytest.raises(CheckpointError, match="no\\s+stream watermark"):
            OnlineService.recover(base)

    def test_recover_refuses_a_pruned_gap(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        first_ck = svc.checkpoint(tmp_path / "old.npz")
        for batch in batches:
            svc.ingest(batch)
        svc.checkpoint()  # prunes everything the newer watermark covers
        empty = np.array([], dtype=np.int64)
        svc.ingest((empty, empty, np.array([]), np.array([])))
        svc.close()
        # The WAL now starts *after* the old checkpoint's watermark: the
        # records in between are gone, so exact recovery from it is
        # impossible and must be refused, not silently approximated.
        assert WriteAheadLog(tmp_path / "wal").first_seq == len(batches) + 1
        with pytest.raises(WALError, match="pruned by a newer checkpoint"):
            OnlineService.recover(first_ck, wal_dir=tmp_path / "wal")


class TestIngestAtomicity:
    def poisoned(self, batches):
        """A batch whose *last* event is invalid (a self-loop)."""
        src, dst, time, weight = batches[0].columns()
        bad_dst = dst.copy()
        bad_dst[-1] = src[-1]
        return src, bad_dst, time, weight

    def test_poisoned_batch_leaves_zero_side_effects(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        before_edges = svc.graph.num_edges
        before_stats = svc.stats()
        with pytest.raises(ValueError, match="self-loops"):
            svc.ingest(self.poisoned(batches))
        assert svc.graph.num_edges == before_edges
        assert svc.graph.pending_events == 0
        assert svc.staleness == 0
        after = svc.stats()
        assert after["batches_ingested"] == before_stats["batches_ingested"]
        assert after["events_ingested"] == before_stats["events_ingested"]
        assert svc.wal.last_seq == 0  # nothing was logged either

    def test_out_of_order_batch_is_not_logged(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        svc.ingest(batches[-1])  # jump the head forward
        logged = svc.wal.last_seq
        with pytest.raises(ValueError, match="out-of-order"):
            svc.ingest(batches[0])
        assert svc.wal.last_seq == logged

    def test_service_still_works_after_a_rejected_batch(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        with pytest.raises(ValueError, match="self-loops"):
            svc.ingest(self.poisoned(batches))
        svc.ingest(batches[0])
        assert svc.stats()["batches_ingested"] == 1
        assert svc.graph.pending_events == batches[0].num_events

    def test_fresh_service_refuses_a_stale_wal(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        svc.ingest(batches[0])
        svc.close()
        other, _ = fresh_service(world, tmp_path)  # same wal dir, batch 0
        with pytest.raises(WALError, match="out of sequence"):
            other.ingest(batches[0])


class TestCheckpointWatermark:
    def test_watermark_records_the_stream_position(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        for batch in batches[:2]:
            svc.ingest(batch)
        ck = svc.checkpoint()
        wm = load_checkpoint(ck).watermark
        assert wm["batches"] == 2
        assert wm["events"] == sum(b.num_events for b in batches[:2])
        assert wm["staleness"] == svc.staleness
        assert wm["head_time"] == float(svc.graph.time[-1])
        assert wm["time_scale"] is not None
        assert wm["service"]["train_every"] == TRAIN_EVERY

    def test_recover_restores_counters_and_config(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        for batch in batches[:2]:
            svc.ingest(batch)
        ck = svc.checkpoint()
        recovered = OnlineService.recover(ck, wal_dir=tmp_path / "wal")
        assert recovered.train_every == TRAIN_EVERY
        assert recovered.checkpoint_every == CHECKPOINT_EVERY
        assert recovered.stats()["batches_ingested"] == 2
        assert recovered.staleness == svc.staleness
        assert recovered.graph.time_scale == svc.graph.time_scale

    def test_recover_accepts_overrides(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        svc.ingest(batches[0])
        ck = svc.checkpoint()
        recovered = OnlineService.recover(
            ck, wal_dir=tmp_path / "wal", train_every=None, epochs=3
        )
        assert recovered.train_every is None
        assert recovered.epochs == 3

    def test_checkpoint_prunes_absorbed_wal_segments(self, world, tmp_path):
        svc, batches = fresh_service(world, tmp_path)
        for batch in batches:
            svc.ingest(batch)
        assert svc.wal.last_seq == len(batches)
        svc.checkpoint()
        # Everything logged is covered by the watermark: fully pruned.
        assert list(svc.wal.records()) == []
        assert svc.stats()["wal_segments"] == 0
