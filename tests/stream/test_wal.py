"""WriteAheadLog: append/replay round-trips, torn tails, rotation, pruning."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.stream.wal import (
    DEFAULT_SEGMENT_BYTES,
    SEGMENT_MAGIC,
    WALCorruptionError,
    WALError,
    WALRecord,
    WriteAheadLog,
)
from repro.utils import faults
from repro.utils.faults import InjectedCrash


def make_batch(n, t0=0.0, node0=0):
    src = np.arange(node0, node0 + n, dtype=np.int64)
    dst = src + 1
    time = np.linspace(t0, t0 + 1.0, n)
    weight = np.full(n, 2.0)
    return src, dst, time, weight


def fill(wal, batches, n=8):
    """Append ``batches`` distinct batches; returns the list appended."""
    out = []
    for i in range(batches):
        batch = make_batch(n, t0=float(i), node0=i)
        wal.append(*batch)
        out.append(batch)
    return out


class TestRoundTrip:
    def test_append_then_read_back_bitwise(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        sent = fill(wal, 3)
        records = list(wal.records())
        assert [r.seq for r in records] == [1, 2, 3]
        for record, (src, dst, time, weight) in zip(records, sent):
            np.testing.assert_array_equal(record.src, src)
            np.testing.assert_array_equal(record.dst, dst)
            np.testing.assert_array_equal(record.time, time)
            np.testing.assert_array_equal(record.weight, weight)

    def test_reopen_resumes_after_the_last_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 2)
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.next_seq == 3
        reopened.append(*make_batch(4))
        assert [r.seq for r in reopened.records()] == [1, 2, 3]

    def test_empty_batch_is_a_durable_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        empty = np.array([], dtype=np.int64)
        wal.append(empty, empty, np.array([]), np.array([]))
        (record,) = wal.records()
        assert record.seq == 1 and record.num_events == 0

    def test_unit_weights_filled_like_the_graph_gate(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        src, dst, time, _ = make_batch(4)
        wal.append(src, dst, time)
        (record,) = wal.records()
        np.testing.assert_array_equal(record.weight, np.ones(4))

    def test_records_start_seq_skips_the_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 4)
        assert [r.seq for r in wal.records(start_seq=3)] == [3, 4]

    def test_invalid_events_rejected_before_any_bytes(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(ValueError, match="self-loops"):
            wal.append(
                np.array([1]), np.array([1]), np.array([0.0]), np.array([1.0])
            )
        assert wal.last_seq == 0
        assert list(wal.records()) == []

    def test_explicit_seq_must_continue_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 2)
        with pytest.raises(WALError, match="out of sequence"):
            wal.append(*make_batch(4), seq=7)

    def test_columns_round_trip_into_wal_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 1)
        (record,) = wal.records()
        assert isinstance(record, WALRecord)
        src, dst, time, weight = record.columns()
        assert src.size == dst.size == time.size == weight.size == 8


class TestRotationAndPrune:
    def test_rotation_bounds_segment_size(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=400)
        fill(wal, 6)
        sizes = [p.stat().st_size for p in wal.segment_paths]
        assert len(sizes) > 1
        assert all(s <= 400 for s in sizes)

    def test_sequence_numbers_continue_across_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=400)
        fill(wal, 6)
        assert [r.seq for r in wal.records()] == list(range(1, 7))

    def test_prune_deletes_only_fully_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=400)
        fill(wal, 6)
        wal.rotate()
        before = len(wal.segment_paths)
        wal.prune(upto_seq=3)
        survivors = [r.seq for r in wal.records()]
        # Whole segments are the prune unit: everything past the watermark
        # survives; a segment straddling it keeps its earlier records too.
        assert len(wal.segment_paths) < before
        assert set(range(4, 7)) <= set(survivors)
        assert wal.first_seq == survivors[0]

    def test_prune_never_touches_the_open_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")  # everything in one open segment
        fill(wal, 3)
        assert wal.prune(upto_seq=3) == []
        assert [r.seq for r in wal.records()] == [1, 2, 3]

    def test_fast_forward_reanchors_an_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")  # fresh: nothing to replay
        wal.fast_forward(9)
        assert wal.next_seq == 10
        wal.append(*make_batch(4))
        assert [r.seq for r in wal.records()] == [10]

    def test_fast_forward_refuses_a_log_with_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 2)
        with pytest.raises(WALError, match="holds records"):
            wal.fast_forward(9)

    def test_fast_forward_refuses_going_backwards(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 3)
        wal.rotate()
        wal.prune(upto_seq=3)  # empty again, but positioned at seq 3
        with pytest.raises(WALError, match="backwards"):
            wal.fast_forward(1)

    def test_prune_everything_then_append_continues_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 3)
        wal.rotate()
        wal.prune(upto_seq=3)
        assert wal.first_seq is None
        wal.append(*make_batch(4), seq=4)
        assert [r.seq for r in wal.records()] == [4]


class TestCrashAnatomy:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 2)
        with faults.inject("wal.append.write", byte_limit=10):
            with pytest.raises(InjectedCrash):
                wal.append(*make_batch(8, t0=99.0))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert reopened.truncated_tail is not None
        assert [r.seq for r in reopened.records()] == [1, 2]
        assert reopened.next_seq == 3

    def test_append_after_torn_tail_reuses_the_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 1)
        with faults.inject("wal.append.write", byte_limit=4):
            with pytest.raises(InjectedCrash):
                wal.append(*make_batch(8))
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal")
        reopened.append(*make_batch(4), seq=2)
        assert [r.seq for r in reopened.records()] == [1, 2]

    def test_partial_segment_header_resets_cleanly(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 1)
        wal.close()
        # Simulate a crash during creation of the next segment: a file
        # holding only a prefix of the 8-byte header.
        (tmp_path / "wal" / "wal-00000002.log").write_bytes(SEGMENT_MAGIC[:2])
        reopened = WriteAheadLog(tmp_path / "wal")
        assert [r.seq for r in reopened.records()] == [1]
        reopened.append(*make_batch(4))  # the reset segment is writable

    def test_mid_log_damage_is_corruption_not_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=400)
        fill(wal, 6)
        wal.close()
        first = WriteAheadLog(tmp_path / "wal").segment_paths[0]
        blob = bytearray(first.read_bytes())
        blob[20] ^= 0xFF  # flip a byte inside the first (non-tail) segment
        first.write_bytes(bytes(blob))
        with pytest.raises(WALCorruptionError, match="refusing to drop"):
            WriteAheadLog(tmp_path / "wal")

    def test_bad_magic_is_corruption(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        (wal_dir / "wal-00000001.log").write_bytes(b"JUNKJUNKJUNK")
        with pytest.raises(WALCorruptionError, match="bad magic"):
            WriteAheadLog(wal_dir)

    def test_unsupported_segment_version_is_refused(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        (wal_dir / "wal-00000001.log").write_bytes(
            SEGMENT_MAGIC + struct.pack("<I", 99)
        )
        with pytest.raises(WALCorruptionError, match="version 99"):
            WriteAheadLog(wal_dir)

    def test_crc_mismatch_at_the_tail_truncates(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        fill(wal, 2)
        wal.close()
        seg = WriteAheadLog(tmp_path / "wal").segment_paths[0]
        blob = bytearray(seg.read_bytes())
        blob[-1] ^= 0xFF  # corrupt the very last payload byte
        seg.write_bytes(bytes(blob))
        reopened = WriteAheadLog(tmp_path / "wal")
        assert [r.seq for r in reopened.records()] == [1]
        assert reopened.truncated_tail is not None


class TestConfig:
    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(WALError, match="sync policy"):
            WriteAheadLog(tmp_path / "wal", sync="usually")

    def test_sync_always_and_never_round_trip(self, tmp_path):
        for policy in ("always", "never"):
            wal = WriteAheadLog(tmp_path / policy, sync=policy)
            fill(wal, 2)
            wal.close()
            assert len(list(WriteAheadLog(tmp_path / policy).records())) == 2

    def test_default_segment_budget_is_sane(self):
        assert DEFAULT_SEGMENT_BYTES >= 1 << 20
