"""StreamingReplayTask: prequential replay, fit sharing, cache isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import load
from repro.tasks import (
    LinkPredictionTask,
    Runner,
    StreamingReplayTask,
    TASK_TYPES,
)


def small_task(**kw):
    defaults = dict(batch_size=20, max_queries=6, num_candidates=5)
    defaults.update(kw)
    return StreamingReplayTask(**defaults)


class TestStreamingReplayTask:
    def test_registered_and_default_constructible(self):
        assert TASK_TYPES["streaming_replay"] is StreamingReplayTask
        assert StreamingReplayTask().name == "streaming_replay"

    def test_shares_the_holdout_fit_key(self):
        assert small_task().fit_key == LinkPredictionTask().fit_key

    def test_prepare_splits_the_recent_suffix(self):
        graph = load("digg", scale=0.05, seed=0)
        data = small_task().prepare(graph, np.random.default_rng(0))
        assert data.train_graph.num_edges < graph.num_edges
        held = data.payload.held
        assert held.size == graph.num_edges - data.train_graph.num_edges
        # The held suffix is the most recent events.
        assert graph.time[held].min() >= data.train_graph.time[-1]

    def test_evaluate_reports_quality_and_service_stats(self):
        graph = load("digg", scale=0.05, seed=0)
        task = small_task()
        rng = np.random.default_rng(0)
        data = task.prepare(graph, rng)
        model = EHNA(
            dim=8, epochs=1, num_walks=2, walk_length=4, batch_size=64, seed=0
        )
        model.fit(data.train_graph)
        out = task.evaluate(model, data, rng)
        assert set(out) == {
            "mrr",
            "queries",
            "events_per_sec",
            "encode_p50_ms",
            "encode_p99_ms",
            "absorbs",
        }
        assert 0.0 < out["mrr"] <= 1.0
        assert out["queries"] > 0
        assert out["events_per_sec"] > 0
        assert out["absorbs"] >= 1

    def test_evaluate_does_not_mutate_the_cached_model(self):
        graph = load("digg", scale=0.05, seed=0)
        task = small_task()
        rng = np.random.default_rng(0)
        data = task.prepare(graph, rng)
        model = EHNA(
            dim=8, epochs=1, num_walks=2, walk_length=4, batch_size=64, seed=0
        )
        model.fit(data.train_graph)
        weights = model.embedding.weight.data.copy()
        final = model.embeddings().copy()
        num_edges = model.graph.num_edges
        task.evaluate(model, data, rng)
        # The streamed events went into a clone: the fit is untouched.
        np.testing.assert_array_equal(model.embedding.weight.data, weights)
        np.testing.assert_array_equal(model.embeddings(), final)
        assert model.graph.num_edges == num_edges
        assert model.graph.time_scale is None  # no pin leaked into the fit

    def test_runs_through_the_runner_sharing_one_fit(self):
        model = EHNA(
            dim=8, epochs=1, num_walks=2, walk_length=4, batch_size=64, seed=0
        )
        runner = Runner(
            ["digg"],
            {"EHNA": lambda: model},
            [small_task(), LinkPredictionTask(repeats=2)],
            scale=0.05,
            seed=0,
            verbose=False,
        )
        table = runner.run()
        assert table.num_fits() == 1  # fit_key shared across both tasks
        assert "streaming_replay" in table.tasks()

    def test_validates_its_parameters(self):
        with pytest.raises(ValueError):
            StreamingReplayTask(fraction=0.0)
        with pytest.raises(ValueError):
            StreamingReplayTask(batch_size=0)
        with pytest.raises(ValueError):
            StreamingReplayTask(train_every=0)
