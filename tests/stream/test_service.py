"""OnlineService: the ingest -> absorb -> encode loop and its counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import load
from repro.stream import EventStreamLoader, LatencyTracker, OnlineService, ThroughputTracker


@pytest.fixture(scope="module")
def fitted():
    """A small trained EHNA plus the held-out suffix it has not seen."""
    graph = load("digg", scale=0.05, seed=0)
    train, held = graph.split_recent(0.3)
    model = EHNA(
        dim=8, epochs=1, num_walks=2, walk_length=4, batch_size=64, seed=0
    )
    model.fit(train)
    return model, graph, held


def make_service(model, **kw):
    return OnlineService(model, **kw)


def clone(model):
    """Fresh model per test (the module fixture must stay pristine)."""
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        return EHNA.load(model.save(Path(tmp) / "m.npz"))


class TestLifecycle:
    def test_requires_a_fitted_model(self):
        with pytest.raises(RuntimeError, match="call fit"):
            OnlineService(EHNA(dim=8))

    def test_ingest_then_absorb_clears_staleness(self, fitted):
        model, graph, held = fitted
        svc = make_service(clone(model))
        loader = EventStreamLoader.from_graph(graph, held, batch_size=16)
        for batch in loader:
            svc.ingest(batch)
        assert svc.staleness == loader.num_events
        svc.absorb()
        assert svc.staleness == 0
        assert svc.graph.num_edges == graph.num_edges
        assert svc.stats()["absorbs"] == 1

    def test_train_every_auto_absorbs(self, fitted):
        model, graph, held = fitted
        svc = make_service(clone(model), train_every=2)
        loader = EventStreamLoader.from_graph(graph, held, batch_size=12)
        for batch in loader:
            svc.ingest(batch)
        # 4 batches with train_every=2: absorbs fire after batches 2 and 4,
        # so every event is absorbed by the end of the replay.
        assert svc.stats()["absorbs"] == len(loader) // 2
        assert svc.staleness == 0

    def test_zero_event_absorb_is_a_noop(self, fitted):
        model, *_ = fitted
        m = clone(model)
        svc = make_service(m)
        weights = m.embedding.weight.data.copy()
        final = m.embeddings().copy()
        seed = m._infer_seed
        svc.absorb()
        np.testing.assert_array_equal(m.embedding.weight.data, weights)
        np.testing.assert_array_equal(m.embeddings(), final)
        assert m._infer_seed == seed
        assert svc.stats()["absorbs"] == 0

    def test_empty_batch_ticks_the_absorb_schedule(self, fitted):
        model, graph, held = fitted
        svc = make_service(clone(model), train_every=1)
        empty = (np.empty(0, int), np.empty(0, int), np.empty(0))
        svc.ingest(empty)  # quiet window: no events, but a scheduled tick
        assert svc.stats()["batches_ingested"] == 1
        assert svc.stats()["events_ingested"] == 0
        assert svc.stats()["absorbs"] == 0  # nothing to train on

    def test_out_of_order_ingest_is_rejected(self, fitted):
        model, graph, held = fitted
        svc = make_service(clone(model))
        t_old = float(model.graph.time[0])
        with pytest.raises(ValueError, match="out-of-order ingest"):
            svc.ingest(([0], [1], [t_old]))

    def test_ingest_accepts_row_matrices_too(self, fitted):
        model, *_ = fitted
        m = clone(model)
        svc = make_service(m)
        head = float(m.graph.time[-1])
        svc.ingest(np.array([[0, 1, head + 1.0], [1, 2, head + 2.0]]))
        assert svc.stats()["events_ingested"] == 2


class TestServing:
    def test_encode_is_timed_and_shaped(self, fitted):
        model, *_ = fitted
        svc = make_service(clone(model))
        out = svc.encode([0, 1, 2])
        assert out.shape == (3, model.config.dim)
        stats = svc.stats()
        assert stats["encode_queries"] == 1
        assert stats["encode_p99_ms"] >= stats["encode_p50_ms"] >= 0.0

    def test_pinned_scale_is_the_default(self, fitted):
        model, *_ = fitted
        m = clone(model)
        span = m.graph.time_span
        make_service(m)
        assert m.graph.time_scale == span
        m2 = clone(model)
        make_service(m2, pin_time_scale=False)
        assert m2.graph.time_scale is None

    def test_stats_track_the_full_loop(self, fitted):
        model, graph, held = fitted
        svc = make_service(clone(model), compact_every=8, train_every=2)
        loader = EventStreamLoader.from_graph(graph, held, batch_size=16)
        for batch in loader:
            svc.ingest(batch)
            svc.encode([0, 1], at=batch.t_lo)
        svc.absorb()
        s = svc.stats()
        assert s["events_ingested"] == loader.num_events
        assert s["ingest_events_per_sec"] > 0
        assert s["compactions"] >= 1
        assert s["pending_events"] == 0
        assert s["encode_queries"] == len(loader)
        assert s["staleness_events"] == 0
        assert s["absorb_seconds"] > 0

    def test_absorbed_events_change_the_served_table(self, fitted):
        model, graph, held = fitted
        m = clone(model)
        svc = make_service(m)
        before = m.embeddings().copy()
        for batch in EventStreamLoader.from_graph(graph, held, batch_size=16):
            svc.ingest(batch)
        svc.absorb()
        after = m.embeddings()
        assert after.shape[0] >= before.shape[0]
        assert not np.array_equal(after[: before.shape[0]], before)


class TestMetrics:
    def test_latency_tracker_percentiles(self):
        tr = LatencyTracker()
        for s in (0.001, 0.002, 0.010):
            tr.record(s)
        stats = tr.stats()
        assert stats["count"] == 3
        assert stats["p50_ms"] == pytest.approx(2.0)
        assert stats["p99_ms"] <= stats["max_ms"] == pytest.approx(10.0)
        assert tr.percentile(50) == pytest.approx(2.0)

    def test_empty_trackers_report_zeros(self):
        assert LatencyTracker().stats() == {
            "count": 0,
            "p50_ms": 0.0,
            "p99_ms": 0.0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
        }
        assert ThroughputTracker().events_per_sec == 0.0

    def test_throughput_accumulates(self):
        tr = ThroughputTracker()
        tr.add(100, 0.5)
        tr.add(100, 0.5)
        assert tr.events_per_sec == pytest.approx(200.0)
