"""The public API surface: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.datasets",
    "repro.nn",
    "repro.walks",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for item in exported:
        assert hasattr(mod, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    import repro

    assert callable(repro.EHNA)
    assert callable(repro.TemporalGraph.from_edges)


@pytest.mark.parametrize(
    "name",
    [
        "repro.core.EHNA",
        "repro.baselines.Node2Vec",
        "repro.baselines.CTDNE",
        "repro.baselines.LINE",
        "repro.baselines.HTNE",
    ],
)
def test_methods_implement_protocol(name):
    from repro.base import EmbeddingMethod

    module, _, cls_name = name.rpartition(".")
    cls = getattr(importlib.import_module(module), cls_name)
    assert issubclass(cls, EmbeddingMethod)
    assert cls.name  # human-readable label for result tables
    assert cls.fit.__doc__ or EmbeddingMethod.fit.__doc__
