"""The public API surface: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.graph",
    "repro.datasets",
    "repro.nn",
    "repro.walks",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.experiments",
    "repro.tasks",
    "repro.stream",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for item in exported:
        assert hasattr(mod, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and mod.__doc__.strip(), f"{name} lacks a docstring"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_top_level_exports():
    import repro

    assert callable(repro.EHNA)
    assert callable(repro.TemporalGraph.from_edges)


METHOD_CLASSES = [
    "repro.core.EHNA",
    "repro.baselines.Node2Vec",
    "repro.baselines.DeepWalk",
    "repro.baselines.CTDNE",
    "repro.baselines.LINE",
    "repro.baselines.HTNE",
]


def _resolve(name):
    module, _, cls_name = name.rpartition(".")
    return getattr(importlib.import_module(module), cls_name)


@pytest.mark.parametrize("name", METHOD_CLASSES)
def test_methods_implement_protocol(name):
    from repro.base import EmbeddingMethod

    cls = _resolve(name)
    assert issubclass(cls, EmbeddingMethod)
    assert cls.name  # human-readable label for result tables
    assert cls.fit.__doc__ or EmbeddingMethod.fit.__doc__


@pytest.mark.parametrize("name", METHOD_CLASSES)
def test_methods_implement_v2_surface(name):
    """Every method exposes encode/partial_fit/save/load and the hooks
    behind them (the same contract tools/check_api.py gates in make test)."""
    from repro.base import EmbeddingMethod

    cls = _resolve(name)
    for attr in ("encode", "partial_fit", "save", "load", "embedding_of"):
        assert callable(getattr(cls, attr, None)), f"{name} lacks {attr}()"
    for hook in ("_apply_partial_fit", "_config_dict", "_state_dict",
                 "_load_state_dict"):
        assert getattr(cls, hook) is not getattr(EmbeddingMethod, hook), (
            f"{name} inherits the base-class stub for {hook}"
        )


def test_check_api_tool_passes():
    """The make-test gate itself agrees the roster is protocol-complete."""
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parent.parent
    out = subprocess.run(
        [sys.executable, str(root / "tools" / "check_api.py")],
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
