"""Tests for the SGNS engine."""

import numpy as np
import pytest

from repro.baselines import SkipGramNS, degree_noise_weights, sentences_to_pairs


class TestPairGeneration:
    def test_window_one(self):
        pairs = sentences_to_pairs([[0, 1, 2]], window=1, rng=np.random.default_rng(0))
        as_set = {tuple(p) for p in pairs.tolist()}
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_spans(self):
        pairs = sentences_to_pairs([[0, 1, 2]], window=2, rng=np.random.default_rng(0))
        assert (pairs.tolist().count([0, 2])) == 1

    def test_no_self_pairs(self):
        pairs = sentences_to_pairs([[3, 3, 3]], window=2, rng=np.random.default_rng(0))
        # repeated node ids are allowed (they are distinct positions)
        assert pairs.shape[1] == 2

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            sentences_to_pairs([[5]], window=2)

    def test_shuffled(self):
        sentences = [[0, 1], [2, 3], [4, 5], [6, 7]]
        a = sentences_to_pairs(sentences, 1, rng=np.random.default_rng(1))
        b = sentences_to_pairs(sentences, 1, rng=np.random.default_rng(2))
        assert not np.array_equal(a, b)


class TestSkipGram:
    def test_validation(self):
        with pytest.raises(ValueError):
            SkipGramNS(0, dim=4)
        with pytest.raises(ValueError):
            SkipGramNS(5, dim=4, noise_weights=np.ones(3))

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        # two cliques {0..4} and {5..9}: co-occurrence within cliques
        sentences = []
        for _ in range(60):
            block = list(rng.permutation(5)) if rng.random() < 0.5 else [
                5 + v for v in rng.permutation(5)
            ]
            sentences.append([int(v) for v in block])
        model = SkipGramNS(10, dim=8, seed=1)
        losses = model.train_corpus(sentences, window=2, epochs=5)
        assert losses[-1] < losses[0]

    def test_cluster_structure_learned(self):
        rng = np.random.default_rng(0)
        sentences = []
        for _ in range(150):
            base = 0 if rng.random() < 0.5 else 5
            sentences.append([base + int(v) for v in rng.permutation(5)])
        model = SkipGramNS(10, dim=8, lr=0.05, seed=1)
        model.train_corpus(sentences, window=3, epochs=8)
        emb = model.embeddings()
        emb = emb / np.linalg.norm(emb, axis=1, keepdims=True)
        within = np.mean([emb[i] @ emb[j] for i in range(5) for j in range(5) if i != j])
        across = np.mean([emb[i] @ emb[j + 5] for i in range(5) for j in range(5)])
        assert within > across

    def test_embeddings_shape_copy(self):
        model = SkipGramNS(7, dim=3, seed=0)
        emb = model.embeddings()
        assert emb.shape == (7, 3)
        emb[0, 0] = 99.0
        assert model.embeddings()[0, 0] != 99.0

    def test_duplicate_indices_in_batch_accumulate(self):
        """np.add.at semantics: a pair repeated in a batch applies N times.

        At initialization ``w_out`` is zero, so the center update is zero but
        the context update is ``-lr * (σ(0) - 1) * v`` per occurrence — a
        4-fold repeat must move the context vector exactly 4x as far (modulo
        negative draws colliding with the context id, ruled out here).
        """
        pairs = np.array([[0, 1], [0, 1], [0, 1], [0, 1]])
        # Noise weights exclude the context id so negatives never touch it.
        noise = np.array([1.0, 0.0, 1.0, 1.0])
        model4 = SkipGramNS(4, dim=4, num_negatives=1, lr=0.1, seed=0,
                            noise_weights=noise)
        v0 = model4.w_in[0].copy()
        model4.train_pairs(pairs, batch_size=4)
        moved4 = model4.w_out[1].copy()
        model1 = SkipGramNS(4, dim=4, num_negatives=1, lr=0.1, seed=0,
                            noise_weights=noise)
        model1.train_pairs(pairs[:1], batch_size=1)
        moved1 = model1.w_out[1].copy()
        # positive-context contribution is deterministic: -lr * (-0.5) * v0
        np.testing.assert_allclose(moved1, 0.05 * v0, atol=1e-12)
        np.testing.assert_allclose(moved4, 4 * moved1, atol=1e-12)


class TestNoiseWeights:
    def test_degree_power(self):
        out = degree_noise_weights(np.array([1, 16]), power=0.75)
        np.testing.assert_allclose(out, [1.0, 8.0])

    def test_zero_power_uniform(self):
        out = degree_noise_weights(np.array([3, 9]), power=0.0)
        np.testing.assert_allclose(out, [1.0, 1.0])
