"""Tests for the Node2Vec, DeepWalk, CTDNE, LINE and HTNE baselines."""

import numpy as np
import pytest

from repro.baselines import CTDNE, DeepWalk, HTNE, LINE, Node2Vec
from repro.datasets import temporal_sbm


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=40, num_edges=250, seed=4)


ALL_METHODS = [
    lambda: Node2Vec(dim=8, num_walks=3, walk_length=8, epochs=1, seed=0),
    lambda: DeepWalk(dim=8, num_walks=3, walk_length=8, epochs=1, seed=0),
    lambda: CTDNE(dim=8, walks_per_node=3, walk_length=8, epochs=1, seed=0),
    lambda: LINE(dim=8, samples_per_edge=5, seed=0),
    lambda: HTNE(dim=8, epochs=2, seed=0),
]


class TestCommonProtocol:
    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_fit_returns_self(self, factory, graph):
        m = factory()
        assert m.fit(graph) is m

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_embedding_shape(self, factory, graph):
        emb = factory().fit(graph).embeddings()
        assert emb.shape == (graph.num_nodes, 8)
        assert np.all(np.isfinite(emb))

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_deterministic(self, factory, graph):
        a = factory().fit(graph).embeddings()
        b = factory().fit(graph).embeddings()
        np.testing.assert_allclose(a, b)

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_embeddings_before_fit_raise(self, factory):
        with pytest.raises(RuntimeError):
            factory().embeddings()

    @pytest.mark.parametrize("factory", ALL_METHODS)
    def test_embedding_of_accessor(self, factory, graph):
        m = factory().fit(graph)
        np.testing.assert_array_equal(m.embedding_of(3), m.embeddings()[3])


class TestLINE:
    def test_even_dim_required(self):
        with pytest.raises(ValueError, match="even"):
            LINE(dim=7)

    def test_halves_concatenated(self, graph):
        m = LINE(dim=8, samples_per_edge=2, seed=0).fit(graph)
        emb = m.embeddings()
        assert emb.shape[1] == 8

    def test_more_samples_move_further(self, graph):
        short = LINE(dim=8, samples_per_edge=1, seed=0).fit(graph).embeddings()
        long = LINE(dim=8, samples_per_edge=30, seed=0).fit(graph).embeddings()
        init_bound = 0.5 / 4
        assert np.abs(long).max() > np.abs(short).max()
        assert np.abs(long).max() > init_bound


class TestHTNE:
    def test_loss_decreases(self, graph):
        m = HTNE(dim=8, epochs=5, seed=0).fit(graph)
        assert m.loss_history[-1] < m.loss_history[0]

    def test_decay_stays_positive(self, graph):
        m = HTNE(dim=8, epochs=3, seed=0).fit(graph)
        assert m.decay >= 1e-3

    def test_history_padding(self, graph):
        m = HTNE(dim=8, history_length=3, seed=0)
        ex, ey, et, hid, ht, hmask = m._build_events(graph)
        assert hid.shape == (2 * graph.num_edges, 3)
        assert np.all((hmask == 0) | (hmask == 1))
        # first chronological event of a node has empty history
        assert hmask.sum(axis=1).min() == 0.0

    def test_history_times_before_event(self, graph):
        m = HTNE(dim=8, history_length=4, seed=0)
        _, _, et, _, ht, hmask = m._build_events(graph)
        assert np.all(ht * hmask <= et[:, None] + 1e-12)

    def test_linked_closer_than_random(self):
        g = temporal_sbm(num_nodes=30, num_edges=400, p_in=0.95, seed=8)
        m = HTNE(dim=8, epochs=10, lr=0.03, seed=0).fit(g)
        emb = m.embeddings()
        rng = np.random.default_rng(0)
        d_pos = np.mean([
            np.sum((emb[u] - emb[v]) ** 2) for u, v, _ in g.edge_tuples()
        ])
        d_rand = []
        while len(d_rand) < 300:
            u, v = rng.integers(g.num_nodes, size=2)
            if u != v and not g.has_edge(int(u), int(v)):
                d_rand.append(np.sum((emb[u] - emb[v]) ** 2))
        assert d_pos < np.mean(d_rand)


class TestNode2VecConfig:
    def test_deepwalk_forces_pq(self):
        m = DeepWalk(dim=8)
        assert m.p == 1.0 and m.q == 1.0

    def test_biased_walks_change_embeddings(self, graph):
        a = Node2Vec(dim=8, p=0.25, q=4.0, epochs=1, seed=0).fit(graph).embeddings()
        b = Node2Vec(dim=8, p=4.0, q=0.25, epochs=1, seed=0).fit(graph).embeddings()
        assert not np.allclose(a, b)
