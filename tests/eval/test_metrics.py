"""Tests for AUC, binary metrics and error reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import auc_score, binary_metrics, error_reduction


class TestAUC:
    def test_perfect_ranking(self):
        assert auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(2, size=4000)
        s = rng.random(4000)
        assert auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        assert auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            auc_score([1, 1], [0.1, 0.2])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            auc_score([0, 1], [0.5])

    def test_monotone_transform_invariant(self):
        rng = np.random.default_rng(1)
        y = rng.integers(2, size=200)
        y[:2] = [0, 1]
        s = rng.normal(size=200)
        assert auc_score(y, s) == pytest.approx(auc_score(y, np.exp(s)), abs=1e-12)


class TestBinaryMetrics:
    def test_perfect(self):
        m = binary_metrics([1, 0, 1], [1, 0, 1])
        assert m["precision"] == m["recall"] == m["f1"] == m["accuracy"] == 1.0

    def test_half_precision(self):
        m = binary_metrics([1, 0], [1, 1])
        assert m["precision"] == 0.5
        assert m["recall"] == 1.0
        assert m["f1"] == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        m = binary_metrics([1, 0], [0, 0])
        assert m["precision"] == 0.0
        assert m["recall"] == 0.0
        assert m["f1"] == 0.0
        assert m["accuracy"] == 0.5

    def test_f1_harmonic_mean(self):
        m = binary_metrics([1, 1, 0, 0], [1, 0, 1, 0])
        p, r = m["precision"], m["recall"]
        assert m["f1"] == pytest.approx(2 * p * r / (p + r))


class TestErrorReduction:
    def test_paper_formula(self):
        # them = 0.8, us = 0.9: (1-0.8)-(1-0.9) / (1-0.8) = 0.5
        assert error_reduction(0.8, 0.9) == pytest.approx(0.5)

    def test_negative_when_worse(self):
        assert error_reduction(0.9, 0.8) < 0

    def test_perfect_baseline(self):
        assert error_reduction(1.0, 0.95) == 0.0

    @given(
        st.floats(min_value=0.01, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_sign_matches_comparison(self, them, us):
        er = error_reduction(them, us)
        if us > them:
            assert er > 0
        elif us < them:
            assert er < 0
        else:
            assert er == 0
