"""Tests for Table II operators and network reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval import OPERATORS, edge_features, reconstruction_precision
from repro.graph import TemporalGraph


class TestOperators:
    ex = np.array([1.0, -2.0])
    ey = np.array([3.0, 2.0])

    def test_mean(self):
        np.testing.assert_allclose(OPERATORS["Mean"](self.ex, self.ey), [2.0, 0.0])

    def test_hadamard(self):
        np.testing.assert_allclose(
            OPERATORS["Hadamard"](self.ex, self.ey), [3.0, -4.0]
        )

    def test_weighted_l1(self):
        np.testing.assert_allclose(
            OPERATORS["Weighted-L1"](self.ex, self.ey), [2.0, 4.0]
        )

    def test_weighted_l2(self):
        np.testing.assert_allclose(
            OPERATORS["Weighted-L2"](self.ex, self.ey), [4.0, 16.0]
        )

    def test_table_order(self):
        assert list(OPERATORS) == ["Mean", "Hadamard", "Weighted-L1", "Weighted-L2"]

    def test_edge_features_by_name(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        pairs = np.array([[0, 1], [1, 2]])
        out = edge_features(emb, pairs, "Mean")
        np.testing.assert_allclose(out, [[0.5, 0.5], [0.5, 1.0]])

    def test_unknown_operator(self):
        with pytest.raises(KeyError, match="unknown operator"):
            edge_features(np.ones((2, 2)), np.array([[0, 1]]), "Cosine")

    def test_pairs_shape_validation(self):
        with pytest.raises(ValueError):
            edge_features(np.ones((2, 2)), np.array([0, 1]), "Mean")

    @given(
        arrays(np.float64, (4,), elements=st.floats(-5, 5)),
        arrays(np.float64, (4,), elements=st.floats(-5, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        """All Table II operators are symmetric in their arguments."""
        for op in OPERATORS.values():
            np.testing.assert_allclose(op(a, b), op(b, a), atol=1e-12)


class TestReconstruction:
    def two_cluster_graph(self):
        src = np.array([0, 0, 1, 3, 3, 4])
        dst = np.array([1, 2, 2, 4, 5, 5])
        return TemporalGraph.from_edges(src, dst, np.arange(6, dtype=float))

    def perfect_embeddings(self):
        """Cluster {0,1,2} and {3,4,5} on opposite poles: dot product ranks
        all intra-cluster pairs (the true edges) first."""
        emb = np.zeros((6, 2))
        emb[:3] = [1.0, 0.0]
        emb[3:] = [-1.0, 0.0]
        emb += np.random.default_rng(0).normal(scale=1e-3, size=emb.shape)
        return emb

    def test_perfect_embeddings_high_precision(self):
        g = self.two_cluster_graph()
        out = reconstruction_precision(self.perfect_embeddings(), g, ps=[6])
        assert out[6] == 1.0

    def test_precision_monotone_tail(self):
        """Precision@all-pairs equals edge density of the pair universe."""
        g = self.two_cluster_graph()
        total_pairs = 6 * 5 // 2
        out = reconstruction_precision(self.perfect_embeddings(), g, ps=[total_pairs])
        assert out[total_pairs] == pytest.approx(6 / total_pairs)

    def test_random_embeddings_near_density(self):
        g = self.two_cluster_graph()
        rng = np.random.default_rng(1)
        emb = rng.normal(size=(6, 4))
        out = reconstruction_precision(emb, g, ps=[15], repeats=5, rng=rng)
        assert out[15] == pytest.approx(6 / 15, abs=1e-9)

    def test_p_larger_than_pairs_clipped(self):
        g = self.two_cluster_graph()
        out = reconstruction_precision(self.perfect_embeddings(), g, ps=[10_000])
        assert 0.0 < out[10_000] <= 1.0

    def test_sampling_subset(self, sbm_graph):
        rng = np.random.default_rng(0)
        emb = rng.normal(size=(sbm_graph.num_nodes, 8))
        out = reconstruction_precision(
            emb, sbm_graph, ps=[50], sample_size=20, repeats=3, rng=rng
        )
        assert 0.0 <= out[50] <= 1.0

    def test_validation(self, sbm_graph):
        emb = np.ones((3, 2))
        with pytest.raises(ValueError, match="every node"):
            reconstruction_precision(emb, sbm_graph, ps=[10])
        with pytest.raises(ValueError):
            reconstruction_precision(
                np.ones((sbm_graph.num_nodes, 2)), sbm_graph, ps=[0]
            )
