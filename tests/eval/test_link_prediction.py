"""Tests for the link-prediction pipeline (Section V.E protocol)."""

import numpy as np
import pytest

from repro.eval import (
    evaluate_all_operators,
    evaluate_operator,
    holdout_pairs,
    prepare_link_prediction,
    sample_negative_pairs,
)
from repro.datasets import temporal_sbm


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=50, num_edges=500, seed=6)


class TestHoldout:
    def test_most_recent_removed(self, graph):
        train, pos = holdout_pairs(graph, 0.2)
        assert train.num_edges == graph.num_edges - round(graph.num_edges * 0.2)

    def test_positives_are_novel(self, graph):
        train, pos = holdout_pairs(graph, 0.2)
        for u, v in pos:
            assert not train.has_edge(int(u), int(v))
            assert graph.has_edge(int(u), int(v))

    def test_positives_deduplicated(self, graph):
        _, pos = holdout_pairs(graph, 0.2)
        assert np.unique(pos, axis=0).shape[0] == pos.shape[0]

    def test_pairs_canonical_order(self, graph):
        _, pos = holdout_pairs(graph, 0.2)
        assert np.all(pos[:, 0] < pos[:, 1])


class TestNegativeSampling:
    def test_count_and_no_edges(self, graph):
        negs = sample_negative_pairs(graph, 40, rng=np.random.default_rng(0))
        assert negs.shape == (40, 2)
        for u, v in negs:
            assert not graph.has_edge(int(u), int(v))
            assert u != v

    def test_unique(self, graph):
        negs = sample_negative_pairs(graph, 60, rng=np.random.default_rng(1))
        assert np.unique(negs, axis=0).shape[0] == 60

    def test_deterministic(self, graph):
        a = sample_negative_pairs(graph, 20, rng=np.random.default_rng(5))
        b = sample_negative_pairs(graph, 20, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_dense_graph_fails_loudly(self):
        from repro.graph import TemporalGraph

        # complete graph on 4 nodes: no negatives exist
        src, dst = zip(*[(i, j) for i in range(4) for j in range(i + 1, 4)])
        g = TemporalGraph.from_edges(
            np.array(src), np.array(dst), np.arange(6, dtype=float)
        )
        with pytest.raises(RuntimeError, match="negative pairs"):
            sample_negative_pairs(g, 10, rng=np.random.default_rng(0), max_tries=3)


class TestPrepare:
    def test_balanced_classes(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        assert data.positive_pairs.shape == data.negative_pairs.shape

    def test_train_graph_precedes_positives(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        assert data.train_graph.num_edges < graph.num_edges


class TestEvaluate:
    def test_informative_embeddings_beat_random(self):
        # Strong communities so held-out future links are predictable from
        # training-graph structure.
        graph = temporal_sbm(num_nodes=40, num_edges=600, p_in=0.95, seed=21)
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        # Oracle embeddings: each node's (1-hop + 2-hop) adjacency profile on
        # the training graph.  Community members share profiles, and future
        # links are intra-community, so Weighted-L2 is highly predictive.
        n = graph.num_nodes
        adj = np.zeros((n, n))
        for u, v, _t in data.train_graph.edge_tuples():
            adj[u, v] += 1.0
            adj[v, u] += 1.0
        profile = adj + 0.5 * (adj @ adj)
        norms = np.maximum(np.linalg.norm(profile, axis=1, keepdims=True), 1e-9)
        oracle_emb = profile / norms
        oracle = evaluate_operator(oracle_emb, data, "Weighted-L2", repeats=3, rng=rng)
        random_emb = rng.normal(size=(n, n))
        noise = evaluate_operator(random_emb, data, "Weighted-L2", repeats=3, rng=rng)
        # Note: "random" node embeddings are not fully uninformative here —
        # hub identity leaks through the pair-level train/test split (each
        # node keeps its random signature across pairs), which is inherent to
        # the paper's protocol.  Structure must still add real margin on top.
        assert oracle["auc"] > noise["auc"] + 0.04
        assert oracle["auc"] > 0.72

    def test_all_metrics_in_range(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        emb = np.random.default_rng(2).normal(size=(graph.num_nodes, 6))
        out = evaluate_operator(emb, data, "Hadamard", repeats=2, rng=np.random.default_rng(3))
        for k in ("auc", "f1", "precision", "recall"):
            assert 0.0 <= out[k] <= 1.0

    def test_all_operators_evaluated(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        emb = np.random.default_rng(2).normal(size=(graph.num_nodes, 6))
        out = evaluate_all_operators(emb, data, repeats=1, rng=np.random.default_rng(0))
        assert set(out) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}

    def test_repeats_deterministic_with_rng(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        emb = np.random.default_rng(2).normal(size=(graph.num_nodes, 6))
        a = evaluate_operator(emb, data, "Mean", repeats=2, rng=np.random.default_rng(9))
        b = evaluate_operator(emb, data, "Mean", repeats=2, rng=np.random.default_rng(9))
        assert a == b

    def test_validation(self, graph):
        data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
        emb = np.ones((graph.num_nodes, 4))
        with pytest.raises(ValueError):
            evaluate_operator(emb, data, "Mean", train_ratio=1.5)
        with pytest.raises(ValueError):
            evaluate_operator(emb, data, "Mean", repeats=0)
