"""Tests for the logistic-regression classifier."""

import numpy as np
import pytest

from repro.eval import LogisticRegression


def separable_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + 2 * x[:, 1] > 0).astype(int)
    return x, y


class TestFit:
    def test_separable_accuracy(self):
        x, y = separable_data()
        clf = LogisticRegression(c=10.0).fit(x, y)
        acc = np.mean(clf.predict(x) == y)
        assert acc > 0.97

    def test_probabilities_in_range(self):
        x, y = separable_data()
        p = LogisticRegression().fit(x, y).predict_proba(x)
        assert np.all((p >= 0) & (p <= 1))

    def test_decision_consistent_with_predict(self):
        x, y = separable_data()
        clf = LogisticRegression().fit(x, y)
        np.testing.assert_array_equal(
            clf.predict(x), (clf.decision_function(x) >= 0).astype(int)
        )

    def test_regularization_shrinks_weights(self):
        x, y = separable_data()
        loose = LogisticRegression(c=100.0).fit(x, y)
        tight = LogisticRegression(c=0.01).fit(x, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_standardization_handles_scaled_features(self):
        x, y = separable_data()
        x_scaled = x * np.array([1e6, 1e-6])
        clf = LogisticRegression().fit(x_scaled, y)
        assert np.mean(clf.predict(x_scaled) == y) > 0.95

    def test_constant_feature_no_crash(self):
        x, y = separable_data()
        x = np.hstack([x, np.ones((x.shape[0], 1))])
        LogisticRegression().fit(x, y)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 2)), [1, 0])
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((2, 2)), [1, 2])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.ones((1, 2)))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(c=0.0)

    def test_matches_closed_form_direction(self):
        """On symmetric data the weight vector should align with the true
        separating direction (1, 2)/norm."""
        x, y = separable_data(n=2000, seed=3)
        clf = LogisticRegression(c=10.0, standardize=False).fit(x, y)
        w = clf.weights / np.linalg.norm(clf.weights)
        target = np.array([1.0, 2.0]) / np.sqrt(5.0)
        assert abs(w @ target) > 0.99
