"""The storage backends: column validation, ArrayStorage, the memmap store.

Covers the subsystem contract directly (dtype policy, laziness, manifest
round-trips, the writer's finalize-time sort) — backend *equivalence* through
the full TemporalGraph/walks/training stack lives in
``test_backend_equality.py``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.storage import (
    COLUMN_DTYPES,
    COLUMNS,
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    ArrayStorage,
    MemmapStorage,
    MemmapStorageWriter,
    StoreFormatError,
    is_store_dir,
    validate_event_columns,
)


def small_columns(n=6, seed=0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 5, size=n)
    dst = (src + 1 + rng.integers(0, 4, size=n)) % 10
    time = np.sort(rng.uniform(0.0, 10.0, size=n))
    weight = rng.uniform(0.5, 2.0, size=n)
    return src, dst, time, weight


class TestValidateEventColumns:
    def test_casts_to_column_dtypes(self):
        src, dst, time, weight = validate_event_columns(
            np.array([0, 1], dtype=np.int32),
            np.array([1, 2], dtype=np.int16),
            np.array([1, 2], dtype=np.int64),
            np.array([1, 1], dtype=np.float32),
        )
        for col, arr in zip(COLUMNS, (src, dst, time, weight)):
            assert arr.dtype == COLUMN_DTYPES[col]

    def test_unit_weights_filled(self):
        *_, weight = validate_event_columns([0], [1], [1.0])
        np.testing.assert_array_equal(weight, [1.0])

    def test_empty_columns_allowed(self):
        src, dst, time, weight = validate_event_columns([], [], [])
        assert src.size == dst.size == time.size == weight.size == 0

    @pytest.mark.parametrize(
        "src,dst,time,weight,match",
        [
            ([0], [0], [1.0], None, "self-loop"),
            ([-1], [1], [1.0], None, "negative"),
            ([0], [1], [np.inf], None, "finite"),
            ([0], [1], [np.nan], None, "finite"),
            ([0], [1], [1.0], [0.0], "positive"),
            ([0], [1], [1.0], [-2.0], "positive"),
            ([0, 1], [1], [1.0], None, "length"),
        ],
    )
    def test_rejects_bad_events(self, src, dst, time, weight, match):
        with pytest.raises(ValueError, match=match):
            validate_event_columns(src, dst, time, weight)


class TestArrayStorage:
    def test_columns_and_counts(self):
        src, dst, time, weight = small_columns()
        store = ArrayStorage(src, dst, time, weight)
        assert store.backend == "memory"
        assert store.num_events == src.size
        assert store.num_nodes == int(max(src.max(), dst.max())) + 1
        np.testing.assert_array_equal(store.src, src)
        np.testing.assert_array_equal(store.dst, dst)
        np.testing.assert_array_equal(store.time, time)
        np.testing.assert_array_equal(store.weight, weight)

    def test_explicit_num_nodes(self):
        src, dst, time, weight = small_columns()
        store = ArrayStorage(src, dst, time, weight, num_nodes=50)
        assert store.num_nodes == 50

    def test_loaded_columns_and_nbytes(self):
        store = ArrayStorage(*small_columns())
        assert set(store.loaded_columns) == set(COLUMNS)
        expected = sum(store.column(c).nbytes for c in COLUMNS)
        assert store.nbytes == expected

    def test_unknown_column_rejected(self):
        store = ArrayStorage(*small_columns())
        with pytest.raises(KeyError):
            store.column("nope")


class TestMemmapStorage:
    def test_write_read_round_trip(self, tmp_path):
        src, dst, time, weight = small_columns()
        store = MemmapStorage.write(tmp_path / "s", src, dst, time, weight)
        assert store.backend == "memmap"
        assert store.num_events == src.size
        np.testing.assert_array_equal(store.src, src)
        np.testing.assert_array_equal(store.dst, dst)
        np.testing.assert_array_equal(store.time, time)
        np.testing.assert_array_equal(store.weight, weight)

    def test_columns_load_lazily(self, tmp_path):
        store = MemmapStorage.write(tmp_path / "s", *small_columns())
        reopened = MemmapStorage(tmp_path / "s")
        assert reopened.loaded_columns == ()
        reopened.column("time")
        assert reopened.loaded_columns == ("time",)
        reopened.column("src")
        assert set(reopened.loaded_columns) == {"time", "src"}
        # Mapped columns are read-only views of the files.
        with pytest.raises((ValueError, OSError)):
            reopened.column("time")[0] = -1.0
        del store

    def test_manifest_contents(self, tmp_path):
        MemmapStorage.write(
            tmp_path / "s", *small_columns(), num_nodes=77, meta={"origin": "test"}
        )
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        assert manifest["format"] == FORMAT_NAME
        assert manifest["version"] == FORMAT_VERSION
        assert manifest["num_events"] == 6
        assert manifest["num_nodes"] == 77
        assert manifest["time_sorted"] is True
        assert set(manifest["columns"]) == set(COLUMNS)
        assert manifest["meta"] == {"origin": "test"}
        store = MemmapStorage(tmp_path / "s")
        assert store.num_nodes == 77
        assert store.meta == {"origin": "test"}

    def test_is_store_dir(self, tmp_path):
        assert not is_store_dir(tmp_path)
        MemmapStorage.write(tmp_path / "s", *small_columns())
        assert is_store_dir(tmp_path / "s")
        assert not is_store_dir(tmp_path / "missing")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StoreFormatError, match="manifest"):
            MemmapStorage(tmp_path)

    def test_wrong_format_name_raises(self, tmp_path):
        d = tmp_path / "s"
        MemmapStorage.write(d, *small_columns())
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (d / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="format"):
            MemmapStorage(d)

    def test_future_version_raises(self, tmp_path):
        d = tmp_path / "s"
        MemmapStorage.write(d, *small_columns())
        manifest = json.loads((d / MANIFEST_NAME).read_text())
        manifest["version"] = FORMAT_VERSION + 1
        (d / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreFormatError, match="version"):
            MemmapStorage(d)

    def test_truncated_column_file_raises(self, tmp_path):
        d = tmp_path / "s"
        MemmapStorage.write(d, *small_columns())
        store = MemmapStorage(d)
        np.save(d / "time.npy", np.zeros(2))
        with pytest.raises(StoreFormatError, match="rows"):
            store.column("time")

    def test_disk_bytes_counts_columns(self, tmp_path):
        store = MemmapStorage.write(tmp_path / "s", *small_columns())
        raw = 6 * sum(np.dtype(COLUMN_DTYPES[c]).itemsize for c in COLUMNS)
        assert store.disk_bytes >= raw  # npy headers add a little


class TestMemmapStorageWriter:
    def test_chunked_appends_concatenate(self, tmp_path):
        src, dst, time, weight = small_columns(n=10)
        writer = MemmapStorageWriter(tmp_path / "s")
        for lo in range(0, 10, 3):
            writer.append(
                src[lo : lo + 3], dst[lo : lo + 3], time[lo : lo + 3],
                weight[lo : lo + 3],
            )
        store = writer.finalize()
        np.testing.assert_array_equal(store.src, src)
        np.testing.assert_array_equal(store.time, time)
        np.testing.assert_array_equal(store.weight, weight)

    def test_unsorted_input_sorted_at_finalize(self, tmp_path):
        time = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        src = np.arange(5)
        dst = np.arange(5) + 10
        writer = MemmapStorageWriter(tmp_path / "s")
        writer.append(src[:3], dst[:3], time[:3])
        writer.append(src[3:], dst[3:], time[3:])
        store = writer.finalize()
        order = np.argsort(time, kind="stable")
        np.testing.assert_array_equal(store.time, time[order])
        np.testing.assert_array_equal(store.src, src[order])
        np.testing.assert_array_equal(store.dst, dst[order])

    def test_duplicate_timestamps_keep_arrival_order(self, tmp_path):
        # Three events at t=2.0 arriving from different chunks must come out
        # in arrival order (stable sort), exactly like from_edges' mergesort.
        time = np.array([3.0, 2.0, 2.0, 1.0, 2.0])
        src = np.array([0, 1, 2, 3, 4])
        dst = src + 5
        writer = MemmapStorageWriter(tmp_path / "s")
        for i in range(5):
            writer.append(src[i : i + 1], dst[i : i + 1], time[i : i + 1])
        store = writer.finalize()
        np.testing.assert_array_equal(store.src, [3, 1, 2, 4, 0])
        np.testing.assert_array_equal(store.time, [1.0, 2.0, 2.0, 2.0, 3.0])

    def test_duplicate_events_are_kept(self, tmp_path):
        # Identical (src, dst, time) rows are distinct events, not dupes to
        # drop — repeated interactions are signal in a temporal graph.
        writer = MemmapStorageWriter(tmp_path / "s")
        writer.append([1, 1, 1], [2, 2, 2], [5.0, 5.0, 5.0])
        store = writer.finalize()
        assert store.num_events == 3

    def test_empty_finalize_raises(self, tmp_path):
        writer = MemmapStorageWriter(tmp_path / "s")
        with pytest.raises(ValueError, match="at least one event"):
            writer.finalize()

    def test_append_validates_events(self, tmp_path):
        writer = MemmapStorageWriter(tmp_path / "s")
        with pytest.raises(ValueError, match="self-loop"):
            writer.append([3], [3], [1.0])

    def test_sorted_input_skips_nothing(self, tmp_path):
        src, dst, time, weight = small_columns(n=8)
        writer = MemmapStorageWriter(tmp_path / "s", num_nodes=99)
        writer.append(src, dst, time, weight)
        store = writer.finalize()
        assert store.num_nodes == 99
        np.testing.assert_array_equal(store.time, time)

    def test_writer_num_nodes_inferred_from_events(self, tmp_path):
        writer = MemmapStorageWriter(tmp_path / "s")
        writer.append([0, 7], [3, 1], [1.0, 2.0])
        store = writer.finalize()
        assert store.num_nodes == 8


class TestDeepValidation:
    """Per-column CRC32 digests, verified under validate='deep'."""

    def write_store(self, tmp_path, sort=False):
        src, dst, time, weight = small_columns(n=32)
        if sort:
            time = time[::-1].copy()  # force the finalize-time sort pass
        return MemmapStorage.write(tmp_path / "s", src, dst, time, weight).path

    def test_manifest_records_a_digest_per_column(self, tmp_path):
        path = self.write_store(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        for name in COLUMNS:
            assert isinstance(manifest["columns"][name]["crc32"], int)

    @pytest.mark.parametrize("sorted_at_finalize", [False, True])
    def test_deep_validation_passes_on_a_clean_store(
        self, tmp_path, sorted_at_finalize
    ):
        path = self.write_store(tmp_path, sort=sorted_at_finalize)
        store = MemmapStorage(path, validate="deep")
        for name in COLUMNS:
            store.column(name)  # must not raise

    @pytest.mark.parametrize("column", COLUMNS)
    def test_one_flipped_byte_names_the_column(self, tmp_path, column):
        path = self.write_store(tmp_path)
        target = path / f"{column}.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF  # a data byte: headers end well before the tail
        target.write_bytes(bytes(blob))
        store = MemmapStorage(path, validate="deep")
        with pytest.raises(StoreFormatError, match=f"column {column!r}"):
            store.column(column)

    def test_basic_validation_skips_the_digest(self, tmp_path):
        path = self.write_store(tmp_path)
        target = path / "dst.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        MemmapStorage(path).column("dst")  # basic: dtype/shape only

    def test_missing_digest_under_deep_is_an_error(self, tmp_path):
        path = self.write_store(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        del manifest["columns"]["time"]["crc32"]
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        store = MemmapStorage(path, validate="deep")
        with pytest.raises(StoreFormatError, match="no CRC32 digest"):
            store.column("time")

    def test_unknown_validate_level_rejected(self, tmp_path):
        path = self.write_store(tmp_path)
        with pytest.raises(ValueError, match="validate level"):
            MemmapStorage(path, validate="paranoid")


class TestCrashSafeFinalize:
    def test_interrupted_finalize_is_reported_not_mapped(self, tmp_path):
        writer = MemmapStorageWriter(tmp_path / "s")
        writer.append(*small_columns())
        # Simulate a crash before finalize: spill files exist, no manifest.
        with pytest.raises(StoreFormatError, match=r"\.spill"):
            MemmapStorage(tmp_path / "s")

    def test_leftover_seal_temp_is_reported(self, tmp_path):
        path = MemmapStorage.write(tmp_path / "s", *small_columns()).path
        (path / MANIFEST_NAME).unlink()
        (path / "src.npy.tmp").write_bytes(b"partial")
        with pytest.raises(StoreFormatError, match="unfinished event store"):
            MemmapStorage(path)

    def test_leftover_manifest_temp_is_reported(self, tmp_path):
        path = MemmapStorage.write(tmp_path / "s", *small_columns()).path
        (path / MANIFEST_NAME).unlink()
        (path / (MANIFEST_NAME + ".tmp")).write_bytes(b"{")
        with pytest.raises(StoreFormatError, match="unfinished"):
            MemmapStorage(path)

    def test_finalize_leaves_no_scratch_files(self, tmp_path):
        src, dst, time, weight = small_columns(n=32)
        path = MemmapStorage.write(
            tmp_path / "s", src, dst, time[::-1].copy(), weight
        ).path
        names = {p.name for p in path.iterdir()}
        assert names == {MANIFEST_NAME} | {f"{c}.npy" for c in COLUMNS}

    def test_plain_empty_directory_is_still_a_plain_error(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(StoreFormatError, match="missing"):
            MemmapStorage(tmp_path / "d")
