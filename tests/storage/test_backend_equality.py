"""Memmap-backed graphs must be *bitwise* equal to in-memory ones.

The storage seam's whole contract is that the backend is invisible above
``TemporalGraph``: same CSR arrays, same walks under the same seed, same
train-step loss and gradients.  These tests pin that on every seed dataset,
so a backend divergence can never masquerade as a modeling change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import load, load_cache_clear
from repro.datasets.registry import PAPER_DATASETS
from repro.graph.temporal_graph import TemporalGraph
from repro.stream import EventStreamLoader
from repro.walks.engine import BatchedWalkEngine


@pytest.fixture(autouse=True)
def fresh_cache():
    load_cache_clear()
    yield
    load_cache_clear()


@pytest.fixture(params=PAPER_DATASETS)
def backend_pair(request, tmp_path):
    """(in-memory graph, memmap-backed graph) for one seed dataset."""
    name = request.param
    g_mem = load(name, scale=0.05, seed=13)
    g_map = load(name, scale=0.05, seed=13, storage=tmp_path / name)
    assert g_mem.storage_backend == "memory"
    assert g_map.storage_backend == "memmap"
    return g_mem, g_map


class TestBackendEquality:
    def test_event_columns_bitwise_equal(self, backend_pair):
        g_mem, g_map = backend_pair
        assert g_mem.num_nodes == g_map.num_nodes
        assert g_mem.num_edges == g_map.num_edges
        for col in ("src", "dst", "time", "weight"):
            a, b = getattr(g_mem, col), getattr(g_map, col)
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_csr_bitwise_equal(self, backend_pair):
        g_mem, g_map = backend_pair
        for a, b in zip(g_mem.incidence_csr(), g_map.incidence_csr()):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)

    def test_walks_bitwise_equal_under_fixed_seed(self, backend_pair):
        g_mem, g_map = backend_pair
        starts = np.arange(min(16, g_mem.num_nodes), dtype=np.int64)
        anchors = np.full(starts.size, float(g_mem.time[-1]) + 1.0)
        walks_mem = BatchedWalkEngine(g_mem).temporal(
            starts, anchors, length=5, rng=np.random.default_rng(99)
        )
        walks_map = BatchedWalkEngine(g_map).temporal(
            starts, anchors, length=5, rng=np.random.default_rng(99)
        )
        assert len(walks_mem) == len(walks_map)
        for wa, wb in zip(walks_mem, walks_map):
            assert wa.nodes == wb.nodes
            assert wa.edge_times == wb.edge_times

    def test_one_fused_train_step_bitwise_equal(self, backend_pair):
        g_mem, g_map = backend_pair
        edge_ids = np.arange(min(32, g_mem.num_edges), dtype=np.int64)
        losses, weights = [], []
        for graph in (g_mem, g_map):
            model = EHNA(
                dim=8, num_walks=2, walk_length=3, num_negatives=2, seed=21
            )
            model._build_runtime(graph)
            optimizers = model._make_optimizers()
            model.aggregator.train()
            losses.append(model._train_batch(edge_ids, optimizers))
            weights.append(model.embedding.weight.data.copy())
        assert losses[0] == losses[1]
        np.testing.assert_array_equal(weights[0], weights[1])


class TestStreamFromStorage:
    def test_batches_match_from_graph_replay(self, backend_pair):
        g_mem, g_map = backend_pair
        by_graph = EventStreamLoader.from_graph(g_mem, batch_size=64)
        by_store = EventStreamLoader.from_storage(g_map.storage, batch_size=64)
        assert len(by_graph) == len(by_store)
        for a, b in zip(by_graph, by_store):
            np.testing.assert_array_equal(a.src, b.src)
            np.testing.assert_array_equal(a.time, b.time)
            np.testing.assert_array_equal(a.weight, b.weight)

    def test_storage_batches_are_views_of_the_map(self, backend_pair):
        _, g_map = backend_pair
        loader = EventStreamLoader.from_storage(g_map.storage, batch_size=64)
        # No copy happened: the loader's columns are the store's own maps.
        assert loader.time.base is not None


class TestMemmapGraphStack:
    """The memmap-backed graph behaves through the rest of the stack."""

    def test_from_storage_roundtrip_via_extend(self, backend_pair):
        g_mem, g_map = backend_pair
        # Growing a memmap-backed graph compacts into memory (storage is
        # read-oriented; mutation always materializes fresh arrays) and
        # matches growing the in-memory twin event-for-event.
        new_src = np.array([0, 1], dtype=np.int64)
        new_dst = np.array([2, 3], dtype=np.int64)
        new_t = np.full(2, float(g_mem.time[-1]) + 5.0)
        a, b = g_mem.copy(), g_map.copy()
        a.extend_in_place(new_src, new_dst, new_t)
        b.extend_in_place(new_src, new_dst, new_t)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.time, b.time)
        assert b.storage_backend == "memory"  # compaction materialized

    def test_copy_keeps_backend(self, backend_pair):
        _, g_map = backend_pair
        assert g_map.copy().storage_backend == "memmap"
