"""SharedMemoryStorage: round-trips, attach, write discipline, cleanup.

The shared backend's contract has three legs: (1) a ``to_shared()`` twin is
bitwise-equal to its source graph, columns and CSR indexes alike; (2) every
handed-out view is frozen, with ``writable=True`` as the only (PAR001-
confined) escape hatch; (3) the owner — and only the owner — unlinks the
segment, exactly once, no matter how many times ``close`` runs or whether
the finalizer or the interpreter exit gets there first.  The subprocess
regression tests pin the cleanup leg where it actually broke once: the
resource-tracker daemon must stay silent across create/attach/exit.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import load, load_cache_clear
from repro.graph.temporal_graph import TemporalGraph
from repro.storage import PackHandle, SharedArrayPack, SharedMemoryStorage
from repro.walks.engine import BatchedWalkEngine

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def fresh_cache():
    load_cache_clear()
    yield
    load_cache_clear()


@pytest.fixture
def graph():
    return load("digg", scale=0.05, seed=13)


def run_script(body: str, script_path: Path | None = None) -> subprocess.CompletedProcess:
    """Run an isolated interpreter over ``body`` with repro importable.

    Scripts that spawn worker processes must go through a real file
    (``script_path``): a spawn child re-imports ``__main__``, which an
    ``-c`` command line cannot provide.
    """
    env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
    if script_path is None:
        argv = [sys.executable, "-c", textwrap.dedent(body)]
    else:
        script_path.write_text(textwrap.dedent(body))
        argv = [sys.executable, str(script_path)]
    return subprocess.run(
        argv, capture_output=True, text=True, env=env, timeout=120,
    )


class TestSharedArrayPack:
    def test_create_and_read_back(self):
        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5, dtype=np.float32),
        }
        pack = SharedArrayPack.create(arrays, meta={"k": 3})
        try:
            assert pack.names() == ("a", "b")
            assert pack.owner and not pack.closed
            assert pack.handle.meta_dict() == {"k": 3}
            for name, source in arrays.items():
                view = pack.array(name)
                assert view.dtype == source.dtype
                np.testing.assert_array_equal(view, source)
        finally:
            pack.close()

    def test_views_are_frozen_and_writable_rederives(self):
        pack = SharedArrayPack.create({"w": np.zeros(4, dtype=np.float64)})
        try:
            frozen = pack.array("w")
            assert not frozen.flags.writeable
            with pytest.raises(ValueError):
                frozen[0] = 1.0
            live = pack.array("w", writable=True)
            live[0] = 7.0  # same bytes: visible through the frozen view
            assert frozen[0] == 7.0
        finally:
            pack.close()

    def test_attach_round_trips_through_pickle(self):
        source = np.arange(12, dtype=np.float64).reshape(3, 4)
        owner = SharedArrayPack.create({"m": source})
        try:
            handle = pickle.loads(pickle.dumps(owner.handle))
            assert isinstance(handle, PackHandle)
            attached = SharedArrayPack.attach(handle)
            try:
                assert not attached.owner
                view = attached.array("m")
                assert not view.flags.writeable
                np.testing.assert_array_equal(view, source)
            finally:
                attached.close()
        finally:
            owner.close()

    def test_unknown_array_and_empty_pack_raise(self):
        with pytest.raises(ValueError):
            SharedArrayPack.create({})
        pack = SharedArrayPack.create({"a": np.zeros(2, dtype=np.int64)})
        try:
            with pytest.raises(KeyError):
                pack.array("nope")
            with pytest.raises(KeyError):
                pack.array("nope", writable=True)
        finally:
            pack.close()

    def test_double_close_is_idempotent_and_unlinks(self):
        pack = SharedArrayPack.create({"a": np.zeros(3, dtype=np.int64)})
        name = pack.segment_name
        pack.close()
        assert pack.closed
        pack.close()  # second close: no-op, no raise
        with pytest.raises(ValueError):
            pack.array("a")
        # The owner's close unlinked the name: nobody can attach any more.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    def test_attached_close_leaves_segment_alive(self):
        owner = SharedArrayPack.create({"a": np.arange(3, dtype=np.int64)})
        try:
            attached = SharedArrayPack.attach(owner.handle)
            attached.close()
            attached.close()  # idempotent on the worker side too
            # The owner still reads its segment after a worker detaches.
            np.testing.assert_array_equal(owner.array("a"), np.arange(3))
        finally:
            owner.close()


class TestSharedMemoryStorage:
    def test_to_shared_twin_is_bitwise_equal(self, graph):
        twin = graph.to_shared()
        try:
            assert twin.storage_backend == "shared"
            assert twin.num_nodes == graph.num_nodes
            assert twin.num_edges == graph.num_edges
            for col in ("src", "dst", "time", "weight"):
                a, b = getattr(graph, col), getattr(twin, col)
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)
            for a, b in zip(graph.incidence_csr(), twin.incidence_csr()):
                assert a.dtype == b.dtype
                np.testing.assert_array_equal(a, b)
            for a, b in zip(graph.distinct_csr(), twin.distinct_csr()):
                np.testing.assert_array_equal(a, b)
        finally:
            twin.storage.close()

    def test_from_handle_same_process_walks_bitwise_equal(self, graph):
        twin = graph.to_shared()
        try:
            other = TemporalGraph.from_handle(twin.shared_handle)
            starts = np.arange(min(16, graph.num_nodes), dtype=np.int64)
            anchors = np.full(starts.size, float(graph.time[-1]) + 1.0)
            ref = BatchedWalkEngine(graph).temporal(
                starts, anchors, 2, 8, np.random.default_rng(5)
            )
            got = BatchedWalkEngine(other).temporal(
                starts, anchors, 2, 8, np.random.default_rng(5)
            )
            assert len(ref) == len(got)
            for a, b in zip(ref, got):
                assert a.nodes == b.nodes
        finally:
            twin.storage.close()

    def test_shared_handle_requires_shared_backend(self, graph):
        with pytest.raises(ValueError):
            graph.shared_handle

    def test_missing_arrays_rejected(self):
        with pytest.raises(ValueError, match="missing graph arrays"):
            SharedMemoryStorage.from_graph_arrays(
                columns={"src": np.zeros(1, dtype=np.int64)},
                derived={},
                num_nodes=1,
            )

    def test_storage_close_is_idempotent(self, graph):
        twin = graph.to_shared()
        store = twin.storage
        store.close()
        assert store.closed
        store.close()


class TestCleanupAcrossProcesses:
    """No leaked segments, no resource-tracker noise — the regression leg."""

    def test_exit_without_close_unlinks_and_stays_silent(self):
        # The finalizer (not an explicit close) must unlink at interpreter
        # exit, without the tracker daemon reporting leaked shared_memory.
        proc = run_script("""
            import numpy as np
            from repro.storage import SharedArrayPack
            pack = SharedArrayPack.create({"a": np.zeros(64, dtype=np.float64)})
            print(pack.segment_name)
        """)
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip()
        assert proc.stderr == ""
        assert "resource_tracker" not in proc.stderr
        # The segment really is gone from this (outer) process's view too.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name, create=False)

    @pytest.mark.parallel
    def test_spawn_child_attach_leaves_tracker_silent(self, tmp_path):
        # A spawn child attaching and detaching must not confuse the shared
        # tracker daemon: the owner's unlink is the one unregister.  (An
        # explicit unregister-on-attach caused a tracker KeyError here.)
        proc = run_script("""
            import multiprocessing as mp
            import numpy as np
            from repro.datasets import load
            from repro.graph.temporal_graph import TemporalGraph


            def child(handle, out):
                graph = TemporalGraph.from_handle(handle)
                out.put(int(graph.num_edges))
                graph.storage.close()


            if __name__ == "__main__":
                ctx = mp.get_context("spawn")
                shared = load("digg", scale=0.05, seed=13).to_shared()
                out = ctx.Queue()
                proc = ctx.Process(
                    target=child, args=(shared.shared_handle, out)
                )
                proc.start()
                assert out.get(timeout=60) == shared.num_edges
                proc.join(60)
                assert proc.exitcode == 0
                shared.storage.close()
                print("ok")
        """, script_path=tmp_path / "spawn_attach.py")
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout
        assert "resource_tracker" not in proc.stderr
        assert "KeyError" not in proc.stderr
