"""Tests for partial_fit incremental training (protocol v2)."""

import numpy as np
import pytest

from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.base import parse_edge_batch
from repro.core import EHNA
from repro.datasets import temporal_sbm

FAST = dict(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2)


@pytest.fixture()
def graph():
    return temporal_sbm(num_nodes=25, num_edges=100, seed=7)


def future_edges(graph, count, seed=0, new_nodes=False):
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    src = rng.integers(0, n, size=count)
    if new_nodes:
        dst = n + rng.integers(0, 10, size=count)  # ids beyond the current space
    else:
        dst = (src + 1 + rng.integers(0, n - 1, size=count)) % n
    t_hi = graph.time_span[1]
    times = t_hi + 1.0 + np.arange(count, dtype=float)
    return src, dst, times


class TestParseEdgeBatch:
    def test_tuple_of_arrays(self):
        src, dst, t, w = parse_edge_batch(([0, 1], [2, 3], [1.0, 2.0]))
        assert w is None
        np.testing.assert_array_equal(np.asarray(dst), [2, 3])

    def test_tuple_with_weights(self):
        _, _, _, w = parse_edge_batch(([0], [2], [1.0], [3.0]))
        np.testing.assert_array_equal(np.asarray(w), [3.0])

    def test_row_matrix(self):
        src, dst, t, w = parse_edge_batch(np.array([[0, 2, 1.5], [1, 3, 2.5]]))
        assert src.dtype == np.int64
        np.testing.assert_array_equal(src, [0, 1])
        np.testing.assert_array_equal(t, [1.5, 2.5])
        assert w is None

    def test_row_matrix_with_weights(self):
        _, _, _, w = parse_edge_batch(np.array([[0, 2, 1.5, 2.0]]))
        np.testing.assert_array_equal(w, [2.0])

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            parse_edge_batch(np.zeros((3, 5)))

    def test_list_of_three_rows_parses_as_rows(self):
        # A 3-row batch must not be mistaken for three column arrays
        # (columns are tuple-only); same for a 4-row batch vs. weights.
        src, dst, t, w = parse_edge_batch([(0, 1, 5.0), (2, 3, 6.0), (4, 5, 7.0)])
        np.testing.assert_array_equal(src, [0, 2, 4])
        np.testing.assert_array_equal(dst, [1, 3, 5])
        np.testing.assert_array_equal(t, [5.0, 6.0, 7.0])
        assert w is None

    def test_bad_tuple_length_rejected(self):
        with pytest.raises(ValueError, match="tuple"):
            parse_edge_batch((np.array([0]), np.array([1])))

    def test_list_of_column_arrays_rejected(self):
        # Columns mistyped as a list must error, not transpose into "rows".
        cols = [np.array([1, 2, 3]), np.array([4, 5, 6]), np.array([0.1, 0.2, 0.3])]
        with pytest.raises(ValueError, match="ambiguous"):
            parse_edge_batch(cols)


class TestEHNAPartialFit:
    def test_before_fit_raises(self, graph):
        with pytest.raises(RuntimeError, match="fit"):
            EHNA(**FAST).partial_fit(([0], [1], [1.0]))

    def test_extends_graph_and_stays_finite(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        model.partial_fit(future_edges(graph, 15))
        assert model.graph.num_edges == graph.num_edges + 15
        emb = model.embeddings()
        assert emb.shape == (graph.num_nodes, FAST["dim"])
        assert np.all(np.isfinite(emb))
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-6)

    def test_updates_change_embeddings(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        before = model.embeddings().copy()
        model.partial_fit(future_edges(graph, 15))
        assert not np.array_equal(before, model.embeddings())

    def test_new_nodes_grow_table(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        model.partial_fit(future_edges(graph, 5, new_nodes=True))
        assert model.graph.num_nodes > graph.num_nodes
        assert model.embeddings().shape[0] == model.graph.num_nodes

    def test_loss_history_extended(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        before = len(model.loss_history)
        model.partial_fit(future_edges(graph, 15), epochs=2)
        assert len(model.loss_history) == before + 2

    def test_encode_fast_path_tracks_new_table(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        model.partial_fit(future_edges(graph, 15))
        nodes = np.arange(model.graph.num_nodes)
        np.testing.assert_array_equal(model.encode(nodes), model.embeddings())

    def test_empty_batch_is_noop(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        before = model.embeddings().copy()
        model.partial_fit((np.empty(0, int), np.empty(0, int), np.empty(0)))
        np.testing.assert_array_equal(before, model.embeddings())

    def test_returns_self(self, graph):
        model = EHNA(seed=0, **FAST).fit(graph)
        assert model.partial_fit(future_edges(graph, 5)) is model


class TestBaselinePartialFit:
    @pytest.mark.parametrize("cls,kw", [
        (Node2Vec, dict(num_walks=2, walk_length=6, epochs=1)),
        (CTDNE, dict(walks_per_node=2, walk_length=6, epochs=1)),
        (LINE, dict(samples_per_edge=2)),
        (HTNE, dict(epochs=1)),
    ])
    def test_stream_updates(self, cls, kw, graph):
        model = cls(dim=8, seed=0, **kw).fit(graph)
        before = model.embeddings().copy()
        model.partial_fit(future_edges(graph, 15))
        assert model.graph.num_edges == graph.num_edges + 15
        emb = model.embeddings()
        assert np.all(np.isfinite(emb))
        assert not np.array_equal(before, emb)

    @pytest.mark.parametrize("cls,kw", [
        (Node2Vec, dict(num_walks=2, walk_length=6, epochs=1)),
        (CTDNE, dict(walks_per_node=2, walk_length=6, epochs=1)),
        (LINE, dict(samples_per_edge=2)),
        (HTNE, dict(epochs=1)),
    ])
    def test_new_nodes_grow_table(self, cls, kw, graph):
        model = cls(dim=8, seed=0, **kw).fit(graph)
        model.partial_fit(future_edges(graph, 5, new_nodes=True))
        assert model.embeddings().shape[0] == model.graph.num_nodes
        assert model.graph.num_nodes > graph.num_nodes
