"""Tests for the node-level (Eq. 3) and walk-level (Eq. 4) attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.attention import (
    inverse_time_sums,
    masked_softmax,
    node_attention,
    uniform_attention,
    walk_attention,
    walk_factors,
)
from repro.nn import Tensor


class TestMaskedSoftmax:
    def test_masks_get_zero_weight(self):
        logits = Tensor(np.zeros((1, 4)))
        valid = np.array([[1.0, 1.0, 0.0, 0.0]])
        out = masked_softmax(logits, valid, axis=1).data
        np.testing.assert_allclose(out, [[0.5, 0.5, 0.0, 0.0]], atol=1e-12)

    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(5, 6)))
        valid = (rng.random((5, 6)) < 0.7).astype(float)
        valid[:, 0] = 1.0  # at least one valid per row
        out = masked_softmax(logits, valid, axis=1).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))


class TestInverseTimeSums:
    def test_clamps_small_values(self):
        out = inverse_time_sums(np.array([0.0, 0.5]), eps=0.01)
        np.testing.assert_allclose(out, [100.0, 2.0])

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            inverse_time_sums(np.array([1.0]), eps=0.0)


class TestNodeAttention:
    def _alpha(self, dist, sums, valid, eps=1e-2):
        return node_attention(Tensor(dist), sums, valid, eps).data

    def test_simplex(self):
        rng = np.random.default_rng(1)
        dist = np.abs(rng.normal(size=(3, 5)))
        sums = rng.random((3, 5))
        valid = np.ones((3, 5))
        a = self._alpha(dist, sums, valid)
        assert np.all(a >= 0)
        np.testing.assert_allclose(a.sum(axis=1), np.ones(3))

    def test_recent_node_gets_more_attention(self):
        """Same distance, larger time-sum (more recent/frequent) -> larger α."""
        dist = np.array([[1.0, 1.0]])
        sums = np.array([[1.0, 0.1]])
        a = self._alpha(dist, sums, np.ones((1, 2)))
        assert a[0, 0] > a[0, 1]

    def test_closer_node_gets_more_attention(self):
        dist = np.array([[0.1, 2.0]])
        sums = np.array([[0.5, 0.5]])
        a = self._alpha(dist, sums, np.ones((1, 2)))
        assert a[0, 0] > a[0, 1]

    def test_padding_excluded(self):
        dist = np.array([[1.0, 1.0, 1.0]])
        sums = np.ones((1, 3))
        valid = np.array([[1.0, 1.0, 0.0]])
        a = self._alpha(dist, sums, valid)
        assert a[0, 2] == pytest.approx(0.0, abs=1e-12)

    def test_gradients_flow_to_distances(self):
        dist = Tensor(np.array([[0.5, 1.5]]), requires_grad=True)
        a = node_attention(dist, np.ones((1, 2)), np.ones((1, 2)), 1e-2)
        (a * a).sum().backward()
        assert dist.grad is not None
        assert np.any(dist.grad != 0)


class TestWalkFactors:
    def test_formula(self):
        """(1/|r|) Σ 1/Σt on a hand example."""
        sums = np.array([[1.0, 0.5, 0.0]])
        valid = np.array([[1.0, 1.0, 0.0]])
        out = walk_factors(sums, valid, eps=0.01)
        np.testing.assert_allclose(out, [(1.0 + 2.0) / 2.0])

    def test_all_padded_row_safe(self):
        out = walk_factors(np.zeros((1, 3)), np.zeros((1, 3)), eps=0.01)
        assert np.isfinite(out).all()


class TestWalkAttention:
    def test_simplex(self):
        rng = np.random.default_rng(2)
        dist = Tensor(np.abs(rng.normal(size=(4, 3))))
        factors = rng.random((4, 3)) + 0.1
        b = walk_attention(dist, factors).data
        np.testing.assert_allclose(b.sum(axis=1), np.ones(4))

    def test_recent_walk_preferred(self):
        """Lower factor (more recent interactions) -> higher β at equal dist."""
        dist = Tensor(np.array([[1.0, 1.0]]))
        factors = np.array([[0.5, 5.0]])
        b = walk_attention(dist, factors).data
        assert b[0, 0] > b[0, 1]


class TestUniformAttention:
    def test_matches_mask(self):
        valid = np.array([[1.0, 0.0], [1.0, 1.0]])
        np.testing.assert_array_equal(uniform_attention(valid), valid)


@given(
    arrays(np.float64, (2, 4), elements=st.floats(min_value=0, max_value=5)),
    arrays(np.float64, (2, 4), elements=st.floats(min_value=0, max_value=1)),
)
@settings(max_examples=50, deadline=None)
def test_node_attention_always_simplex(dist, sums):
    valid = np.ones((2, 4))
    a = node_attention(Tensor(dist), sums, valid, 1e-2).data
    assert np.all(a >= -1e-12)
    np.testing.assert_allclose(a.sum(axis=1), np.ones(2), atol=1e-9)
