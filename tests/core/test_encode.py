"""Tests for time-anchored encode() (protocol v2)."""

import numpy as np
import pytest

from repro.baselines import LINE, Node2Vec
from repro.core import EHNA
from repro.datasets import temporal_sbm

FAST = dict(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2)


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=30, num_edges=120, seed=11)


@pytest.fixture(scope="module")
def fitted(graph):
    return EHNA(seed=0, **FAST).fit(graph)


class TestEHNAEncode:
    def test_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            EHNA(**FAST).encode([0])

    def test_default_anchor_equals_embeddings_exactly(self, fitted, graph):
        nodes = np.arange(graph.num_nodes)
        np.testing.assert_array_equal(fitted.encode(nodes), fitted.embeddings())

    def test_last_event_anchor_equals_embeddings_exactly(self, fitted, graph):
        nodes = np.arange(graph.num_nodes)
        anchors = [graph.last_event_time(int(v)) for v in nodes]
        np.testing.assert_array_equal(
            fitted.encode(nodes, at=anchors), fitted.embeddings()
        )

    def test_subset_and_order_preserved(self, fitted):
        nodes = np.array([7, 3, 3, 0])
        out = fitted.encode(nodes)
        np.testing.assert_array_equal(out, fitted.embeddings()[nodes])

    def test_scalar_anchor_broadcasts(self, fitted, graph):
        t_mid = 0.5 * sum(graph.time_span)
        out = fitted.encode([0, 1, 2], at=t_mid)
        assert out.shape == (3, FAST["dim"])
        assert np.all(np.isfinite(out))

    def test_live_anchors_unit_norm(self, fitted, graph):
        t_mid = 0.5 * sum(graph.time_span)
        out = fitted.encode(np.arange(10), at=t_mid)
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-6)

    def test_live_encode_deterministic(self, fitted, graph):
        t_mid = 0.5 * sum(graph.time_span)
        a = fitted.encode(np.arange(6), at=t_mid)
        b = fitted.encode(np.arange(6), at=t_mid)
        np.testing.assert_array_equal(a, b)

    def test_encode_does_not_consume_training_rng(self, fitted, graph):
        state = fitted._rng.bit_generator.state["state"]
        fitted.encode(np.arange(6), at=0.5 * sum(graph.time_span))
        assert fitted._rng.bit_generator.state["state"] == state

    def test_anchor_changes_embedding(self, graph):
        """Early vs. late anchors see different histories for active nodes."""
        model = EHNA(seed=1, **FAST).fit(graph)
        lo, hi = graph.time_span
        busy = int(np.argmax(graph.degrees()))
        early = model.encode([busy], at=lo + 0.1 * (hi - lo))
        late = model.encode([busy], at=hi)
        assert not np.array_equal(early, late)

    def test_mixed_fast_and_live_rows(self, fitted, graph):
        nodes = np.array([0, 1, 2])
        anchors = [
            graph.last_event_time(0),  # fast path
            0.5 * sum(graph.time_span),  # live
            graph.last_event_time(2),  # fast path
        ]
        out = fitted.encode(nodes, at=anchors)
        emb = fitted.embeddings()
        np.testing.assert_array_equal(out[0], emb[0])
        np.testing.assert_array_equal(out[2], emb[2])
        assert np.all(np.isfinite(out[1]))

    def test_none_anchor_entry_uses_fallback(self, fitted):
        out = fitted.encode([0, 1], at=[None, None])
        assert np.all(np.isfinite(out))

    def test_scalar_node(self, fitted):
        out = fitted.encode(3)
        assert out.shape == (1, FAST["dim"])

    def test_anchor_length_mismatch_rejected(self, fitted):
        with pytest.raises(ValueError, match="anchor"):
            fitted.encode([0, 1, 2], at=[1.0, 2.0])


class TestBaselineEncode:
    """Time-invariant methods serve their table for any anchor."""

    @pytest.mark.parametrize("cls,kw", [
        (Node2Vec, dict(num_walks=2, walk_length=6, epochs=1)),
        (LINE, dict(samples_per_edge=2)),
    ])
    def test_table_served_regardless_of_anchor(self, cls, kw, graph):
        model = cls(dim=8, seed=0, **kw).fit(graph)
        emb = model.embeddings()
        np.testing.assert_array_equal(model.encode([0, 5], at=123.0), emb[[0, 5]])
        np.testing.assert_array_equal(model.encode([0, 5]), emb[[0, 5]])

    def test_anchor_spec_still_validated(self, graph):
        model = LINE(dim=8, seed=0, samples_per_edge=2).fit(graph)
        with pytest.raises(ValueError, match="anchor"):
            model.encode([0, 1, 2], at=[1.0])
