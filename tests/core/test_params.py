"""FlatParams / FlatAdam: the state-isolation seam under the sync trainer.

Two contracts matter.  Layout: flattening rebinds every tensor's ``data``
onto views of one buffer without changing a single value, and ``rebind``
relocates those views onto any same-shape buffer (the shared-memory move)
and back.  Arithmetic: a :class:`FlatAdam` step from the concatenated
gradient is *bitwise* identical to stepping the underlying tensors with
per-tensor :class:`~repro.nn.optim.Adam` instances — in both precisions,
with and without clipping — because that equivalence is what makes the
data-parallel trainer's updates exactly reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import FlatAdam, FlatParams, ParamGroup, ParamSpec
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


def make_tensors(dtype=np.float64, seed=0):
    """Two named parameter tensors with deterministic contents."""
    rng = np.random.default_rng(seed)
    emb = Tensor(rng.normal(size=(6, 4)).astype(dtype), requires_grad=True)
    net = Tensor(rng.normal(size=(3, 5)).astype(dtype), requires_grad=True)
    return [("embedding", emb), ("net", net)]


class TestFlatParams:
    def test_layout_and_values_preserved(self):
        named = make_tensors()
        originals = [t.data.copy() for _, t in named]
        flat = FlatParams(named)
        assert flat.size == 6 * 4 + 3 * 5
        assert [s.name for s in flat.specs] == ["embedding", "net"]
        assert all(isinstance(s, ParamSpec) for s in flat.specs)
        for (_, t), original in zip(named, originals):
            np.testing.assert_array_equal(t.data, original)
            # The tensor now aliases the flat buffer, not a private array.
            assert t.data.base is flat.data or t.data.base is flat.data.base
        np.testing.assert_array_equal(flat.view("embedding"), originals[0])
        assert flat.slice_of("net") == slice(24, 39)

    def test_tensor_writes_hit_the_flat_buffer(self):
        named = make_tensors()
        flat = FlatParams(named)
        named[0][1].data[0, 0] = 123.0
        assert flat.data[0] == 123.0
        flat.data[24] = -7.0
        assert named[1][1].data[0, 0] == -7.0

    def test_rebind_relocates_and_round_trips(self):
        named = make_tensors()
        flat = FlatParams(named)
        before = flat.snapshot()
        elsewhere = flat.data.copy()
        flat.rebind(elsewhere)
        assert flat.data is elsewhere
        named[0][1].data[0, 0] = 42.0
        assert elsewhere[0] == 42.0
        # Re-privatize: values carry over, aliasing to `elsewhere` ends.
        flat.rebind(flat.data.copy())
        elsewhere[0] = 0.0
        assert named[0][1].data[0, 0] == 42.0
        assert flat.data[1:].tolist() == before[1:].tolist()

    def test_snapshot_load_and_grad_vector(self):
        named = make_tensors()
        flat = FlatParams(named)
        vec = flat.snapshot() + 1.0
        flat.load(vec)
        np.testing.assert_array_equal(flat.data, vec)
        named[0][1].grad = np.ones_like(named[0][1].data)
        named[1][1].grad = None  # missing grad contributes zeros
        grad = flat.grad_vector()
        np.testing.assert_array_equal(grad[:24], 1.0)
        np.testing.assert_array_equal(grad[24:], 0.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="at least one"):
            FlatParams([])
        mixed = [
            ("a", Tensor(np.zeros(2, dtype=np.float64), requires_grad=True)),
            ("b", Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)),
        ]
        with pytest.raises(ValueError, match="multiple dtypes"):
            FlatParams(mixed)
        flat = FlatParams(make_tensors())
        with pytest.raises(KeyError):
            flat.view("nope")
        with pytest.raises(ValueError):
            flat.load(np.zeros(3, dtype=np.float64))
        with pytest.raises(ValueError):
            flat.rebind(np.zeros(flat.size + 1, dtype=np.float64))
        with pytest.raises(ValueError):
            flat.rebind(np.zeros(flat.size, dtype=np.float32))


def groups_for(flat: FlatParams, lr_a: float, lr_b: float, clip=None):
    a, b = flat.specs
    return [
        ParamGroup("embedding", a.start, a.stop, lr=lr_a, clip=clip),
        ParamGroup("net", b.start, b.stop, lr=lr_b, clip=clip),
    ]


class TestFlatAdam:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("clip", [None, 0.5])
    def test_bitwise_equal_to_per_tensor_adam(self, dtype, clip):
        named_flat = make_tensors(dtype=dtype, seed=3)
        named_ref = make_tensors(dtype=dtype, seed=3)
        flat = FlatParams(named_flat)
        opt = FlatAdam(flat, groups_for(flat, lr_a=0.01, lr_b=0.002, clip=clip))
        ref_opts = [
            Adam([named_ref[0][1]], lr=0.01, clip=clip),
            Adam([named_ref[1][1]], lr=0.002, clip=clip),
        ]
        rng = np.random.default_rng(11)
        for _ in range(5):
            grads = [rng.normal(size=t.data.shape).astype(dtype) for _, t in named_ref]
            for (_, t), g in zip(named_ref, grads):
                t.grad = g.copy()
            for ref in ref_opts:
                ref.step()
            opt.step(np.concatenate([g.ravel() for g in grads]))
        assert opt.t == 5
        for (_, t_flat), (_, t_ref) in zip(named_flat, named_ref):
            np.testing.assert_array_equal(t_flat.data, t_ref.data)

    def test_validation_errors(self):
        flat = FlatParams(make_tensors())
        a, b = flat.specs
        gap = [
            ParamGroup("a", a.start, a.stop - 1, lr=0.01),
            ParamGroup("b", a.stop, b.stop, lr=0.01),
        ]
        with pytest.raises(ValueError, match="contiguously"):
            FlatAdam(flat, gap)
        short = [ParamGroup("a", 0, flat.size - 1, lr=0.01)]
        with pytest.raises(ValueError, match="size"):
            FlatAdam(flat, short)
        with pytest.raises(ValueError, match="betas"):
            FlatAdam(flat, groups_for(flat, 0.01, 0.01), betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            FlatAdam(flat, [])
        opt = FlatAdam(flat, groups_for(flat, 0.01, 0.01))
        with pytest.raises(ValueError):
            opt.step(np.zeros(flat.size - 1, dtype=np.float64))
        with pytest.raises(ValueError):
            opt.step(np.zeros(flat.size, dtype=np.float32))
