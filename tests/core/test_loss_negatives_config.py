"""Tests for the margin loss (Eq. 5-7), negative sampler, and config."""

import numpy as np
import pytest

from repro.core import EHNAConfig, NegativeSampler, margin_hinge_loss
from repro.graph import TemporalGraph
from repro.nn import Tensor, check_gradients


def unit_rows(data):
    arr = np.asarray(data, dtype=np.float64)
    return arr / np.linalg.norm(arr, axis=-1, keepdims=True)


class TestMarginLoss:
    def test_zero_when_negatives_far_and_margin_zero(self):
        z = Tensor(unit_rows([[1.0, 0.0]]))
        zy = Tensor(unit_rows([[1.0, 0.0]]))  # d_pos = 0
        zn = Tensor(unit_rows([[-1.0, 0.0]]).reshape(1, 1, 2))  # d_neg = 4
        loss = margin_hinge_loss(z, zy, zn, margin=0.0)
        assert loss.item() == 0.0

    def test_hinge_active_when_violated(self):
        z = Tensor(unit_rows([[1.0, 0.0]]))
        zy = Tensor(unit_rows([[-1.0, 0.0]]))  # d_pos = 4
        zn = Tensor(unit_rows([[1.0, 0.0]]).reshape(1, 1, 2))  # d_neg = 0
        loss = margin_hinge_loss(z, zy, zn, margin=1.0)
        assert loss.item() == pytest.approx(5.0)

    def test_bidirectional_adds_second_term(self):
        rng = np.random.default_rng(0)
        z_x = Tensor(unit_rows(rng.normal(size=(3, 4))))
        z_y = Tensor(unit_rows(rng.normal(size=(3, 4))))
        zn = Tensor(unit_rows(rng.normal(size=(3, 2, 4))))
        uni = margin_hinge_loss(z_x, z_y, zn, margin=5.0).item()
        bi = margin_hinge_loss(z_x, z_y, zn, margin=5.0, neg_y=zn).item()
        assert bi > uni

    def test_loss_non_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            z_x = Tensor(unit_rows(rng.normal(size=(4, 8))))
            z_y = Tensor(unit_rows(rng.normal(size=(4, 8))))
            zn = Tensor(unit_rows(rng.normal(size=(4, 3, 8))))
            assert margin_hinge_loss(z_x, z_y, zn, margin=2.0).item() >= 0.0

    def test_mean_per_edge_scaling(self):
        """Duplicating the batch must keep the mean loss unchanged."""
        rng = np.random.default_rng(2)
        zx = unit_rows(rng.normal(size=(2, 4)))
        zy = unit_rows(rng.normal(size=(2, 4)))
        zn = unit_rows(rng.normal(size=(2, 2, 4)))
        single = margin_hinge_loss(Tensor(zx), Tensor(zy), Tensor(zn), 5.0).item()
        double = margin_hinge_loss(
            Tensor(np.tile(zx, (2, 1))),
            Tensor(np.tile(zy, (2, 1))),
            Tensor(np.tile(zn, (2, 1, 1))),
            5.0,
        ).item()
        assert double == pytest.approx(single)

    def test_shape_validation(self):
        z = Tensor(np.ones((2, 3)))
        with pytest.raises(ValueError):
            margin_hinge_loss(z, Tensor(np.ones((3, 3))), Tensor(np.ones((2, 1, 3))), 1.0)
        with pytest.raises(ValueError):
            margin_hinge_loss(z, z, Tensor(np.ones((2, 3))), 1.0)

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        z_x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        z_y = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        zn = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        worst = check_gradients(
            lambda: margin_hinge_loss(z_x, z_y, zn, margin=5.0, neg_y=zn),
            [z_x, z_y, zn],
        )
        assert worst < 1e-5


class TestNegativeSampler:
    def graph(self):
        # node 3 has very high degree
        src = np.array([0, 1, 2, 3, 3, 3, 3, 3])
        dst = np.array([1, 2, 0, 0, 1, 2, 4, 4])
        t = np.arange(8, dtype=float)
        return TemporalGraph.from_edges(src, dst, t)

    def test_degree_bias(self):
        g = self.graph()
        sampler = NegativeSampler(g)
        draws = sampler.sample((4000, 1), rng=np.random.default_rng(0)).ravel()
        freq = np.bincount(draws, minlength=g.num_nodes) / draws.size
        expected = g.degrees() ** 0.75
        expected = expected / expected.sum()
        np.testing.assert_allclose(freq, expected, atol=0.03)

    def test_excludes_endpoints(self):
        g = self.graph()
        sampler = NegativeSampler(g)
        xs = np.array([3] * 50)
        ys = np.array([0] * 50)
        out = sampler.sample((50, 4), rng=np.random.default_rng(1),
                             exclude_x=xs, exclude_y=ys)
        assert not np.any(out == 3)
        assert not np.any(out == 0)

    def test_exclude_neighbors_flag(self):
        g = self.graph()
        sampler = NegativeSampler(g, exclude_neighbors=True)
        # node 0's neighbors are {1, 2, 3}; node 4 is the only non-neighbor.
        xs = np.array([0] * 30)
        out = sampler.sample((30, 2), rng=np.random.default_rng(2), exclude_x=xs)
        for row in out:
            for v in row:
                assert not g.has_edge(0, int(v))
                assert v != 0

    def test_power_zero_is_uniform_over_connected(self):
        g = self.graph()
        sampler = NegativeSampler(g, power=0.0)
        draws = sampler.sample((6000, 1), rng=np.random.default_rng(3)).ravel()
        freq = np.bincount(draws, minlength=g.num_nodes) / draws.size
        np.testing.assert_allclose(freq, 1.0 / g.num_nodes, atol=0.02)


class TestConfig:
    def test_defaults_valid(self):
        EHNAConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dim", 0),
            ("num_walks", -1),
            ("walk_length", 0),
            ("p", 0.0),
            ("q", -2.0),
            ("decay", -1.0),
            ("margin", -0.1),
            ("num_negatives", 0),
            ("batch_size", 0),
            ("epochs", 0),
            ("lr", 0.0),
            ("time_eps", 0.0),
            ("network_lr", 0.0),
            ("network_lr", -1e-4),
            ("grad_clip", -1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        cfg = EHNAConfig(**{field: value})
        with pytest.raises(ValueError):
            cfg.validate()

    def test_network_lr_none_is_valid(self):
        EHNAConfig(network_lr=None).validate()  # resolved to lr/20 at fit time

    def test_positive_network_lr_and_grad_clip_valid(self):
        EHNAConfig(network_lr=1e-5, grad_clip=0.5).validate()

    def test_single_level_requires_single_layer(self):
        with pytest.raises(ValueError, match="EHNA-SL"):
            EHNAConfig(two_level=False, lstm_layers=2).validate()

    def test_single_level_with_one_layer_ok(self):
        EHNAConfig(two_level=False, lstm_layers=1).validate()
