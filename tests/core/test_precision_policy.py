"""The precision policy at the model layer.

The float64 default is pinned bitwise by the existing legacy-equivalence,
fused-kernel and walk-engine suites; these tests validate the *fast* mode:
config validation, float32 training end to end, loss-trajectory agreement
with the reference mode within the policy's documented bound, float32
walk-batch narrowing, checkpoint precision roundtrips and the documented
mismatch errors, and policy propagation through every baseline."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.base import EmbeddingMethod
from repro.baselines import CTDNE, HTNE, LINE, DeepWalk, Node2Vec
from repro.core import EHNA, EHNAConfig
from repro.datasets import temporal_sbm
from repro.nn import FLOAT32, UnknownPrecisionError
from repro.utils.checkpoint import CheckpointError, save_checkpoint
from repro.walks.engine import BatchedWalkEngine


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=40, num_edges=260, num_communities=4, seed=11)


FAST = dict(dim=12, epochs=2, batch_size=16, num_walks=3, walk_length=4, seed=0)


class TestConfigValidation:
    def test_default_is_float64(self):
        assert EHNAConfig().precision == "float64"

    def test_valid_precisions_accepted(self):
        EHNAConfig(precision="float32").validate()
        EHNAConfig(precision="float64").validate()

    def test_unknown_precision_rejected_listing_valid_values(self):
        with pytest.raises(UnknownPrecisionError) as err:
            EHNAConfig(precision="bfloat16").validate()
        message = str(err.value)
        assert "bfloat16" in message
        assert "float64" in message and "float32" in message

    def test_ehna_constructor_validates_precision(self):
        with pytest.raises(UnknownPrecisionError):
            EHNA(precision="half")


class TestFloat32Training:
    def test_fit_produces_float32_state(self, graph):
        model = EHNA(precision="float32", **FAST).fit(graph)
        assert model.embeddings().dtype == np.float32
        assert model.embedding.weight.dtype == np.float32
        for p in model.aggregator.parameters():
            assert p.dtype == np.float32
        assert all(np.isfinite(loss) for loss in model.loss_history)

    def test_loss_trajectory_tracks_float64_within_policy_bound(self, graph):
        """Walk sampling and negative draws stay float64, so both modes train
        on identical batches/neighborhoods — the trajectories differ only by
        accumulated rounding, bounded by the policy's documented loss_rtol."""
        f64 = EHNA(precision="float64", **FAST).fit(graph)
        f32 = EHNA(precision="float32", **FAST).fit(graph)
        a, b = np.asarray(f64.loss_history), np.asarray(f32.loss_history)
        np.testing.assert_allclose(a, b, rtol=FLOAT32.loss_rtol)

    def test_encode_returns_policy_dtype_at_arbitrary_anchors(self, graph):
        model = EHNA(precision="float32", **FAST).fit(graph)
        mid = (graph.time_span[0] + graph.time_span[1]) / 2.0
        out = model.encode(np.arange(6), at=mid)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_partial_fit_keeps_policy_dtype(self, graph):
        model = EHNA(precision="float32", **FAST).fit(graph)
        hi = graph.time_span[1]
        n = graph.num_nodes
        edges = (
            np.array([0, 1, n]),  # includes a brand-new node id
            np.array([2, n, 3]),
            np.array([hi + 1.0, hi + 2.0, hi + 3.0]),
        )
        model.partial_fit(edges, epochs=1)
        assert model.embedding.weight.dtype == np.float32
        assert model.embeddings().dtype == np.float32
        assert model.embeddings().shape[0] == n + 1

    def test_reference_and_fused_paths_share_float32_dtype(self, graph):
        """The non-fused (Walk-object) path narrows too, so ablations run
        under the same policy as the fast path."""
        model = EHNA(
            precision="float32", fused_kernels=False, one_pass=False, **FAST
        ).fit(graph)
        assert model.embeddings().dtype == np.float32


class TestWalkBatchNarrowing:
    def test_float32_engine_halves_walk_batch_bytes(self, graph):
        nodes = np.arange(20)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        e64 = BatchedWalkEngine(graph)
        e32 = BatchedWalkEngine(graph, real_dtype=np.float32)
        b64 = e64.temporal_walk_batch(nodes, anchors, 4, 6, np.random.default_rng(0))
        b32 = e32.temporal_walk_batch(nodes, anchors, 4, 6, np.random.default_rng(0))
        assert b64.ids.dtype == graph.index_dtype  # int32 on this graph
        assert b32.valid.dtype == np.float32
        assert b32.time_sums.dtype == np.float32
        # Same walks (same RNG stream), half the float bytes.
        np.testing.assert_array_equal(b64.ids, b32.ids)
        np.testing.assert_allclose(b64.time_sums, b32.time_sums, rtol=1e-6)
        assert b32.nbytes < b64.nbytes
        float_bytes32 = b32.valid.nbytes + b32.time_sums.nbytes
        float_bytes64 = b64.valid.nbytes + b64.time_sums.nbytes
        assert float_bytes32 * 2 == float_bytes64

    def test_merged_and_take_targets_preserve_policy_dtypes(self, graph):
        nodes = np.arange(8)
        anchors = np.full(nodes.size, graph.time_span[1] + 1.0)
        e32 = BatchedWalkEngine(graph, real_dtype=np.float32)
        batch = e32.temporal_walk_batch(nodes, anchors, 3, 4, np.random.default_rng(1))
        sub = batch.take_targets(np.array([0, 2, 5]))
        merged = batch.merged()
        for b in (sub, merged):
            assert b.ids.dtype == batch.ids.dtype
            assert b.valid.dtype == np.float32
            assert b.time_sums.dtype == np.float32


class TestCheckpointPrecision:
    def test_float32_roundtrip_encode_matches(self, tmp_path, graph):
        model = EHNA(precision="float32", **FAST).fit(graph)
        nodes = np.arange(10)
        mid = (graph.time_span[0] + graph.time_span[1]) / 2.0
        before_table = model.embeddings().copy()
        before_live = model.encode(nodes, at=mid)
        path = model.save(tmp_path / "f32.npz")

        loaded = EHNA.load(path)
        assert loaded.config.precision == "float32"
        assert loaded.embeddings().dtype == np.float32
        np.testing.assert_array_equal(loaded.embeddings(), before_table)
        # encode is deterministic from the checkpointed inference seed, so
        # the reloaded model re-encodes bit for bit.
        np.testing.assert_array_equal(loaded.encode(nodes, at=mid), before_live)

    def test_precision_recorded_in_header(self, tmp_path, graph):
        from repro.utils.checkpoint import load_checkpoint

        model = EHNA(precision="float32", **FAST).fit(graph)
        path = model.save(tmp_path / "hdr.npz")
        assert load_checkpoint(path).precision == "float32"
        f64 = EHNA(**FAST).fit(graph)
        assert load_checkpoint(f64.save(tmp_path / "hdr64.npz")).precision == "float64"

    def test_requesting_other_precision_raises_documented_error(self, tmp_path, graph):
        model = EHNA(precision="float32", **FAST).fit(graph)
        path = model.save(tmp_path / "mismatch.npz")
        with pytest.raises(CheckpointError, match="float32.*float64"):
            EHNA.load(path, precision="float64")
        f64 = EHNA(**FAST).fit(graph)
        path64 = f64.save(tmp_path / "mismatch64.npz")
        with pytest.raises(CheckpointError, match="float64.*float32"):
            EmbeddingMethod.load(path64, precision="float32")
        # Requesting the recorded precision loads fine.
        assert EHNA.load(path, precision="float32").config.precision == "float32"

    def test_inconsistent_archive_is_refused(self, tmp_path, graph):
        """A header whose precision disagrees with its own config (a
        hand-edited or corrupted archive) must not load."""
        model = EHNA(precision="float32", **FAST).fit(graph)
        arrays, meta = model._state_dict()
        arrays = dict(arrays)
        meta = dict(meta)
        from repro.utils.checkpoint import rng_state

        meta["name"] = model.name
        meta["rng_state"] = rng_state(model._rng)
        arrays["graph/src"] = graph.src
        arrays["graph/dst"] = graph.dst
        arrays["graph/time"] = graph.time
        arrays["graph/weight"] = graph.weight
        meta["graph_num_nodes"] = graph.num_nodes
        path = save_checkpoint(
            tmp_path / "tampered.npz",
            "EHNA",
            dataclasses.asdict(model.config),  # says float32 ...
            arrays,
            meta,
            precision="float64",  # ... header claims float64
        )
        with pytest.raises(CheckpointError, match="inconsistent"):
            EHNA.load(path)


class TestBaselinePolicy:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Node2Vec(dim=8, num_walks=2, walk_length=6, epochs=1, seed=0, precision="float32"),
            lambda: DeepWalk(dim=8, num_walks=2, walk_length=6, epochs=1, seed=0, precision="float32"),
            lambda: CTDNE(dim=8, walks_per_node=2, walk_length=6, epochs=1, seed=0, precision="float32"),
            lambda: LINE(dim=8, samples_per_edge=2, seed=0, precision="float32"),
            lambda: HTNE(dim=8, epochs=1, seed=0, precision="float32"),
        ],
        ids=["Node2Vec", "DeepWalk", "CTDNE", "LINE", "HTNE"],
    )
    def test_baseline_trains_and_checkpoints_in_float32(self, factory, graph, tmp_path):
        model = factory().fit(graph)
        emb = model.embeddings()
        assert emb.dtype == np.float32
        assert np.isfinite(emb).all()
        path = model.save(tmp_path / f"{model.name}.npz")
        loaded = type(model).load(path)
        np.testing.assert_array_equal(loaded.embeddings(), emb)
        assert loaded.embeddings().dtype == np.float32
        with pytest.raises(CheckpointError):
            type(model).load(path, precision="float64")

    def test_baseline_rejects_unknown_precision(self):
        for klass in (Node2Vec, CTDNE, LINE, HTNE):
            with pytest.raises(UnknownPrecisionError):
                klass(precision="quad")
