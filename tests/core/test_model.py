"""Tests for the EHNA model and its trainer."""

import numpy as np
import pytest

from repro.core import EHNA, EHNAConfig, ehna_na, ehna_rw, ehna_sl
from repro.datasets import temporal_sbm


FAST = dict(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2)


@pytest.fixture(scope="module")
def small_graph():
    return temporal_sbm(num_nodes=30, num_edges=120, seed=11)


@pytest.fixture(scope="module")
def fitted(small_graph):
    return EHNA(seed=0, **FAST).fit(small_graph)


class TestConstruction:
    def test_overrides_applied(self):
        model = EHNA(dim=16, margin=2.0)
        assert model.config.dim == 16
        assert model.config.margin == 2.0

    def test_config_object_plus_overrides(self):
        cfg = EHNAConfig(dim=16)
        model = EHNA(config=cfg, epochs=7)
        assert model.config.dim == 16
        assert model.config.epochs == 7

    def test_invalid_config_rejected_eagerly(self):
        with pytest.raises(ValueError):
            EHNA(dim=0)

    def test_embeddings_before_fit_raise(self):
        with pytest.raises(RuntimeError, match="fit"):
            EHNA(**FAST).embeddings()


class TestTraining:
    def test_embedding_shape_and_norm(self, fitted, small_graph):
        emb = fitted.embeddings()
        assert emb.shape == (small_graph.num_nodes, FAST["dim"])
        np.testing.assert_allclose(
            np.linalg.norm(emb, axis=1), np.ones(small_graph.num_nodes), atol=1e-6
        )

    def test_loss_history_recorded(self, fitted):
        assert len(fitted.loss_history) == FAST["epochs"]
        assert all(np.isfinite(l) for l in fitted.loss_history)

    def test_loss_decreases_over_epochs(self, small_graph):
        model = EHNA(seed=3, **{**FAST, "epochs": 4}).fit(small_graph)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_deterministic_given_seed(self, small_graph):
        a = EHNA(seed=5, **FAST).fit(small_graph).embeddings()
        b = EHNA(seed=5, **FAST).fit(small_graph).embeddings()
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self, small_graph):
        a = EHNA(seed=1, **FAST).fit(small_graph).embeddings()
        b = EHNA(seed=2, **FAST).fit(small_graph).embeddings()
        assert not np.allclose(a, b)

    def test_embeddings_finite(self, fitted):
        assert np.all(np.isfinite(fitted.embeddings()))

    def test_handles_isolated_nodes(self):
        """Nodes with no edges must still receive (fallback) embeddings."""
        from repro.graph import TemporalGraph

        g = TemporalGraph.from_edges(
            np.array([0, 1, 2]), np.array([1, 2, 0]),
            np.array([1.0, 2.0, 3.0]), num_nodes=6,
        )
        emb = EHNA(seed=0, **FAST).fit(g).embeddings()
        assert emb.shape == (6, FAST["dim"])
        assert np.all(np.isfinite(emb))

    def test_unidirectional_mode(self, small_graph):
        model = EHNA(seed=0, bidirectional=False, **FAST).fit(small_graph)
        assert np.all(np.isfinite(model.embeddings()))

    def test_grad_clip_zero_means_no_clipping(self, small_graph):
        """grad_clip=0 must disable clipping, not clip every gradient to 0
        (which would silently freeze training at the initial loss)."""
        model = EHNA(seed=0, grad_clip=0.0, **{**FAST, "epochs": 2})
        model.fit(small_graph)
        assert model.loss_history[1] != model.loss_history[0]

    def test_linked_nodes_closer_than_random(self, small_graph):
        """After training, mean distance over edges should be below the mean
        distance over random non-adjacent pairs (the Eq. 7 objective)."""
        model = EHNA(seed=4, dim=8, epochs=4, batch_size=32, num_walks=3,
                     walk_length=4, num_negatives=3).fit(small_graph)
        emb = model.embeddings()
        rng = np.random.default_rng(0)
        d_pos = np.mean([
            np.sum((emb[u] - emb[v]) ** 2)
            for u, v, _ in small_graph.edge_tuples()
        ])
        d_rand = []
        while len(d_rand) < 200:
            u, v = rng.integers(small_graph.num_nodes, size=2)
            if u != v and not small_graph.has_edge(int(u), int(v)):
                d_rand.append(np.sum((emb[u] - emb[v]) ** 2))
        assert d_pos < np.mean(d_rand)


class TestVariants:
    @pytest.mark.parametrize("factory,name", [
        (ehna_na, "EHNA-NA"),
        (ehna_rw, "EHNA-RW"),
        (ehna_sl, "EHNA-SL"),
    ])
    def test_variants_train(self, factory, name, small_graph):
        model = factory(seed=0, **FAST if name != "EHNA-SL" else
                        {**FAST, "lstm_layers": 1})
        assert model.name == name
        emb = model.fit(small_graph).embeddings()
        assert np.all(np.isfinite(emb))

    def test_na_disables_attention(self):
        assert ehna_na(**FAST).config.use_attention is False

    def test_rw_uses_static_walks(self):
        cfg = ehna_rw(**FAST).config
        assert cfg.temporal_walks is False
        assert cfg.use_attention is False

    def test_sl_single_level(self):
        cfg = ehna_sl(**{**FAST, "lstm_layers": 1}).config
        assert cfg.two_level is False
        assert cfg.lstm_layers == 1

    def test_sl_factory_sets_layers_itself(self):
        cfg = ehna_sl(dim=8).config
        assert cfg.lstm_layers == 1
