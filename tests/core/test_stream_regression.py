"""Regression: buffered stream growth must not leak into past anchors.

The serving contract of the streaming layer: between absorbs, the answer to
``encode(nodes, at=t)`` for any ``t`` before the stream head is *fixed* —
ingested-but-unabsorbed events are invisible to queries (walk engine and
final table snapshot the graph at the last fit/absorb, the pinned time
scale freezes the scaled-time mapping, and the inference RNG reseeds only
on training).  A leak here would mean query answers drift merely because
unrelated events arrived, which is exactly the bug class this file pins.

Interleaved ``partial_fit`` rounds (absorbs) *are* allowed to change the
answers — that's learning — so each round re-baselines after absorbing.
Both precision policies run the same protocol; the comparison tolerance is
the policy's own ``loss_rtol``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import load
from repro.nn.dtypes import get_precision
from repro.stream import EventStreamLoader, OnlineService


def fit_small(precision: str):
    graph = load("digg", scale=0.05, seed=1)
    train, held = graph.split_recent(0.3)
    model = EHNA(
        dim=8,
        epochs=1,
        num_walks=2,
        walk_length=4,
        batch_size=64,
        seed=0,
        precision=precision,
    )
    model.fit(train)
    return model, graph, held


def mid_train_anchor(train) -> float:
    """An anchor strictly between two train-time events — never equal to
    any node's last event time, so encode always takes the live path."""
    t = train.time
    gaps = np.flatnonzero(np.diff(t) > 0)
    k = gaps[gaps.size // 2]
    return float((t[k] + t[k + 1]) / 2.0)


@pytest.mark.parametrize("precision", ["float64", "float32"])
def test_past_anchor_encode_is_stable_across_interleaved_stream_rounds(precision):
    model, graph, held = fit_small(precision)
    policy = get_precision(precision)
    service = OnlineService(model)  # pinned time scale by default
    nodes = np.arange(6)
    t_past = mid_train_anchor(model.graph)

    loader = EventStreamLoader.from_graph(graph, held, batch_size=15)
    baseline = service.encode(nodes, at=t_past)
    rounds = 0
    for batch in loader:
        # Ingest without absorbing: the buffered events must be invisible.
        service.ingest(batch)
        assert service.staleness > 0
        again = service.encode(nodes, at=t_past)
        np.testing.assert_allclose(
            again, baseline, rtol=policy.loss_rtol, atol=0.0
        )
        # Now absorb (a real partial_fit): answers may legitimately move;
        # re-baseline for the next round.
        service.absorb()
        baseline = service.encode(nodes, at=t_past)
        rounds += 1
    assert rounds >= 2  # the interleaving actually happened


def test_past_anchor_encode_is_bitwise_stable_before_any_absorb():
    """Float64, no absorb at all: the stability is exact, not just rtol."""
    model, graph, held = fit_small("float64")
    service = OnlineService(model)
    nodes = np.arange(6)
    t_past = mid_train_anchor(model.graph)

    baseline = service.encode(nodes, at=t_past)
    for batch in EventStreamLoader.from_graph(graph, held, batch_size=15):
        service.ingest(batch)
    again = service.encode(nodes, at=t_past)
    np.testing.assert_array_equal(again, baseline)


def test_absorb_changes_answers_only_through_training():
    """Control for the main regression: the same absorbed events *do* change
    past-anchor answers (parameters moved), so the stability above is not
    just encode() ignoring the graph."""
    model, graph, held = fit_small("float64")
    service = OnlineService(model)
    nodes = np.arange(6)
    t_past = mid_train_anchor(model.graph)

    baseline = service.encode(nodes, at=t_past)
    for batch in EventStreamLoader.from_graph(graph, held, batch_size=15):
        service.ingest(batch)
    service.absorb()
    after = service.encode(nodes, at=t_past)
    assert not np.array_equal(after, baseline)
