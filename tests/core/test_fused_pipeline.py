"""The fused aggregation pipeline vs the reference path — the training-math
smoke gate.

``fused_kernels`` swaps the Walk-object batching + stepwise LSTM for the
array-native WalkBatch fast path + single-node BPTT kernel.  The swap is
numerically equivalent, so a full training run must produce the same loss
trajectory — this is the tier-1 gate that keeps perf refactors from silently
changing training math.  ``one_pass`` and ``dedup_aggregations`` *do* change
the step semantics (documented) and are covered for behavior, not equality.
"""

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import temporal_sbm

FAST = dict(dim=8, epochs=2, batch_size=16, num_walks=3, walk_length=4,
            num_negatives=2)


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=30, num_edges=150, seed=11)


class TestFusedMatchesReference:
    def test_loss_trajectory_matches(self, graph):
        """Same seed, fused vs reference kernels: the whole per-epoch loss
        history must agree to float noise — walks, padding, LSTM, attention,
        BN and Adam all consume identical numbers on both paths."""
        fused = EHNA(seed=0, fused_kernels=True, **FAST).fit(graph)
        ref = EHNA(seed=0, fused_kernels=False, **FAST).fit(graph)
        np.testing.assert_allclose(
            fused.loss_history, ref.loss_history, rtol=1e-6
        )
        np.testing.assert_allclose(
            fused.embeddings(), ref.embeddings(), atol=1e-6
        )

    def test_grouped_aggregate_forward_identical(self, graph):
        """A single forward through the full routing (temporal + fallback
        groups) is bitwise-equal across the two kernel paths."""
        m_f = EHNA(seed=0, fused_kernels=True, **FAST)
        m_r = EHNA(seed=0, fused_kernels=False, **FAST)
        m_f._build_runtime(graph)
        m_r._build_runtime(graph)
        t_end = graph.time_span[1] + 1.0
        nodes = np.arange(10)
        anchors = [t_end if i % 3 else None for i in range(10)]
        z_f = m_f._grouped_aggregate(nodes, anchors, rng=np.random.default_rng(5))
        z_r = m_r._grouped_aggregate(nodes, anchors, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(z_f.data, z_r.data)

    def test_single_level_ablation_matches(self, graph):
        """EHNA-SL (merged walks, k=1) rides the merged() fast path."""
        cfg = dict(FAST, two_level=False, lstm_layers=1)
        fused = EHNA(seed=0, fused_kernels=True, **cfg).fit(graph)
        ref = EHNA(seed=0, fused_kernels=False, **cfg).fit(graph)
        np.testing.assert_allclose(fused.loss_history, ref.loss_history, rtol=1e-6)

    def test_random_walk_ablation_matches(self, graph):
        """EHNA-RW (temporal_walks=False) routes everything through the
        uniform fast path."""
        cfg = dict(FAST, temporal_walks=False)
        fused = EHNA(seed=0, fused_kernels=True, **cfg).fit(graph)
        ref = EHNA(seed=0, fused_kernels=False, **cfg).fit(graph)
        np.testing.assert_allclose(fused.loss_history, ref.loss_history, rtol=1e-6)


class TestOnePassStep:
    def test_reference_step_still_trains(self, graph):
        m = EHNA(seed=0, one_pass=False, **FAST).fit(graph)
        assert len(m.loss_history) == FAST["epochs"]
        assert np.all(np.isfinite(m.embeddings()))

    def test_one_pass_losses_are_finite_and_comparable(self, graph):
        """one_pass changes batch-norm batching (documented), so losses are
        statistically — not bitwise — equal to the three-call step."""
        one = EHNA(seed=0, one_pass=True, **FAST).fit(graph)
        three = EHNA(seed=0, one_pass=False, **FAST).fit(graph)
        a, b = np.array(one.loss_history), np.array(three.loss_history)
        assert np.all(np.isfinite(a)) and np.all(np.isfinite(b))
        np.testing.assert_allclose(a, b, rtol=0.5)


class TestDedupAggregations:
    def test_duplicate_rows_share_one_aggregation(self, graph):
        m = EHNA(seed=0, dedup_aggregations=True, **FAST)
        m._build_runtime(graph)
        m.aggregator.eval()
        t_end = graph.time_span[1] + 1.0
        nodes = np.array([3, 5, 3, 5, 3])
        anchors = [t_end] * 5
        z = m._grouped_aggregate(nodes, anchors, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(z.data[0], z.data[2])
        np.testing.assert_array_equal(z.data[0], z.data[4])
        np.testing.assert_array_equal(z.data[1], z.data[3])
        assert not np.array_equal(z.data[0], z.data[1])

    def test_training_with_dedup(self, graph):
        m = EHNA(seed=0, dedup_aggregations=True, **FAST).fit(graph)
        assert np.all(np.isfinite(m.embeddings()))
        # encode still serves the table bitwise at default anchors.
        np.testing.assert_array_equal(m.encode([0, 1]), m.embeddings()[[0, 1]])

    def test_dedup_backward_accumulates(self, graph):
        """Gradients flow to the embedding table through the scatter."""
        m = EHNA(seed=0, dedup_aggregations=True, **FAST)
        m._build_runtime(graph)
        t_end = graph.time_span[1] + 1.0
        z = m._grouped_aggregate(
            np.array([2, 2, 2]), [t_end] * 3, rng=np.random.default_rng(2)
        )
        z.sum().backward()
        assert m.embedding.weight.grad is not None
        assert np.any(m.embedding.weight.grad != 0)


class TestCacheInterplay:
    def test_walk_cache_still_works_with_fused_kernels(self, graph):
        """The LRU walk cache stores Walk sets, so cached training keeps the
        reference batching; the model must train and serve regardless."""
        m = EHNA(seed=0, walk_cache_size=64, **FAST).fit(graph)
        assert np.all(np.isfinite(m.embeddings()))
        assert m.engine.cache is not None
        assert m.engine.cache.hits + m.engine.cache.misses > 0

    def test_checkpoint_roundtrip_preserves_new_config(self, graph, tmp_path):
        m = EHNA(seed=0, dedup_aggregations=True, one_pass=False, **FAST).fit(graph)
        path = m.save(tmp_path / "ehna.npz")
        loaded = EHNA.load(path)
        assert loaded.config.dedup_aggregations is True
        assert loaded.config.one_pass is False
        assert loaded.config.fused_kernels is True
        np.testing.assert_array_equal(loaded.embeddings(), m.embeddings())
