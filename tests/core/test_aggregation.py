"""Tests for walk batching and the two-level aggregator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.aggregation import TwoLevelAggregator, batch_walks
from repro.nn import Embedding, check_gradients
from repro.walks import Walk


def identity_scale(t):
    return t / 10.0


class TestBatchWalks:
    def test_padding_shapes(self):
        sets = [
            [Walk([0, 1, 2], [1.0, 2.0]), Walk([3], [])],
            [Walk([4, 5], [3.0]), Walk([6, 7], [4.0])],
        ]
        batch = batch_walks(sets, identity_scale, chronological=False)
        assert batch.ids.shape == (4, 3)
        assert batch.k == 2
        np.testing.assert_array_equal(batch.valid[1], [1.0, 0.0, 0.0])

    def test_chronological_reverses(self):
        sets = [[Walk([0, 1, 2], [5.0, 3.0])]]
        fwd = batch_walks(sets, identity_scale, chronological=False)
        rev = batch_walks(sets, identity_scale, chronological=True)
        np.testing.assert_array_equal(fwd.ids[0], [0, 1, 2])
        np.testing.assert_array_equal(rev.ids[0], [2, 1, 0])
        np.testing.assert_allclose(rev.time_sums[0], fwd.time_sums[0][::-1])

    def test_time_sums_scaled(self):
        sets = [[Walk([0, 1], [10.0])]]
        batch = batch_walks(sets, identity_scale, chronological=False)
        np.testing.assert_allclose(batch.time_sums[0], [1.0, 1.0])

    def test_merge_concatenates(self):
        sets = [[Walk([0, 1], [1.0]), Walk([2, 3], [2.0])]]
        batch = batch_walks(sets, identity_scale, chronological=False, merge=True)
        assert batch.k == 1
        np.testing.assert_array_equal(batch.ids[0], [0, 1, 2, 3])

    def test_merge_does_not_leak_time_across_walks(self):
        sets = [[Walk([0, 1], [10.0]), Walk([1, 2], [10.0])]]
        batch = batch_walks(sets, identity_scale, chronological=False, merge=True)
        # node 1 appears once per walk; each occurrence only sums its own
        # walk's edge times (1.0 after scaling), never both.
        np.testing.assert_allclose(batch.time_sums[0], [1.0, 1.0, 1.0, 1.0])

    def test_rejects_ragged_k(self):
        with pytest.raises(ValueError):
            batch_walks([[Walk([0])], [Walk([1]), Walk([2])]], identity_scale)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            batch_walks([], identity_scale)


def tiny_setup(two_level=True, layers=2, seed=0):
    emb = Embedding(10, 6, rng=seed)
    agg = TwoLevelAggregator(6, lstm_layers=layers, two_level=two_level, rng=seed)
    sets = [
        [Walk([1, 2, 3], [1.0, 2.0]), Walk([4, 5], [3.0])],
        [Walk([6], []), Walk([7, 8, 9], [4.0, 5.0])],
    ]
    targets = np.array([1, 6])
    return emb, agg, sets, targets


class TestAggregator:
    def test_output_shape_and_norm(self):
        emb, agg, sets, targets = tiny_setup()
        batch = batch_walks(sets, identity_scale)
        z = agg(emb, targets, batch)
        assert z.shape == (2, 6)
        np.testing.assert_allclose(
            np.linalg.norm(z.data, axis=1), np.ones(2), atol=1e-9
        )

    def test_single_level_mode(self):
        emb, agg, sets, targets = tiny_setup(two_level=False, layers=1)
        batch = batch_walks(sets, identity_scale, merge=True)
        z = agg(emb, targets, batch)
        assert z.shape == (2, 6)

    def test_single_level_rejects_unmerged(self):
        emb, agg, sets, targets = tiny_setup(two_level=False, layers=1)
        batch = batch_walks(sets, identity_scale, merge=False)
        with pytest.raises(ValueError, match="merged"):
            agg(emb, targets, batch)

    def test_target_count_mismatch_rejected(self):
        emb, agg, sets, targets = tiny_setup()
        batch = batch_walks(sets, identity_scale)
        with pytest.raises(ValueError):
            agg(emb, np.array([1]), batch)

    def test_attention_changes_output(self):
        emb, agg, sets, targets = tiny_setup()
        batch = batch_walks(sets, identity_scale)
        agg.eval()  # freeze BN stats so the comparison is exact
        with_attn = agg(emb, targets, batch, use_attention=True).data
        without = agg(emb, targets, batch, use_attention=False).data
        assert not np.allclose(with_attn, without)

    def test_gradients_reach_everything(self):
        emb, agg, sets, targets = tiny_setup()
        batch = batch_walks(sets, identity_scale)
        z = agg(emb, targets, batch)
        (z * z).sum().backward()
        assert emb.weight.grad is not None
        for p in agg.parameters():
            assert p.grad is not None

    def test_gradcheck_full_pipeline(self):
        """Finite-difference check through attention + LSTMs + BN + readout."""
        emb, agg, sets, targets = tiny_setup(seed=3)
        batch = batch_walks(sets, identity_scale)

        def f():
            z = agg(emb, targets, batch)
            return (z * z * z).sum()  # break symmetry

        params = [emb.weight] + agg.parameters()
        worst = check_gradients(f, params, atol=1e-4, rtol=1e-3)
        assert worst < 1e-4

    def test_padding_rows_do_not_affect_targets_with_real_walks(self):
        """Changing the embedding of a node only seen as padding must not
        change the output (padding id is 0 with attention weight 0)."""
        emb = Embedding(10, 4, rng=1)
        agg = TwoLevelAggregator(4, rng=1)
        agg.eval()
        sets = [[Walk([5, 6], [1.0]), Walk([7, 8, 9], [2.0, 3.0])]]
        targets = np.array([5])
        batch = batch_walks(sets, identity_scale)
        before = agg(emb, targets, batch).data.copy()
        emb.weight.data[0] += 100.0  # node 0 = padding id, not in any walk
        after = agg(emb, targets, batch).data
        np.testing.assert_allclose(before, after, atol=1e-8)
