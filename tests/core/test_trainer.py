"""Tests for the shared Trainer loop and its callbacks."""

import numpy as np
import pytest

from repro.core.trainer import (
    EarlyStopping,
    LambdaCallback,
    Trainer,
    TrainerCallback,
    TrainState,
    VerboseCallback,
    with_verbose,
)


class TestLoop:
    def test_batches_cover_every_item_once_per_epoch(self):
        seen = []
        trainer = Trainer(epochs=2, batch_size=4, rng=0, shuffle=False)
        trainer.run(lambda b: seen.append(b.copy()) or 0.0, num_items=10)
        per_epoch = np.concatenate(seen[:3]), np.concatenate(seen[3:])
        for items in per_epoch:
            np.testing.assert_array_equal(np.sort(items), np.arange(10))
        assert [b.size for b in seen] == [4, 4, 2, 4, 4, 2]

    def test_shuffle_uses_rng(self):
        orders = []
        trainer = Trainer(epochs=1, batch_size=100, rng=0)
        trainer.run(lambda b: orders.append(b.copy()) or 0.0, num_items=50)
        assert not np.array_equal(orders[0], np.arange(50))

    def test_weighted_epoch_mean(self):
        # Batches of 4 and 2 items with losses 1.0 and 4.0: the weighted
        # mean is (4*1 + 2*4) / 6 = 2.0, not the unweighted 2.5.
        losses = iter([1.0, 4.0])
        trainer = Trainer(epochs=1, batch_size=4, rng=0, shuffle=False)
        history = trainer.run(lambda b: next(losses), num_items=6)
        assert history == [pytest.approx(2.0)]

    def test_epoch_items_regenerated(self):
        calls = []

        def epoch_items(epoch, rng):
            calls.append(epoch)
            return np.arange(3) + 10 * epoch

        got = []
        trainer = Trainer(epochs=3, batch_size=8, rng=0, shuffle=False)
        trainer.run(lambda b: got.append(b.copy()) or 0.0, epoch_items=epoch_items)
        assert calls == [0, 1, 2]
        np.testing.assert_array_equal(got[2], [20, 21, 22])

    def test_rejects_both_item_specs(self):
        trainer = Trainer(epochs=1, batch_size=4, rng=0)
        with pytest.raises(ValueError, match="exactly one"):
            trainer.run(lambda b: 0.0, num_items=5, epoch_items=lambda e, r: [1])
        with pytest.raises(ValueError, match="exactly one"):
            trainer.run(lambda b: 0.0)

    def test_rejects_bad_callback(self):
        with pytest.raises(TypeError, match="on_epoch_end"):
            Trainer(epochs=1, batch_size=4, callbacks=[object()])


class TestCallbacks:
    def test_on_epoch_end_sees_state(self):
        states: list[TrainState] = []
        trainer = Trainer(
            epochs=2,
            batch_size=4,
            rng=0,
            callbacks=[LambdaCallback(lambda s: states.append(s) and None)],
            name="probe",
        )
        trainer.run(lambda b: 1.5, num_items=8)
        assert [s.epoch for s in states] == [1, 2]
        assert states[0].epochs == 2
        assert states[0].name == "probe"
        assert states[0].mean_loss == pytest.approx(1.5)
        assert states[1].history == [pytest.approx(1.5)] * 2

    def test_stop_vote_ends_training(self):
        trainer = Trainer(
            epochs=10,
            batch_size=4,
            rng=0,
            callbacks=[LambdaCallback(lambda s: s.epoch >= 3)],
        )
        history = trainer.run(lambda b: 1.0, num_items=8)
        assert len(history) == 3

    def test_all_callbacks_run_even_after_stop_vote(self):
        seen = []
        trainer = Trainer(
            epochs=5,
            batch_size=4,
            rng=0,
            callbacks=[
                LambdaCallback(lambda s: True),  # immediate stop vote
                LambdaCallback(lambda s: seen.append(s.epoch) and None),
            ],
        )
        trainer.run(lambda b: 1.0, num_items=8)
        assert seen == [1]

    def test_early_stopping_patience(self):
        losses = iter([3.0, 2.0, 2.0, 2.0, 1.0])
        trainer = Trainer(
            epochs=5,
            batch_size=8,
            rng=0,
            callbacks=[EarlyStopping(patience=2)],
        )
        history = trainer.run(lambda b: next(losses), num_items=8)
        # Improvement at epoch 2, then two stale epochs -> stop after 4.
        assert len(history) == 4

    def test_early_stopping_resets_between_runs(self):
        # One instance reused across fit + partial_fit: the first run's
        # converged best must not abort the second run's fresh losses.
        cb = EarlyStopping(patience=2)
        Trainer(epochs=3, batch_size=8, rng=0, callbacks=[cb]).run(
            lambda b: 0.1, num_items=8
        )
        losses = iter([0.9, 0.8, 0.7, 0.6, 0.5])
        history = Trainer(epochs=5, batch_size=8, rng=0, callbacks=[cb]).run(
            lambda b: next(losses), num_items=8
        )
        assert len(history) == 5

    def test_early_stopping_min_delta(self):
        losses = iter([3.0, 2.999, 2.998])
        trainer = Trainer(
            epochs=3,
            batch_size=8,
            rng=0,
            callbacks=[EarlyStopping(patience=2, min_delta=0.1)],
        )
        history = trainer.run(lambda b: next(losses), num_items=8)
        assert len(history) == 3  # sub-delta improvements count as stale

    def test_verbose_callback_prints(self, capsys):
        trainer = Trainer(
            epochs=1, batch_size=4, rng=0, callbacks=[VerboseCallback()], name="EHNA"
        )
        trainer.run(lambda b: 0.25, num_items=4)
        assert "[EHNA] epoch 1/1 loss=0.2500" in capsys.readouterr().out

    def test_with_verbose_helper(self):
        base = (EarlyStopping(),)
        assert with_verbose(base, False) == list(base)
        extended = with_verbose(base, True)
        assert isinstance(extended[-1], VerboseCallback)

    def test_base_callback_is_noop(self):
        state = TrainState(epoch=1, epochs=1, mean_loss=0.0)
        assert TrainerCallback().on_epoch_end(state) is None
