"""Tests for save()/load() checkpointing (protocol v2)."""

import json

import numpy as np
import pytest

from repro.base import EmbeddingMethod
from repro.baselines import CTDNE, HTNE, LINE, DeepWalk, Node2Vec
from repro.core import EHNA
from repro.datasets import temporal_sbm
from repro.utils.checkpoint import (
    FORMAT,
    VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

FAST = dict(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2)


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=25, num_edges=100, seed=7)


@pytest.fixture(scope="module")
def fitted_ehna(graph):
    return EHNA(seed=0, **FAST).fit(graph)


class TestEHNARoundtrip:
    def test_embeddings_bitwise_identical(self, fitted_ehna, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EHNA.load(path)
        np.testing.assert_array_equal(loaded.embeddings(), fitted_ehna.embeddings())

    def test_encode_at_time_bitwise_identical(self, fitted_ehna, graph, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EHNA.load(path)
        nodes = np.arange(graph.num_nodes)
        for t in (0.25 * graph.time_span[1], graph.time_span[1] + 5.0):
            np.testing.assert_array_equal(
                loaded.encode(nodes, at=t), fitted_ehna.encode(nodes, at=t)
            )

    def test_config_and_history_roundtrip(self, fitted_ehna, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EHNA.load(path)
        assert loaded.config == fitted_ehna.config
        assert loaded.loss_history == pytest.approx(fitted_ehna.loss_history)
        assert loaded.name == fitted_ehna.name

    def test_graph_roundtrip(self, fitted_ehna, graph, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EHNA.load(path)
        assert loaded.graph.num_nodes == graph.num_nodes
        np.testing.assert_array_equal(loaded.graph.src, graph.src)
        np.testing.assert_array_equal(loaded.graph.time, graph.time)

    def test_loaded_model_can_partial_fit(self, fitted_ehna, graph, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EHNA.load(path)
        t_hi = graph.time_span[1]
        loaded.partial_fit(([0, 1], [5, 6], [t_hi + 1.0, t_hi + 2.0]))
        assert loaded.graph.num_edges == graph.num_edges + 2
        assert np.all(np.isfinite(loaded.embeddings()))

    def test_rng_stream_roundtrips(self, graph, tmp_path):
        model = EHNA(seed=42, **FAST).fit(graph)
        path = model.save(tmp_path / "m.npz")
        # The restored stream continues exactly where the saved one stopped.
        expected = model._rng.integers(1 << 30, size=4)
        got = EHNA.load(path)._rng.integers(1 << 30, size=4)
        np.testing.assert_array_equal(got, expected)

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            EHNA(**FAST).save(tmp_path / "m.npz")

    def test_cached_model_serves_independent_of_cache_warmth(self, graph, tmp_path):
        """With a walk cache, fit warms entries the cold loaded model lacks;
        encode must bypass the cache so both serve bitwise-identical rows."""
        model = EHNA(seed=0, walk_cache_size=64, **FAST).fit(graph)
        loaded = EHNA.load(model.save(tmp_path / "m.npz"))
        nodes = np.arange(graph.num_nodes)
        lo, hi = graph.time_span
        for anchor in (lo - 1.0, 0.5 * (lo + hi), hi + 1.0):
            np.testing.assert_array_equal(
                loaded.encode(nodes, at=anchor), model.encode(nodes, at=anchor)
            )

    def test_encode_does_not_pollute_walk_cache(self, graph):
        model = EHNA(seed=0, walk_cache_size=64, **FAST).fit(graph)
        before = len(model.engine.cache)
        model.encode(np.arange(graph.num_nodes), at=0.5 * sum(graph.time_span))
        assert len(model.engine.cache) == before

    def test_base_class_load_dispatches(self, fitted_ehna, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        loaded = EmbeddingMethod.load(path)
        assert isinstance(loaded, EHNA)

    def test_wrong_class_load_rejected(self, fitted_ehna, tmp_path):
        path = fitted_ehna.save(tmp_path / "m.npz")
        with pytest.raises(CheckpointError, match="EHNA"):
            LINE.load(path)


class TestBaselineRoundtrips:
    @pytest.mark.parametrize("cls,kw", [
        (Node2Vec, dict(num_walks=2, walk_length=6, epochs=1)),
        (DeepWalk, dict(num_walks=2, walk_length=6, epochs=1)),
        (CTDNE, dict(walks_per_node=2, walk_length=6, epochs=1)),
        (LINE, dict(samples_per_edge=2)),
        (HTNE, dict(epochs=1)),
    ])
    def test_embeddings_and_encode_bitwise(self, cls, kw, graph, tmp_path):
        model = cls(dim=8, seed=0, **kw).fit(graph)
        path = model.save(tmp_path / "m.npz")
        loaded = EmbeddingMethod.load(path)
        assert type(loaded) is cls
        np.testing.assert_array_equal(loaded.embeddings(), model.embeddings())
        np.testing.assert_array_equal(
            loaded.encode([0, 3], at=1.0), model.encode([0, 3], at=1.0)
        )

    def test_htne_decay_roundtrips(self, graph, tmp_path):
        model = HTNE(dim=8, epochs=1, seed=0).fit(graph)
        path = model.save(tmp_path / "m.npz")
        assert HTNE.load(path).decay == model.decay


class TestHeaderValidation:
    def _ehna_path(self, fitted, tmp_path):
        return fitted.save(tmp_path / "m.npz")

    def test_wrong_version_rejected_clearly(self, fitted_ehna, tmp_path):
        path = self._ehna_path(fitted_ehna, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        header = json.loads(str(payload["__checkpoint_header__"]))
        header["version"] = VERSION + 17
        payload["__checkpoint_header__"] = np.asarray(json.dumps(header))
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="version"):
            EHNA.load(path)

    def test_wrong_format_rejected(self, fitted_ehna, tmp_path):
        path = self._ehna_path(fitted_ehna, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        header = json.loads(str(payload["__checkpoint_header__"]))
        header["format"] = "something.else"
        payload["__checkpoint_header__"] = np.asarray(json.dumps(header))
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="format"):
            EHNA.load(path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_unknown_class_rejected(self, tmp_path):
        save_checkpoint(tmp_path / "m.npz", "NoSuchMethod", {}, {}, {"rng_state": {}})
        with pytest.raises(CheckpointError, match="NoSuchMethod"):
            EmbeddingMethod.load(tmp_path / "m.npz")

    def test_header_format_constant(self):
        assert FORMAT == "repro.embedding_method"
        assert VERSION == 2

    def test_suffix_appended(self, fitted_ehna, tmp_path):
        path = fitted_ehna.save(tmp_path / "model")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_corrupted_array_shape_rejected(self, fitted_ehna, tmp_path):
        path = self._ehna_path(fitted_ehna, tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["embedding"] = np.zeros((3, 3))
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="shape"):
            EHNA.load(path)


class TestDurability:
    """Atomic publish, per-array checksums, the stream watermark."""

    def test_save_leaves_no_temp_file(self, tmp_path):
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(4)}, {}
        )
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crashed_save_keeps_the_previous_checkpoint(self, tmp_path):
        from repro.utils import faults
        from repro.utils.faults import InjectedCrash

        old = np.arange(4)
        path = save_checkpoint(tmp_path / "m.npz", "EHNA", {}, {"a": old}, {})
        with faults.inject("checkpoint.write", byte_limit=64):
            with pytest.raises(InjectedCrash):
                save_checkpoint(path, "EHNA", {}, {"a": np.arange(9)}, {})
        np.testing.assert_array_equal(load_checkpoint(path).arrays["a"], old)

    def test_crash_before_publish_keeps_the_previous_checkpoint(self, tmp_path):
        from repro.utils import faults
        from repro.utils.faults import InjectedCrash

        old = np.arange(4)
        path = save_checkpoint(tmp_path / "m.npz", "EHNA", {}, {"a": old}, {})
        with faults.inject("checkpoint.before_publish"):
            with pytest.raises(InjectedCrash):
                save_checkpoint(path, "EHNA", {}, {"a": np.arange(9)}, {})
        np.testing.assert_array_equal(load_checkpoint(path).arrays["a"], old)

    def test_flipped_payload_byte_fails_its_checksum(self, tmp_path):
        # Rewrite the archive with one array's bytes perturbed but the
        # recorded header (and its checksums) intact — only the per-array
        # CRC can catch this.
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(64)}, {}
        )
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["a"] = payload["a"].copy()
        payload["a"][17] ^= 1
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="'a' fails its checksum"):
            load_checkpoint(path)

    def test_removed_array_detected_via_manifest(self, tmp_path):
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(4), "b": np.ones(2)}, {}
        )
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        del payload["b"]
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="checksum manifest"):
            load_checkpoint(path)

    def test_verification_can_be_skipped(self, tmp_path):
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(64)}, {}
        )
        with np.load(path, allow_pickle=False) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["a"] = payload["a"].copy()
        payload["a"][17] ^= 1
        np.savez(path, **payload)
        ck = load_checkpoint(path, verify=False)
        assert ck.arrays["a"][17] == 16

    def test_truncated_archive_is_a_clear_error(self, tmp_path):
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(512)}, {}
        )
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="cannot read checkpoint"):
            load_checkpoint(path)

    def test_watermark_roundtrips(self, tmp_path):
        wm = {"batches": 7, "head_time": 12.5, "service": {"train_every": 2}}
        path = save_checkpoint(
            tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(4)}, {}, watermark=wm
        )
        assert load_checkpoint(path).watermark == wm

    def test_watermark_defaults_to_none(self, tmp_path):
        path = save_checkpoint(tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(4)}, {})
        assert load_checkpoint(path).watermark is None

    def test_reserved_array_name_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="reserved"):
            save_checkpoint(
                tmp_path / "m.npz", "EHNA", {},
                {"__checkpoint_header__": np.zeros(1)}, {},
            )

    def test_non_json_watermark_rejected_before_writing(self, tmp_path):
        with pytest.raises(CheckpointError, match="JSON"):
            save_checkpoint(
                tmp_path / "m.npz", "EHNA", {}, {"a": np.arange(4)}, {},
                watermark={"bad": object()},
            )
        assert not (tmp_path / "m.npz").exists()
