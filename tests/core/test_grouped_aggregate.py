"""Tests for EHNA's grouped aggregation routing and objective variants."""

import numpy as np
import pytest

from repro.core import EHNA
from repro.datasets import temporal_sbm
from repro.graph import TemporalGraph


FAST = dict(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2)


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=25, num_edges=120, seed=17)


@pytest.fixture(scope="module")
def fitted(graph):
    return EHNA(seed=0, **FAST).fit(graph)


class TestGroupedAggregate:
    def test_row_order_preserved(self, fitted, graph):
        """Rows must line up with the requested nodes regardless of which
        pipeline (temporal vs fallback) each went through."""
        t_end = graph.time_span[1] + 1.0
        nodes = np.arange(10)
        anchors = [t_end if i % 2 == 0 else None for i in range(10)]
        z = fitted._grouped_aggregate(nodes, anchors)
        assert z.shape == (10, FAST["dim"])
        # Aggregating one node alone must give the same row (eval mode for
        # deterministic BN).
        fitted.aggregator.eval()
        z_all = fitted._grouped_aggregate(nodes, anchors)
        for i in (0, 1, 7):
            rng_state = fitted._rng.bit_generator.state
            fitted._rng.bit_generator.state = rng_state  # freeze for clarity
        fitted.aggregator.train()

    def test_none_anchor_routes_to_fallback(self, fitted, graph):
        """anchor=None must not crash and must produce finite rows."""
        z = fitted._grouped_aggregate(np.array([0, 1]), [None, None])
        assert np.all(np.isfinite(z.data))

    def test_early_anchor_falls_back(self, fitted, graph):
        """A node anchored before its first event has no history."""
        t0 = graph.time_span[0]
        z = fitted._grouped_aggregate(np.array([0]), [t0 - 1.0])
        assert np.all(np.isfinite(z.data))

    def test_all_temporal_group(self, fitted, graph):
        t_end = graph.time_span[1] + 1.0
        z = fitted._grouped_aggregate(np.arange(5), [t_end] * 5)
        assert z.shape == (5, FAST["dim"])


class TestObjectiveVariants:
    def test_dot_objective_trains(self, graph):
        m = EHNA(seed=0, objective="dot", **FAST).fit(graph)
        assert np.all(np.isfinite(m.embeddings()))

    def test_dot_gradient_is_half_euclidean_gradient(self):
        """With unit-norm rows, dot = 1 - d²/2, so as long as the m=5 hinge
        never saturates (it cannot on the sphere), the dot-objective gradient
        is exactly half the Euclidean one — the two objectives differ only by
        gradient scale, which Adam largely absorbs (DESIGN.md §7.4)."""
        from repro.core.loss import margin_hinge_loss
        from repro.nn import Tensor

        rng = np.random.default_rng(0)
        rx, ry, rn = (rng.normal(size=s) for s in ((4, 6), (4, 6), (4, 2, 6)))

        def normalize(t):
            return t / (((t * t).sum(axis=-1, keepdims=True) + 1e-12) ** 0.5)

        grads = {}
        for metric in ("euclidean", "dot"):
            tx = Tensor(rx, requires_grad=True)
            ty = Tensor(ry, requires_grad=True)
            tn = Tensor(rn, requires_grad=True)
            loss = margin_hinge_loss(
                normalize(tx), normalize(ty), normalize(tn),
                margin=5.0, neg_y=normalize(tn), metric=metric,
            )
            loss.backward()
            grads[metric] = (tx.grad.copy(), ty.grad.copy(), tn.grad.copy())
        # The identity applies to pre-normalization gradients: the radial
        # component (where d² and -dot genuinely differ) is projected out by
        # the normalization backward.
        for g_euc, g_dot in zip(grads["euclidean"], grads["dot"]):
            np.testing.assert_allclose(g_dot, g_euc / 2.0, atol=1e-10)

    def test_invalid_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            EHNA(objective="cosine", **FAST)

    def test_uniform_negative_power(self, graph):
        m = EHNA(seed=0, negative_power=0.0, **FAST).fit(graph)
        assert np.all(np.isfinite(m.embeddings()))

    def test_negative_power_validation(self):
        with pytest.raises(ValueError):
            EHNA(negative_power=-1.0, **FAST)


class TestLearningRateGroups:
    def test_network_lr_default_is_fraction(self, graph):
        m = EHNA(seed=0, lr=0.02, **FAST)
        assert m.config.network_lr is None  # resolved at fit time to lr/20

    def test_explicit_network_lr(self, graph):
        m = EHNA(seed=0, network_lr=1e-4, **FAST).fit(graph)
        assert np.all(np.isfinite(m.embeddings()))

    def test_identity_readout_initialization(self):
        """W_e starts as the identity; W_H starts small (DESIGN.md §7.2)."""
        from repro.core.aggregation import TwoLevelAggregator

        agg = TwoLevelAggregator(8, rng=0)
        w = agg.readout.weight.data
        np.testing.assert_array_equal(w[8:], np.eye(8))
        assert np.abs(w[:8]).max() < 0.2
