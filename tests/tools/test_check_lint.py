"""check_lint version-parsing hardening: drift warning + unparseable exit."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools import check_lint  # noqa: E402


def test_parse_version_extracts_dotted_token():
    assert check_lint.parse_version("ruff 0.6.9\n") == "0.6.9"
    assert check_lint.parse_version("ruff 0.12.1 (abcdef 2025-01-01)") == "0.12.1"


def test_parse_version_rejects_garbage():
    assert check_lint.parse_version("") is None
    assert check_lint.parse_version("not a version at all") is None


def test_main_skips_cleanly_when_ruff_missing(monkeypatch, capsys):
    monkeypatch.setattr(check_lint, "ruff_version_output", lambda: None)
    assert check_lint.main() == 0
    assert "skipping" in capsys.readouterr().out


def test_main_fails_on_unparseable_version(monkeypatch, capsys):
    monkeypatch.setattr(check_lint, "ruff_version_output", lambda: "garbled")
    assert check_lint.main() == 1
    err = capsys.readouterr().err
    assert "cannot parse" in err and check_lint.PINNED in err


def test_drift_warning_names_both_versions(monkeypatch, capsys):
    monkeypatch.setattr(
        check_lint, "ruff_version_output", lambda: "ruff 99.0.0"
    )
    ran = {}

    def fake_run(cmd, cwd=None):
        ran["cmd"] = cmd

        class Done:
            returncode = 0

        return Done()

    monkeypatch.setattr(check_lint.subprocess, "run", fake_run)
    assert check_lint.main() == 0
    err = capsys.readouterr().err
    assert "99.0.0" in err and check_lint.PINNED in err
    assert "check" in ran["cmd"]  # the lint itself still ran despite drift
