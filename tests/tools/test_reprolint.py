"""reprolint: per-rule fixtures, suppressions, baseline, CLI, self-check.

Every rule gets at least one violating and one clean snippet, exercised
through the real :class:`~tools.reprolint.engine.Engine` over a fixture
tree (so path scoping runs exactly as it does over the repo).  The
acceptance mutations — deleting the fsync in ``utils/checkpoint.py``,
adding ``np.random.rand`` to ``nn/layers.py`` — run over *copies of the
live files*, so the checker is pinned to the real tree's shape, and the
self-check asserts the shipped ``src/`` + ``tests/`` stay finding-free.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (  # noqa: E402
    Engine,
    Finding,
    load_baseline,
    registered_rule_classes,
    split_by_baseline,
    write_baseline,
)

ALL_RULE_IDS = (
    "RNG001", "DTYPE001", "SEAM001", "DUR001", "API001", "PAR001", "TEST001",
)

#: A pytest.ini registering one custom marker, for TEST001 fixtures.
PYTEST_INI = "[pytest]\nmarkers =\n    slow: long-running\n"


def lint_tree(tmp_path: Path, files: dict, paths=None) -> list[Finding]:
    """Write ``files`` under ``tmp_path`` and run the engine over them."""
    for rel, content in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)
    engine = Engine(tmp_path)
    return engine.check_paths(paths or [tmp_path])


def rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_all_seven_rules_registered():
    ids = [cls.rule_id for cls in registered_rule_classes()]
    assert list(ALL_RULE_IDS) == ids
    for cls in registered_rule_classes():
        assert cls.title and cls.contract  # docs surface is populated


# ---------------------------------------------------------------------------
# RNG001
# ---------------------------------------------------------------------------


def test_rng001_flags_global_sampler(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/foo.py": "import numpy as np\nx = np.random.rand(3)\n",
    })
    assert rule_ids(findings) == ["RNG001"]
    assert findings[0].line == 2
    assert "process-global" in findings[0].message


def test_rng001_flags_unseeded_default_rng(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/foo.py": (
            "import numpy as np\nrng = np.random.default_rng()\n"
        ),
    })
    assert rule_ids(findings) == ["RNG001"]
    assert "seed" in findings[0].message


def test_rng001_flags_direct_import_alias(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/foo.py": (
            "from numpy.random import shuffle\nshuffle([1, 2])\n"
        ),
    })
    assert rule_ids(findings) == ["RNG001"]


def test_rng001_clean_on_seeded_generators(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/foo.py": (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "child = np.random.default_rng(np.random.SeedSequence([1, 2]))\n"
            "gen = np.random.Generator(np.random.PCG64(3))\n"
            "def f(r: np.random.Generator) -> None:\n    r.random(3)\n"
        ),
    })
    assert findings == []


def test_rng001_scoped_to_src(tmp_path):
    findings = lint_tree(tmp_path, {
        "scripts/foo.py": "import numpy as np\nx = np.random.rand(3)\n",
    })
    assert findings == []


# ---------------------------------------------------------------------------
# DTYPE001
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("call", ["np.zeros(4)", "np.empty(4)", "np.ones(4)",
                                  "np.arange(4)", "np.full(4, 0.0)"])
def test_dtype001_flags_bare_constructors(tmp_path, call):
    findings = lint_tree(tmp_path, {
        "src/repro/nn/foo.py": f"import numpy as np\nx = {call}\n",
    })
    assert rule_ids(findings) == ["DTYPE001"]
    assert findings[0].line == 2


def test_dtype001_clean_with_dtype(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/walks/foo.py": (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.float32)\n"
            "b = np.zeros(4, bool)\n"              # positional dtype
            "c = np.full(4, 1.0, dtype=np.float64)\n"
            "d = np.arange(4, dtype=np.int64)\n"
            "e = np.zeros_like(a)\n"               # dtype-preserving
        ),
    })
    assert findings == []


def test_dtype001_scoped_to_policy_modules(tmp_path):
    # eval/ and tasks/ are outside the precision policy: no finding.
    findings = lint_tree(tmp_path, {
        "src/repro/eval/foo.py": "import numpy as np\nx = np.zeros(4)\n",
        "src/repro/tasks/foo.py": "import numpy as np\nx = np.ones(4)\n",
    })
    assert findings == []


# ---------------------------------------------------------------------------
# SEAM001
# ---------------------------------------------------------------------------


def test_seam001_flags_private_column_reach(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/core/foo.py": (
            "def f(graph):\n"
            "    a = graph._src[0]\n"
            "    b = graph._store.column('dst')\n"
        ),
    })
    assert rule_ids(findings) == ["SEAM001", "SEAM001"]
    assert [finding.line for finding in findings] == [2, 3]


def test_seam001_allows_own_private_attrs_and_seam_modules(tmp_path):
    findings = lint_tree(tmp_path, {
        # A class's own ``self._store`` (the walk cache does this).
        "src/repro/core/cache.py": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._store = {}\n"
            "    def get(self, k):\n"
            "        return self._store[k]\n"
        ),
        # Inside graph/ the columns are the implementation: allowed.
        "src/repro/graph/foo.py": "def f(g):\n    return g._src.size\n",
        "src/repro/storage/foo.py": "def f(s):\n    return s._time\n",
        # Public accessors are always fine.
        "src/repro/tasks/foo.py": "def f(g):\n    return g.src, g.time\n",
    })
    assert findings == []


# ---------------------------------------------------------------------------
# DUR001
# ---------------------------------------------------------------------------

UNSYNCED_PUBLISH = (
    "import os\n"
    "def publish(tmp, path):\n"
    "    with open(tmp, 'w') as fh:\n"
    "        fh.write('x')\n"
    "        fh.flush()\n"
    "    os.replace(tmp, path)\n"
)

SYNCED_PUBLISH = (
    "import os\n"
    "def publish(tmp, path):\n"
    "    with open(tmp, 'w') as fh:\n"
    "        fh.write('x')\n"
    "        fh.flush()\n"
    "        os.fsync(fh.fileno())\n"
    "    os.replace(tmp, path)\n"
)


def test_dur001_flags_unsynced_replace(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/utils/checkpoint.py": UNSYNCED_PUBLISH,
    })
    assert rule_ids(findings) == ["DUR001"]
    assert findings[0].line == 6


def test_dur001_clean_with_fsync_before_replace(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/utils/checkpoint.py": SYNCED_PUBLISH,
        # Helper whose name carries fsync counts as routing through it.
        "src/repro/storage/store.py": (
            "import os\n"
            "def _fsync_file(fh):\n"
            "    os.fsync(fh.fileno())\n"
            "def publish(tmp, path, fh):\n"
            "    _fsync_file(fh)\n"
            "    os.replace(tmp, path)\n"
        ),
    })
    assert findings == []


def test_dur001_fsync_after_replace_still_flags(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/storage/store.py": (
            "import os\n"
            "def publish(tmp, path):\n"
            "    os.replace(tmp, path)\n"
            "    os.fsync(0)\n"
        ),
    })
    assert rule_ids(findings) == ["DUR001"]
    assert findings[0].line == 3


def test_dur001_scoped_to_durability_files(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/datasets/foo.py": UNSYNCED_PUBLISH,
    })
    assert findings == []


# ---------------------------------------------------------------------------
# API001
# ---------------------------------------------------------------------------


def test_api001_flags_undocumented_export(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/mod.py": (
            "__all__ = ['f', 'C']\n"
            "def f():\n    return 1\n"
            "class C:\n    pass\n"
        ),
    })
    assert rule_ids(findings) == ["API001", "API001"]
    assert {finding.line for finding in findings} == {2, 4}


def test_api001_clean_when_documented_or_unexported(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/mod.py": (
            "__all__ = ['f']\n"
            "def f():\n    '''Documented.'''\n    return 1\n"
            "def _helper():\n    return 2\n"  # not exported: no docstring needed
        ),
    })
    assert findings == []


# ---------------------------------------------------------------------------
# PAR001
# ---------------------------------------------------------------------------


def test_par001_flags_writable_keyword_outside_parallel(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/core/foo.py": (
            "def f(pack):\n"
            "    return pack.array('params', writable=True)\n"
        ),
    })
    assert rule_ids(findings) == ["PAR001"]
    assert findings[0].line == 2
    assert "writable=True" in findings[0].message


def test_par001_flags_flag_flip_and_setflags(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/core/foo.py": (
            "def f(view, flag):\n"
            "    view.flags.writeable = True\n"
            "    view.setflags(write=True)\n"
            "    view.flags.writeable = flag\n"  # dynamic: still a flip
        ),
    })
    assert rule_ids(findings) == ["PAR001", "PAR001", "PAR001"]
    assert [finding.line for finding in findings] == [2, 3, 4]


def test_par001_allows_parallel_package_and_freezing(tmp_path):
    findings = lint_tree(tmp_path, {
        # The worker-pool modules are the sanctioned mutation sites.
        "src/repro/parallel/foo.py": (
            "def f(pack):\n"
            "    return pack.array('w_in', writable=True)\n"
        ),
        # Freezing a view (and asking for the frozen default) is fine
        # anywhere — that's the contract, not a violation of it.
        "src/repro/storage/foo.py": (
            "def f(view, pack):\n"
            "    view.flags.writeable = False\n"
            "    view.setflags(write=False)\n"
            "    return pack.array('params', writable=False)\n"
        ),
    })
    assert findings == []


def test_par001_scoped_to_src(tmp_path):
    findings = lint_tree(tmp_path, {
        "tests/test_foo.py": (
            "def test_x(pack):\n"
            "    assert pack.array('params', writable=True) is not None\n"
        ),
    })
    assert findings == []


# ---------------------------------------------------------------------------
# TEST001
# ---------------------------------------------------------------------------


def test_test001_flags_unregistered_marker(tmp_path):
    findings = lint_tree(tmp_path, {
        "pytest.ini": PYTEST_INI,
        "tests/test_foo.py": (
            "import pytest\n"
            "@pytest.mark.slowish\n"
            "def test_x():\n    pass\n"
        ),
    }, paths=[tmp_path / "tests"])
    assert rule_ids(findings) == ["TEST001"]
    assert "slowish" in findings[0].message


def test_test001_clean_on_registered_and_builtin_marks(tmp_path):
    findings = lint_tree(tmp_path, {
        "pytest.ini": PYTEST_INI,
        "tests/test_foo.py": (
            "import pytest\n"
            "@pytest.mark.slow\n"
            "@pytest.mark.parametrize('x', [1])\n"
            "def test_x(x):\n    pass\n"
        ),
    }, paths=[tmp_path / "tests"])
    assert findings == []


def test_test001_silent_without_pytest_ini(tmp_path):
    findings = lint_tree(tmp_path, {
        "tests/test_foo.py": (
            "import pytest\n"
            "@pytest.mark.anything\n"
            "def test_x():\n    pass\n"
        ),
    }, paths=[tmp_path / "tests"])
    assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


def test_inline_suppression_silences_one_line(tmp_path):
    engine_files = {
        "src/repro/foo.py": (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RNG001\n"
            "y = np.random.rand(3)\n"
        ),
    }
    for rel, content in engine_files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(content)
    engine = Engine(tmp_path)
    findings = engine.check_paths([tmp_path])
    assert rule_ids(findings) == ["RNG001"]
    assert findings[0].line == 3
    assert engine.suppressed_count == 1


def test_file_level_suppression_and_disable_all(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/a.py": (
            "# reprolint: disable-file=RNG001\n"
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
        ),
        "src/repro/nn/b.py": (
            "import numpy as np\n"
            "x = np.zeros(3)  # reprolint: disable=all\n"
        ),
    })
    assert findings == []


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/foo.py": "import numpy as np\nx = np.random.rand(3)\n",
    })
    assert len(findings) == 1
    baseline_path = tmp_path / "baseline.json"
    write_baseline(findings, baseline_path)
    reloaded = load_baseline(baseline_path)
    assert [finding.key for finding in reloaded] == [
        finding.key for finding in findings
    ]
    fresh, matched = split_by_baseline(findings, reloaded)
    assert fresh == [] and len(matched) == 1


def test_baseline_matching_ignores_lines_but_counts_duplicates(tmp_path):
    one = lint_tree(tmp_path, {
        "src/repro/foo.py": "import numpy as np\nx = np.random.rand(3)\n",
    })
    # The same violation moved down a line still matches the baseline...
    two = lint_tree(tmp_path, {
        "src/repro/foo.py": (
            "import numpy as np\n\n\nx = np.random.rand(3)\n"
        ),
    })
    fresh, matched = split_by_baseline(two, one)
    assert fresh == [] and len(matched) == 1
    # ...but a *second* identical violation exceeds the baseline budget.
    doubled = lint_tree(tmp_path, {
        "src/repro/foo.py": (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "y = np.random.rand(3)\n"
        ),
    })
    fresh, matched = split_by_baseline(doubled, one)
    assert len(fresh) == 1 and len(matched) == 1


def test_shipped_baseline_is_empty():
    shipped = load_baseline(REPO_ROOT / "tools" / "reprolint" / "baseline.json")
    assert shipped == []


# ---------------------------------------------------------------------------
# self-check and acceptance mutations over the live tree
# ---------------------------------------------------------------------------


def test_live_tree_is_clean():
    engine = Engine(REPO_ROOT)
    findings = engine.check_paths(["src", "tests"])
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in findings
    )
    assert engine.files_checked > 100  # the walk really covered the tree


def _copy_into(tmp_path: Path, rel: str, content: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(content)
    return target


def test_deleting_checkpoint_fsync_is_caught(tmp_path):
    rel = "src/repro/utils/checkpoint.py"
    source = (REPO_ROOT / rel).read_text()
    assert "os.fsync(fh.fileno())" in source
    mutated = source.replace("os.fsync(fh.fileno())", "pass", 1)
    _copy_into(tmp_path, rel, mutated)
    findings = Engine(tmp_path).check_paths([tmp_path / "src"])
    assert rule_ids(findings) == ["DUR001"]
    expected_line = next(
        i for i, text in enumerate(mutated.splitlines(), start=1)
        if "os.replace(tmp, path)" in text
    )
    assert findings[0].line == expected_line


def test_adding_global_rng_to_layers_is_caught(tmp_path):
    rel = "src/repro/nn/layers.py"
    mutated = (REPO_ROOT / rel).read_text() + "\nBAD_DRAW = np.random.rand(3)\n"
    _copy_into(tmp_path, rel, mutated)
    findings = Engine(tmp_path).check_paths([tmp_path / "src"])
    assert rule_ids(findings) == ["RNG001"]
    expected_line = next(
        i for i, text in enumerate(mutated.splitlines(), start=1)
        if "BAD_DRAW" in text
    )
    assert findings[0].line == expected_line


def test_unfreezing_a_shared_view_in_core_is_caught(tmp_path):
    rel = "src/repro/core/model.py"
    mutated = (REPO_ROOT / rel).read_text() + (
        "\ndef _leak(pack):\n    return pack.array('params', writable=True)\n"
    )
    _copy_into(tmp_path, rel, mutated)
    findings = Engine(tmp_path).check_paths([tmp_path / "src"])
    assert rule_ids(findings) == ["PAR001"]
    expected_line = next(
        i for i, text in enumerate(mutated.splitlines(), start=1)
        if "writable=True" in text
    )
    assert findings[0].line == expected_line


def test_unparseable_file_reports_parse_finding(tmp_path):
    findings = lint_tree(tmp_path, {
        "src/repro/broken.py": "def f(:\n",
    })
    assert rule_ids(findings) == ["E000"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *argv],
        cwd=cwd, capture_output=True, text=True,
    )


def test_cli_exit_codes_and_text_format(tmp_path):
    _copy_into(
        tmp_path, "src/repro/foo.py",
        "import numpy as np\nx = np.random.rand(3)\n",
    )
    dirty = run_cli("--root", str(tmp_path), "--no-baseline", "src")
    assert dirty.returncode == 1
    assert "src/repro/foo.py:2: RNG001" in dirty.stdout

    (tmp_path / "src/repro/foo.py").write_text(
        "import numpy as np\nrng = np.random.default_rng(7)\n"
    )
    clean = run_cli("--root", str(tmp_path), "--no-baseline", "src")
    assert clean.returncode == 0
    assert "OK" in clean.stdout


def test_cli_json_report_and_output_file(tmp_path):
    _copy_into(
        tmp_path, "src/repro/foo.py",
        "import numpy as np\nx = np.random.rand(3)\n",
    )
    out = tmp_path / "report" / "lint.json"
    proc = run_cli(
        "--root", str(tmp_path), "--no-baseline",
        "--format", "json", "--output", str(out), "src",
    )
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["version"] == 1
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["by_rule"] == {"RNG001": 1}
    assert payload["findings"][0]["rule"] == "RNG001"
    assert payload["findings"][0]["line"] == 2


def test_cli_write_baseline_then_pass(tmp_path):
    _copy_into(
        tmp_path, "src/repro/foo.py",
        "import numpy as np\nx = np.random.rand(3)\n",
    )
    baseline = tmp_path / "baseline.json"
    wrote = run_cli(
        "--root", str(tmp_path), "--baseline", str(baseline),
        "--write-baseline", "src",
    )
    assert wrote.returncode == 0 and baseline.exists()
    gated = run_cli(
        "--root", str(tmp_path), "--baseline", str(baseline), "src"
    )
    assert gated.returncode == 0
    assert "1 baselined" in gated.stdout


def test_cli_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ALL_RULE_IDS:
        assert rule_id in proc.stdout


def test_cli_default_invocation_is_clean_on_the_repo():
    # The acceptance command: `python -m tools.reprolint src tests` exits 0.
    proc = run_cli("src", "tests")
    assert proc.returncode == 0, proc.stdout + proc.stderr
