"""Integration tests: every method through both downstream tasks."""

import numpy as np
import pytest

from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.core import EHNA
from repro.datasets import load, temporal_sbm
from repro.eval import (
    evaluate_operator,
    prepare_link_prediction,
    reconstruction_precision,
)


@pytest.fixture(scope="module")
def graph():
    return temporal_sbm(num_nodes=40, num_edges=300, p_in=0.9, seed=13)


FACTORIES = {
    "Node2Vec": lambda: Node2Vec(dim=8, num_walks=3, walk_length=10, epochs=1, seed=0),
    "CTDNE": lambda: CTDNE(dim=8, walks_per_node=3, walk_length=10, epochs=1, seed=0),
    "LINE": lambda: LINE(dim=8, samples_per_edge=10, seed=0),
    "HTNE": lambda: HTNE(dim=8, epochs=3, seed=0),
    "EHNA": lambda: EHNA(dim=8, epochs=1, batch_size=32, num_walks=2,
                         walk_length=3, num_negatives=2, seed=0),
}


@pytest.mark.parametrize("name", list(FACTORIES))
def test_reconstruction_pipeline(name, graph):
    model = FACTORIES[name]().fit(graph)
    out = reconstruction_precision(
        model.embeddings(), graph, ps=[20, 100], rng=np.random.default_rng(0)
    )
    assert 0.0 <= out[100] <= 1.0
    assert out[20] >= 0.0


@pytest.mark.parametrize("name", list(FACTORIES))
def test_link_prediction_pipeline(name, graph):
    data = prepare_link_prediction(graph, rng=np.random.default_rng(0))
    model = FACTORIES[name]().fit(data.train_graph)
    out = evaluate_operator(
        model.embeddings(), data, "Weighted-L2", repeats=2,
        rng=np.random.default_rng(1),
    )
    assert set(out) == {"auc", "f1", "precision", "recall"}
    assert all(0.0 <= v <= 1.0 for v in out.values())


def test_trained_embeddings_beat_untrained_on_reconstruction(graph):
    """Core sanity: a trained SGNS baseline must out-reconstruct noise."""
    model = Node2Vec(dim=16, num_walks=6, walk_length=15, epochs=3, seed=0)
    trained = model.fit(graph).embeddings()
    noise = np.random.default_rng(0).normal(size=trained.shape)
    p_trained = reconstruction_precision(trained, graph, ps=[100])[100]
    p_noise = reconstruction_precision(noise, graph, ps=[100])[100]
    assert p_trained > p_noise


def test_bipartite_dataset_through_ehna():
    """EHNA must handle bipartite graphs (the Tmall/Yelp cases)."""
    g = load("tmall", scale=0.08, seed=0)
    model = EHNA(dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
                 num_negatives=2, seed=0).fit(g)
    assert np.all(np.isfinite(model.embeddings()))


def test_dblp_dataset_through_full_protocol():
    g = load("dblp", scale=0.15, seed=0)
    data = prepare_link_prediction(g, rng=np.random.default_rng(0))
    model = CTDNE(dim=8, walks_per_node=3, walk_length=10, epochs=1, seed=0)
    model.fit(data.train_graph)
    out = evaluate_operator(model.embeddings(), data, "Hadamard", repeats=2,
                            rng=np.random.default_rng(2))
    assert 0.0 <= out["auc"] <= 1.0
