"""Tests for the table/figure experiment drivers (tiny scales)."""

import numpy as np
import pytest

from repro.baselines import LINE, Node2Vec
from repro.core import EHNA
from repro.experiments import (
    format_fig4,
    format_fig5,
    format_link_table,
    format_table1,
    format_table7,
    format_table8,
    run_fig4,
    run_fig5,
    run_link_table,
    run_table1,
    run_table7,
    run_table8,
)

TINY_METHODS = {
    "LINE": lambda: LINE(dim=8, samples_per_edge=5, seed=0),
    "Node2Vec": lambda: Node2Vec(dim=8, num_walks=2, walk_length=8, epochs=1, seed=0),
    "EHNA": lambda: EHNA(dim=8, epochs=1, batch_size=32, num_walks=2,
                         walk_length=3, num_negatives=2, seed=0),
}


class TestTable1:
    def test_rows_for_all_datasets(self):
        rows = run_table1(scale=0.05, seed=0)
        assert set(rows) == {"digg", "yelp", "tmall", "dblp"}
        for row in rows.values():
            assert row["# nodes"] > 0
            assert row["# temporal edges"] > 0

    def test_format(self):
        text = format_table1(run_table1(scale=0.05, seed=0))
        assert "# nodes" in text and "dblp" in text


class TestFig4:
    def test_structure(self):
        out = run_fig4(datasets=("dblp",), scale=0.1, ps=(10, 50),
                       methods=TINY_METHODS, seed=0, repeats=1)
        assert set(out) == {"dblp"}
        assert set(out["dblp"]) == set(TINY_METHODS)
        for curve in out["dblp"].values():
            assert set(curve) == {10, 50}
            assert all(0 <= v <= 1 for v in curve.values())

    def test_format(self):
        out = run_fig4(datasets=("dblp",), scale=0.1, ps=(10,),
                       methods=TINY_METHODS, seed=0, repeats=1)
        text = format_fig4(out)
        assert "Fig.4" in text and "P=10" in text


class TestLinkTables:
    def test_structure_and_error_reduction(self):
        table = run_link_table("digg", scale=0.12, methods=TINY_METHODS,
                               seed=0, repeats=2)
        assert set(table) == {"Mean", "Hadamard", "Weighted-L1", "Weighted-L2"}
        for metrics in table.values():
            for metric in ("auc", "f1", "precision", "recall"):
                row = metrics[metric]
                assert "EHNA" in row
                assert "Error Reduction" in row

    def test_format(self):
        table = run_link_table("digg", scale=0.12, methods=TINY_METHODS,
                               seed=0, repeats=1)
        text = format_link_table("digg", table)
        assert "Table III" in text


class TestTable7:
    def test_all_variants_all_datasets(self):
        out = run_table7(datasets=("dblp",), scale=0.12, dim=8, epochs=1,
                         seed=0, repeats=1)
        assert set(out) == {"EHNA", "EHNA-NA", "EHNA-RW", "EHNA-SL"}
        for row in out.values():
            assert 0.0 <= row["dblp"] <= 1.0

    def test_format(self):
        out = run_table7(datasets=("dblp",), scale=0.12, dim=8, epochs=1,
                         seed=0, repeats=1)
        assert "Table VII" in format_table7(out)


class TestTable8:
    def test_timings_positive(self):
        out = run_table8(datasets=("dblp",), scale=0.1, dim=8, seed=0)
        assert set(out) == {"Node2Vec", "CTDNE", "LINE", "HTNE", "EHNA"}
        for row in out.values():
            assert row["dblp"] > 0

    def test_format(self):
        out = run_table8(datasets=("dblp",), scale=0.1, dim=8, seed=0)
        assert "Table VIII" in format_table8(out)


class TestFig5:
    def test_panels(self):
        grids = {"margin": [1.0, 5.0], "walk_length": [2],
                 "log2_p": [0], "log2_q": [0]}
        out = run_fig5(scale=0.1, dim=8, epochs=1, seed=0, grids=grids)
        assert set(out) == {"margin", "walk_length", "log2_p", "log2_q"}
        assert set(out["margin"]) == {1.0, 5.0}
        for curve in out.values():
            for f1 in curve.values():
                assert 0.0 <= f1 <= 1.0

    def test_format(self):
        grids = {"margin": [5.0], "walk_length": [2], "log2_p": [0], "log2_q": [0]}
        out = run_fig5(scale=0.1, dim=8, epochs=1, seed=0, grids=grids)
        assert "Fig.5" in format_fig5(out)
