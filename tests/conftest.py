"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import temporal_sbm, tmall_like
from repro.graph import TemporalGraph


@pytest.fixture(autouse=True)
def strict_float_errors():
    """Run every test with floating-point faults raised, not flagged.

    Division by zero, overflow and invalid operations (the faults a silent
    ``float32`` narrowing could introduce) raise ``FloatingPointError``
    instead of passing NaN/inf downstream.  **Allowlisted exception:**
    underflow stays ignored — gradual underflow to zero is the designed
    behavior of ``exp(-large)`` in the decay kernels, sigmoids and masked
    softmaxes (``exp(-1e9)`` on padded positions), and is benign in both
    precisions.  Code with *intentional* non-finite arithmetic declares it
    locally with ``np.errstate`` (e.g. the baselines' clipped-log losses),
    which overrides this outer context.
    """
    with np.errstate(divide="raise", over="raise", invalid="raise", under="ignore"):
        yield


@pytest.fixture
def tiny_graph() -> TemporalGraph:
    """The paper's Figure 1 co-author example (nodes 1-8 -> ids 0-7).

    Edges annotated with years; node 0 is the ego (paper's node 1).
    """
    edges = [
        (0, 1, 2011.0),  # 1-2
        (0, 2, 2011.1),  # 1-3 (slightly later for deterministic order)
        (1, 2, 2012.0),  # 2-3
        (0, 3, 2013.0),  # 1-4
        (3, 4, 2014.0),  # 4-5
        (0, 5, 2015.0),  # 1-6
        (4, 5, 2016.0),  # 5-6
        (4, 7, 2016.1),  # 5-8
        (6, 7, 2017.0),  # 7-8
        (5, 6, 2017.1),  # 6-7
        (0, 6, 2018.0),  # 1-7
    ]
    src, dst, t = zip(*edges)
    return TemporalGraph.from_edges(
        np.array(src), np.array(dst), np.array(t)
    )


@pytest.fixture
def path_graph() -> TemporalGraph:
    """Path 0-1-2-3-4 with strictly increasing times 1..4."""
    return TemporalGraph.from_edges(
        np.array([0, 1, 2, 3]),
        np.array([1, 2, 3, 4]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )


@pytest.fixture
def sbm_graph() -> TemporalGraph:
    """Small community-structured temporal graph."""
    return temporal_sbm(num_nodes=40, num_edges=240, num_communities=4, seed=7)


@pytest.fixture
def bipartite_graph() -> TemporalGraph:
    """Small bipartite purchase graph (Tmall-like)."""
    return tmall_like(num_users=25, num_items=12, num_purchases=200, seed=3)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for stochastic tests."""
    return np.random.default_rng(12345)
