"""EHNAConfig's parallelism knobs validate and default to the legacy path."""

from __future__ import annotations

import pytest

from repro.core import EHNAConfig


class TestParallelConfig:
    def test_defaults_keep_the_legacy_path(self):
        cfg = EHNAConfig()
        assert cfg.num_workers == 1
        assert cfg.parallel == "sync"
        assert cfg.parallel_shards == 8
        assert cfg.candidate_cap == 0
        cfg.validate()

    @pytest.mark.parametrize("mode", ["sync", "hogwild"])
    def test_known_modes_validate(self, mode):
        EHNAConfig(parallel=mode, num_workers=2).validate()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            EHNAConfig(parallel="async").validate()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            EHNAConfig(num_workers=-1).validate()
        with pytest.raises(ValueError):
            EHNAConfig(candidate_cap=-1).validate()
        with pytest.raises(ValueError):
            EHNAConfig(parallel_shards=0).validate()
