"""ParallelWalkEngine: sharding math, lifecycle, worker-count invariance.

The engine's determinism contract is that the *shard layout* — not the
worker count — is the sampling scheme: shard ``i`` always draws from
``SeedSequence(entropy=(step_seed, i))``, so the reassembled batch is
bitwise-identical whether shards run inline (``num_workers=0``) or on a
spawn pool.  The pool tests carry the ``parallel`` marker (they start real
processes); the sharding/lifecycle units run in plain tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.temporal_graph import TemporalGraph
from repro.parallel import ParallelWalkEngine, shard_ranges, shard_rng, shard_seed_seq


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    n, m = 60, 400
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    return TemporalGraph.from_edges(
        src[keep], dst[keep], rng.uniform(0.0, 10.0, int(keep.sum()))
    )


def assert_batches_equal(a, b):
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.valid, b.valid)
    np.testing.assert_array_equal(a.time_sums, b.time_sums)


class TestShardingPrimitives:
    def test_shard_ranges_tile_the_total(self):
        ranges = shard_ranges(10, 4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]
        assert shard_ranges(3, 8) == [(0, 3)]

    def test_shard_rng_substreams_are_stable_and_distinct(self):
        a = shard_rng(123, 0).integers(0, 2**31, size=8)
        b = shard_rng(123, 0).integers(0, 2**31, size=8)
        c = shard_rng(123, 1).integers(0, 2**31, size=8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)
        assert shard_seed_seq(123, 1).entropy == (123, 1)


class TestLifecycle:
    def test_converts_and_owns_a_memory_graph(self, graph):
        engine = ParallelWalkEngine(graph, num_workers=0, shard_size=16)
        shared = engine.graph
        assert shared.storage_backend == "shared"
        assert shared is not graph
        assert shared.num_edges == graph.num_edges
        engine.close()
        assert shared.storage.closed
        # The source graph is untouched by the engine's cleanup.
        assert graph.num_edges > 0 and graph.src.size == graph.num_edges

    def test_borrows_an_already_shared_graph(self, graph):
        shared = graph.to_shared()
        try:
            with ParallelWalkEngine(shared, num_workers=0) as engine:
                assert engine.graph is shared
            assert not shared.storage.closed  # borrowed, not owned
        finally:
            shared.storage.close()

    def test_validation(self, graph):
        with pytest.raises(ValueError):
            ParallelWalkEngine(graph, num_workers=-1)
        with pytest.raises(ValueError):
            ParallelWalkEngine(graph, shard_size=0)
        with ParallelWalkEngine(graph, num_workers=0) as engine:
            with pytest.raises(ValueError):
                engine.temporal_walk_batch(np.array([], dtype=np.int64), [], 1, 4, seed=0)
            with pytest.raises(ValueError, match="anchors shape"):
                engine.temporal_walk_batch([0, 1], [5.0], 1, 4, seed=0)

    def test_same_seed_same_batch_inline(self, graph):
        nodes = np.arange(graph.num_nodes)
        anchors = np.full(nodes.size, 11.0)
        with ParallelWalkEngine(graph, num_workers=0, shard_size=16) as engine:
            one = engine.temporal_walk_batch(nodes, anchors, 2, 5, seed=7)
            two = engine.temporal_walk_batch(nodes, anchors, 2, 5, seed=7)
            assert_batches_equal(one, two)

    def test_shard_size_is_part_of_the_scheme(self, graph):
        nodes = np.arange(graph.num_nodes)
        anchors = np.full(nodes.size, 11.0)
        with ParallelWalkEngine(graph, num_workers=0, shard_size=16) as small:
            a = small.temporal_walk_batch(nodes, anchors, 2, 5, seed=7)
        with ParallelWalkEngine(graph, num_workers=0, shard_size=64) as large:
            b = large.temporal_walk_batch(nodes, anchors, 2, 5, seed=7)
        # Different layout, different substreams: a distinct (but equally
        # deterministic) sample.
        assert not (
            np.array_equal(a.ids, b.ids) and np.array_equal(a.valid, b.valid)
        )


@pytest.mark.parallel
class TestWorkerCountInvariance:
    def test_pool_batches_bitwise_equal_to_inline(self, graph):
        nodes = np.arange(graph.num_nodes)
        anchors = np.full(nodes.size, 9.5)
        with ParallelWalkEngine(graph, num_workers=0, shard_size=16) as inline:
            t0 = inline.temporal_walk_batch(nodes, anchors, 3, 5, seed=11)
            u0 = inline.uniform_walk_batch(nodes, 3, 5, seed=11)
        with ParallelWalkEngine(graph, num_workers=2, shard_size=16) as pooled:
            t2 = pooled.temporal_walk_batch(nodes, anchors, 3, 5, seed=11)
            u2 = pooled.uniform_walk_batch(nodes, 3, 5, seed=11)
        assert_batches_equal(t0, t2)
        assert_batches_equal(u0, u2)
