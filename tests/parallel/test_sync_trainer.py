"""Sync data-parallel EHNA training: worker-count-invariant, bitwise.

``num_workers=0`` runs the sharded estimator inline — the bitwise
comparator for the pooled runs.  The contract: for a fixed seed and fixed
``parallel_shards``, the loss trajectory AND the final embeddings are
bitwise-identical for every worker count, in both precisions.  The legacy
single-process path (``num_workers=1``, the default) is its own estimator
— per-shard BatchNorm statistics and RNG substreams make the sharded math
intentionally different — and must stay untouched by this feature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EHNA
from repro.graph.temporal_graph import TemporalGraph

CFG = dict(
    dim=8,
    epochs=1,
    batch_size=32,
    num_walks=2,
    walk_length=4,
    parallel_shards=4,
)


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    n, m = 40, 220
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    return TemporalGraph.from_edges(
        src[keep], dst[keep], rng.uniform(0.0, 10.0, int(keep.sum()))
    )


class TestInlineShardedPath:
    def test_inline_is_deterministic(self, graph):
        a = EHNA(seed=7, num_workers=0, **CFG).fit(graph)
        b = EHNA(seed=7, num_workers=0, **CFG).fit(graph)
        assert a.loss_history == b.loss_history
        np.testing.assert_array_equal(a.embeddings(), b.embeddings())

    def test_sharded_estimator_differs_from_legacy(self, graph):
        # Same seed, different estimator: the sharded path uses per-shard
        # BN statistics and RNG substreams, so it must NOT be compared to
        # the legacy trajectory — only to itself across worker counts.
        sharded = EHNA(seed=7, num_workers=0, **CFG).fit(graph)
        legacy = EHNA(seed=7, num_workers=1, **CFG).fit(graph)
        assert sharded.loss_history != legacy.loss_history

    def test_shard_count_is_part_of_the_scheme(self, graph):
        cfg = dict(CFG, parallel_shards=2)
        two = EHNA(seed=7, num_workers=0, **cfg).fit(graph)
        four = EHNA(seed=7, num_workers=0, **CFG).fit(graph)
        assert two.loss_history != four.loss_history

    def test_trained_model_serves_the_full_surface(self, graph):
        model = EHNA(seed=7, num_workers=0, **CFG).fit(graph)
        emb = model.embeddings()
        assert emb.shape == (graph.num_nodes, CFG["dim"])
        assert np.isfinite(emb).all()
        out = model.encode(np.arange(4), at=np.full(4, 5.0))
        assert out.shape == (4, CFG["dim"])
        assert np.isfinite(out).all()

    def test_hogwild_mode_is_rejected_for_ehna(self, graph):
        with pytest.raises(ValueError, match="hogwild"):
            EHNA(seed=7, num_workers=0, parallel="hogwild", **CFG).fit(graph)


@pytest.mark.parallel
class TestWorkerCountInvariance:
    @pytest.mark.parametrize("precision", ["float64", "float32"])
    def test_pool_bitwise_equal_to_inline(self, graph, precision):
        inline = EHNA(seed=7, num_workers=0, precision=precision, **CFG).fit(graph)
        pooled = EHNA(seed=7, num_workers=2, precision=precision, **CFG).fit(graph)
        assert inline.loss_history == pooled.loss_history
        emb_inline = inline.embeddings()
        emb_pooled = pooled.embeddings()
        assert emb_inline.dtype == emb_pooled.dtype
        np.testing.assert_array_equal(emb_inline, emb_pooled)
