"""Hogwild SGNS: lock-free workers learn the same structure, statistically.

Hogwild training is *not* bitwise-reproducible (workers race on the shared
tables by design), so the contract is statistical: the shared-memory run
must learn embeddings that separate real edges from non-edges about as
well as the serial run, its losses must be finite and improving, and the
weight tables must come back re-privatized (writable, segment released).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Node2Vec
from repro.eval.metrics import auc_score
from repro.graph.temporal_graph import TemporalGraph


@pytest.fixture
def graph():
    # Two planted communities so link structure is actually learnable.
    rng = np.random.default_rng(1)
    n, m = 60, 600
    half = n // 2
    src = np.empty(m, dtype=np.int64)
    dst = np.empty(m, dtype=np.int64)
    within = rng.random(m) < 0.9
    for i in range(m):
        if within[i]:
            block = rng.integers(0, 2)
            src[i], dst[i] = rng.integers(0, half, 2) + block * half
        else:
            src[i] = rng.integers(0, half)
            dst[i] = rng.integers(half, n)
    keep = src != dst
    return TemporalGraph.from_edges(
        src[keep], dst[keep], rng.uniform(0.0, 10.0, int(keep.sum()))
    )


def edge_auc(graph: TemporalGraph, emb: np.ndarray, seed: int = 5) -> float:
    """AUC of dot-product scores: real edges vs uniformly sampled non-edges."""
    rng = np.random.default_rng(seed)
    pos = np.stack([graph.src, graph.dst], axis=1)
    neg = rng.integers(0, graph.num_nodes, size=(pos.shape[0] * 2, 2))
    neg = neg[~graph.has_edges(neg[:, 0], neg[:, 1]) & (neg[:, 0] != neg[:, 1])]
    neg = neg[: pos.shape[0]]
    pairs = np.concatenate([pos, neg])
    scores = np.einsum("ij,ij->i", emb[pairs[:, 0]], emb[pairs[:, 1]])
    labels = np.concatenate([np.ones(pos.shape[0]), np.zeros(neg.shape[0])])
    return auc_score(labels, scores)


@pytest.mark.parallel
class TestHogwild:
    def test_hogwild_matches_serial_statistically(self, graph):
        serial = Node2Vec(dim=8, num_walks=3, walk_length=10, epochs=2, seed=3)
        serial.fit(graph)
        hogwild = Node2Vec(
            dim=8, num_walks=3, walk_length=10, epochs=2, seed=3, num_workers=2
        )
        hogwild.fit(graph)

        emb = hogwild.embeddings()
        assert emb.shape == (graph.num_nodes, 8)
        assert np.isfinite(emb).all()
        assert hogwild.loss_history and all(np.isfinite(hogwild.loss_history))
        # The tables came back private and writable (the segment is gone).
        assert hogwild._model.w_in.flags.writeable
        assert hogwild._model.w_out.flags.writeable

        auc_serial = edge_auc(graph, serial.embeddings())
        auc_hogwild = edge_auc(graph, emb)
        assert auc_serial > 0.65  # the planted structure is learnable
        assert auc_hogwild > 0.65
        assert abs(auc_serial - auc_hogwild) < 0.12

    def test_hogwild_requires_two_workers(self, graph):
        from repro.parallel import hogwild_train_corpus

        model = Node2Vec(dim=8, num_walks=2, walk_length=6, seed=3)
        with pytest.raises(ValueError, match="num_workers"):
            hogwild_train_corpus(
                model._new_model(graph), [[0, 1, 2]], num_workers=1
            )
