"""ResultTable structure, renderers (golden checks) and error reduction."""

import json

import pytest

from repro.eval.metrics import error_reduction
from repro.tasks import Cell, RESULT_SCHEMA, ResultTable


@pytest.fixture
def table():
    return ResultTable(
        [
            Cell(
                dataset="digg",
                method="LINE",
                task="link_prediction",
                metrics={"auc": 0.75, "f1": 0.5},
                fit_seconds=1.5,
                eval_seconds=0.2,
                fit_cached=False,
            ),
            Cell(
                dataset="digg",
                method="EHNA",
                task="link_prediction",
                metrics={"auc": 0.9, "f1": 0.625},
                fit_seconds=2.0,
                eval_seconds=0.1,
                fit_cached=True,
            ),
        ]
    )


class TestAxes:
    def test_ordered_axes(self, table):
        assert table.datasets() == ["digg"]
        assert table.methods() == ["LINE", "EHNA"]
        assert table.tasks() == ["link_prediction"]
        assert table.metric_names("digg", "link_prediction") == ["auc", "f1"]

    def test_row_and_cell(self, table):
        assert table.row("digg", "link_prediction", "auc") == {
            "LINE": 0.75,
            "EHNA": 0.9,
        }
        assert table.cell("digg", "EHNA", "link_prediction").fit_cached
        with pytest.raises(KeyError):
            table.cell("digg", "HTNE", "link_prediction")

    def test_num_fits(self, table):
        assert table.num_fits() == 1


class TestErrorReduction:
    def test_uniform_formula(self, table):
        assert table.reduction("digg", "link_prediction", "auc") == pytest.approx(
            error_reduction(0.75, 0.9)
        )
        assert table.reduction("digg", "link_prediction", "f1") == pytest.approx(
            error_reduction(0.5, 0.625)
        )

    def test_missing_target_is_none(self, table):
        assert table.reduction("digg", "link_prediction", "auc", target="HTNE") is None


GOLDEN_MARKDOWN = """\
### digg · link_prediction

| metric | LINE | EHNA | err.red. |
|---|---|---|---|
| auc | 0.7500 | 0.9000 | +60.0% |
| f1 | 0.5000 | 0.6250 | +25.0% |

### timings

| dataset | task | method | fit (s) | cached | eval (s) |
|---|---|---|---|---|---|
| digg | link_prediction | LINE | 1.500 | no | 0.200 |
| digg | link_prediction | EHNA | 2.000 | yes | 0.100 |
"""


class TestRenderers:
    def test_markdown_golden(self, table):
        assert table.to_markdown() == GOLDEN_MARKDOWN

    def test_markdown_without_timings(self, table):
        text = table.to_markdown(timings=False)
        assert "### timings" not in text
        assert "| auc | 0.7500 | 0.9000 | +60.0% |" in text

    def test_json_golden_roundtrip(self, table):
        text = table.to_json()
        payload = json.loads(text)
        assert payload["schema"] == RESULT_SCHEMA
        assert payload["cells"][0] == {
            "dataset": "digg",
            "method": "LINE",
            "task": "link_prediction",
            "metrics": {"auc": 0.75, "f1": 0.5},
            "fit_seconds": 1.5,
            "eval_seconds": 0.2,
            "fit_cached": False,
        }
        restored = ResultTable.from_json(text)
        assert restored.to_json() == text

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            ResultTable.from_json(json.dumps({"schema": "nope", "cells": []}))
