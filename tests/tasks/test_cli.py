"""The ``python -m repro.tasks`` entry point (run in-process)."""

import json

import pytest

from repro.tasks.cli import main

FAST = ["--scale", "0.05", "--dim", "8", "--repeats", "1",
        "--ehna-epochs", "1", "--sgns-epochs", "1", "--quiet"]


def test_markdown_output(capsys):
    rc = main(["--datasets", "digg", "--methods", "LINE",
               "--tasks", "node_classification", *FAST])
    out = capsys.readouterr().out
    assert rc == 0
    assert "### digg · node_classification" in out
    assert "| accuracy |" in out


def test_json_output(capsys):
    rc = main(["--datasets", "digg", "--methods", "LINE",
               "--tasks", "reconstruction", "--format", "json", *FAST])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.tasks/result-table@1"
    cell = payload["cells"][0]
    assert (cell["dataset"], cell["method"], cell["task"]) == (
        "digg", "LINE", "reconstruction",
    )


def test_out_file(tmp_path, capsys):
    target = tmp_path / "grid.md"
    rc = main(["--datasets", "digg", "--methods", "LINE",
               "--tasks", "reconstruction", "--out", str(target), *FAST])
    assert rc == 0
    assert "### digg · reconstruction" in target.read_text()
    capsys.readouterr()  # drain


def test_unknown_method_is_an_error(capsys):
    rc = main(["--datasets", "digg", "--methods", "GPT", *FAST])
    assert rc == 2
    assert "unknown methods" in capsys.readouterr().err


def test_unknown_dataset_is_an_error(capsys):
    rc = main(["--datasets", "facebook", "--methods", "LINE",
               "--tasks", "reconstruction", *FAST])
    assert rc == 2
    assert "unknown dataset" in capsys.readouterr().err


def test_unknown_task_rejected_by_argparse():
    with pytest.raises(SystemExit):
        main(["--tasks", "clustering"])
