"""Unit tests for the four task implementations."""

import numpy as np
import pytest

from repro.baselines import LINE
from repro.core import EHNA
from repro.datasets import load
from repro.eval.operators import OPERATORS
from repro.tasks import (
    LinkPredictionTask,
    NodeClassificationTask,
    ReconstructionTask,
    TemporalRankingTask,
)


@pytest.fixture(scope="module")
def graph():
    return load("digg", scale=0.1, seed=0)


@pytest.fixture(scope="module")
def line_model(graph):
    # Trained on the 20% holdout split shared by the holdout-family tasks.
    train, _ = graph.split_recent(0.2)
    return LINE(dim=8, samples_per_edge=3, seed=0).fit(train)


@pytest.fixture(scope="module")
def full_model(graph):
    return LINE(dim=8, samples_per_edge=3, seed=0).fit(graph)


class TestLinkPredictionTask:
    def test_all_operator_metric_keys(self, graph, line_model):
        task = LinkPredictionTask(repeats=2)
        data = task.prepare(graph, np.random.default_rng(0))
        metrics = task.evaluate(line_model, data, np.random.default_rng(1))
        expected = {
            f"{op}/{metric}"
            for op in OPERATORS
            for metric in ("auc", "f1", "precision", "recall")
        }
        assert set(metrics) == expected
        assert all(0.0 <= v <= 1.0 for v in metrics.values())

    def test_operator_subset(self, graph, line_model):
        task = LinkPredictionTask(operators=("Weighted-L2",), repeats=1)
        data = task.prepare(graph, np.random.default_rng(0))
        metrics = task.evaluate(line_model, data, np.random.default_rng(1))
        assert set(metrics) == {
            "Weighted-L2/auc",
            "Weighted-L2/f1",
            "Weighted-L2/precision",
            "Weighted-L2/recall",
        }

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown operators"):
            LinkPredictionTask(operators=("Sum",))

    def test_fit_key_tracks_fraction(self):
        assert LinkPredictionTask().fit_key == ("holdout", 0.2)
        assert LinkPredictionTask(fraction=0.3).fit_key == ("holdout", 0.3)

    def test_train_graph_is_holdout_split(self, graph):
        task = LinkPredictionTask()
        data = task.prepare(graph, np.random.default_rng(0))
        assert data.train_graph.num_edges < graph.num_edges
        assert data.full_graph is graph


class TestReconstructionTask:
    def test_trains_on_full_graph(self, graph):
        task = ReconstructionTask(ps=(10, 50), repeats=1)
        data = task.prepare(graph, np.random.default_rng(0))
        assert data.train_graph is graph
        assert task.fit_key == ("full",)

    def test_precision_keys_and_range(self, graph, full_model):
        task = ReconstructionTask(ps=(10, 50), repeats=1)
        data = task.prepare(graph, np.random.default_rng(0))
        metrics = task.evaluate(full_model, data, np.random.default_rng(1))
        assert set(metrics) == {"precision@10", "precision@50"}
        assert all(0.0 <= v <= 1.0 for v in metrics.values())


class TestNodeClassificationTask:
    def test_derived_labels(self, graph, full_model):
        task = NodeClassificationTask(repeats=2)
        data = task.prepare(graph, np.random.default_rng(0))
        assert data.payload.labels.size == graph.num_nodes
        assert data.payload.num_classes == 4
        metrics = task.evaluate(full_model, data, np.random.default_rng(1))
        assert set(metrics) == {"accuracy", "macro_f1"}
        assert 0.0 <= metrics["accuracy"] <= 1.0
        assert 0.0 <= metrics["macro_f1"] <= 1.0

    def test_explicit_labels(self, graph, full_model):
        labels = np.arange(graph.num_nodes) % 2
        task = NodeClassificationTask(num_communities=2, repeats=1, labels=labels)
        data = task.prepare(graph, np.random.default_rng(0))
        np.testing.assert_array_equal(data.payload.labels, labels)

    def test_label_size_mismatch(self, graph):
        task = NodeClassificationTask(labels=np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="labels"):
            task.prepare(graph, np.random.default_rng(0))

    def test_deterministic_given_rng(self, graph, full_model):
        task = NodeClassificationTask(repeats=2)
        data = task.prepare(graph, np.random.default_rng(7))
        a = task.evaluate(full_model, data, np.random.default_rng(3))
        b = task.evaluate(full_model, data, np.random.default_rng(3))
        assert a == b


class _ConstantModel:
    """All-equal embeddings: every ranking query ties across candidates."""

    def __init__(self, num_nodes, dim=4):
        self._emb = np.ones((num_nodes, dim))

    def encode(self, nodes, at=None):
        return self._emb[np.asarray(nodes, dtype=np.int64)]


class TestTemporalRankingTask:
    def test_payload_shapes_and_candidates(self, graph):
        task = TemporalRankingTask(num_candidates=4, max_queries=10)
        data = task.prepare(graph, np.random.default_rng(0))
        p = data.payload
        q = p.sources.size
        assert 0 < q <= 10
        assert p.candidates.shape == (q, 4)
        assert p.anchors.shape == (q,)
        for i in range(q):
            assert p.positives[i] not in p.candidates[i]
            assert p.sources[i] not in p.candidates[i]
            # distractors were never training-time neighbors of the source
            hits = data.train_graph.has_edges(
                np.full(4, p.sources[i]), p.candidates[i]
            )
            assert not hits.any()

    def test_shares_fit_key_with_link_prediction(self):
        assert TemporalRankingTask().fit_key == LinkPredictionTask().fit_key

    def test_tie_handling_is_average_rank(self, graph):
        task = TemporalRankingTask(num_candidates=4, max_queries=8)
        data = task.prepare(graph, np.random.default_rng(0))
        metrics = task.evaluate(
            _ConstantModel(graph.num_nodes), data, np.random.default_rng(1)
        )
        # all scores equal -> rank = 1 + C/2 = 3 for C=4
        assert metrics["mrr"] == pytest.approx(1.0 / 3.0)
        assert metrics["hits@1"] == 0.0
        assert metrics["hits@5"] == 1.0

    def test_time_anchored_encode_path(self, graph):
        """EHNA's live time-anchored aggregation serves the ranking queries."""
        task = TemporalRankingTask(num_candidates=3, max_queries=5)
        data = task.prepare(graph, np.random.default_rng(0))
        model = EHNA(
            dim=8, epochs=1, batch_size=32, num_walks=2, walk_length=3,
            num_negatives=2, seed=0,
        ).fit(data.train_graph)
        metrics = task.evaluate(model, data, np.random.default_rng(1))
        assert set(metrics) == {"mrr", "hits@1", "hits@5"}
        assert 0.0 < metrics["mrr"] <= 1.0
