"""Runner grid tests: fit caching, RNG isolation, timing capture."""

import numpy as np
import pytest

from repro.baselines import LINE, Node2Vec
from repro.datasets import load
from repro.tasks import (
    FitTimingTask,
    LinkPredictionTask,
    NodeClassificationTask,
    ReconstructionTask,
    Runner,
    Task,
    TaskData,
    TemporalRankingTask,
)


def counting_line_factory(counter, key="fits"):
    """A LINE factory whose produced models count their fit() calls."""

    def factory():
        model = LINE(dim=8, samples_per_edge=2, seed=0)
        original = model.fit

        def fit(graph):
            counter[key] = counter.get(key, 0) + 1
            return original(graph)

        model.fit = fit
        return model

    return factory


TASKS_TWO_FAMILIES = lambda: [  # noqa: E731 - concise per-test instances
    LinkPredictionTask(repeats=1),
    TemporalRankingTask(num_candidates=4, max_queries=6),
    ReconstructionTask(ps=(10,), repeats=1),
    NodeClassificationTask(repeats=1),
]


class TestFitCache:
    def test_one_fit_per_method_dataset_and_fit_key(self):
        """The acceptance property: 2 datasets x 1 method x 4 tasks runs
        exactly 2 fits per dataset (holdout family + full-graph family)."""
        counter = {}
        runner = Runner(
            ["digg", "dblp"],
            {"LINE": counting_line_factory(counter)},
            TASKS_TWO_FAMILIES(),
            scale=0.08,
            seed=0,
        )
        table = runner.run()
        assert len(table) == 2 * 4
        assert counter["fits"] == 2 * 2  # (holdout, full) x datasets
        assert table.num_fits() == counter["fits"]

    def test_single_task_single_fit(self):
        counter = {}
        runner = Runner(
            ["digg"],
            {"LINE": counting_line_factory(counter)},
            [LinkPredictionTask(repeats=1)],
            scale=0.08,
            seed=0,
        )
        runner.run()
        assert counter["fits"] == 1

    def test_cached_cells_marked(self):
        runner = Runner(
            ["digg"],
            {"LINE": lambda: LINE(dim=8, samples_per_edge=2, seed=0)},
            [
                LinkPredictionTask(repeats=1),
                TemporalRankingTask(num_candidates=4, max_queries=6),
            ],
            scale=0.08,
            seed=0,
        )
        table = runner.run()
        lp = table.cell("digg", "LINE", "link_prediction")
        tr = table.cell("digg", "LINE", "temporal_ranking")
        assert not lp.fit_cached
        assert tr.fit_cached
        assert tr.fit_seconds == lp.fit_seconds  # the one fit's cost

    def test_different_fractions_refit(self):
        counter = {}
        runner = Runner(
            ["digg"],
            {"LINE": counting_line_factory(counter)},
            [
                LinkPredictionTask(fraction=0.2, repeats=1),
                TemporalRankingTask(fraction=0.3, num_candidates=4, max_queries=6),
            ],
            scale=0.08,
            seed=0,
        )
        runner.run()
        assert counter["fits"] == 2


class _LyingTask(Task):
    """Claims the full-graph fit key but prepares a truncated graph."""

    name = "lying"

    def prepare(self, graph, rng):
        train, _ = graph.split_recent(0.5)
        return TaskData(train_graph=train, full_graph=graph)

    def evaluate(self, model, data, rng):
        return {}


class TestFitKeyContract:
    def test_mismatched_split_is_caught(self):
        runner = Runner(
            ["digg"],
            {"LINE": lambda: LINE(dim=8, samples_per_edge=2, seed=0)},
            [ReconstructionTask(ps=(10,), repeats=1), _LyingTask()],
            scale=0.08,
            seed=0,
        )
        with pytest.raises(RuntimeError, match="fit_key"):
            runner.run()


class TestRngIsolation:
    @staticmethod
    def _grid(methods, rng_mode):
        return Runner(
            ["digg"],
            methods,
            [LinkPredictionTask(repeats=2)],
            scale=0.1,
            seed=0,
            rng_mode=rng_mode,
        ).run()

    def test_cell_mode_is_order_independent(self):
        """The satellite fix: a cell's numbers no longer depend on which
        methods ran before it."""
        line = lambda: LINE(dim=8, samples_per_edge=2, seed=0)  # noqa: E731
        n2v = lambda: Node2Vec(  # noqa: E731
            dim=8, num_walks=2, walk_length=6, epochs=1, seed=0
        )
        ab = self._grid({"LINE": line, "Node2Vec": n2v}, "cell")
        ba = self._grid({"Node2Vec": n2v, "LINE": line}, "cell")
        for method in ("LINE", "Node2Vec"):
            assert (
                ab.cell("digg", method, "link_prediction").metrics
                == ba.cell("digg", method, "link_prediction").metrics
            )

    def test_shared_mode_is_order_dependent(self):
        """The legacy behavior the adapters rely on for bit-reproduction."""
        line = lambda: LINE(dim=8, samples_per_edge=2, seed=0)  # noqa: E731
        n2v = lambda: Node2Vec(  # noqa: E731
            dim=8, num_walks=2, walk_length=6, epochs=1, seed=0
        )
        ab = self._grid({"LINE": line, "Node2Vec": n2v}, "shared")
        ba = self._grid({"Node2Vec": n2v, "LINE": line}, "shared")
        assert (
            ab.cell("digg", "Node2Vec", "link_prediction").metrics
            != ba.cell("digg", "Node2Vec", "link_prediction").metrics
        )

    def test_cell_mode_deterministic(self):
        line = lambda: LINE(dim=8, samples_per_edge=2, seed=0)  # noqa: E731
        a = self._grid({"LINE": line}, "cell")
        b = self._grid({"LINE": line}, "cell")
        assert (
            a.cell("digg", "LINE", "link_prediction").metrics
            == b.cell("digg", "LINE", "link_prediction").metrics
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="rng_mode"):
            Runner(["digg"], {}, [], rng_mode="global")


class TestRunnerInputs:
    def test_prebuilt_graph_mapping(self):
        graph = load("digg", scale=0.08, seed=0)
        table = Runner(
            {"toy": graph},
            {"LINE": lambda: LINE(dim=8, samples_per_edge=2, seed=0)},
            [ReconstructionTask(ps=(10,), repeats=1)],
            seed=0,
        ).run()
        assert table.datasets() == ["toy"]
        assert "precision@10" in table.cell("toy", "LINE", "reconstruction").metrics

    def test_duplicate_task_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Runner(
                ["digg"],
                {},
                [LinkPredictionTask(), LinkPredictionTask(fraction=0.3)],
            )

    def test_graph_aware_factory_receives_train_graph(self):
        seen = {}

        def factory(graph):
            seen["edges"] = graph.num_edges
            return LINE(dim=8, samples_per_edge=2, seed=0)

        graph = load("digg", scale=0.08, seed=0)
        Runner(
            {"toy": graph}, {"LINE": factory}, [FitTimingTask()], seed=0
        ).run()
        assert seen["edges"] == graph.num_edges


class TestTimingCapture:
    def test_fit_and_eval_seconds_recorded(self):
        table = Runner(
            ["digg"],
            {"LINE": lambda: LINE(dim=8, samples_per_edge=2, seed=0)},
            [LinkPredictionTask(repeats=1)],
            scale=0.08,
            seed=0,
        ).run()
        cell = table.cell("digg", "LINE", "link_prediction")
        assert cell.fit_seconds > 0
        assert cell.eval_seconds > 0
