"""Legacy-driver equivalence: the Runner adapters reproduce the pre-refactor
drivers bitwise at a fixed seed.

Each reference below is the pre-Runner driver loop, inlined verbatim (same
call sequence, same shared-generator threading).  Exact float equality is
asserted — the adapters in shared-RNG mode must consume the generator
stream in the identical order.
"""

import pytest

from repro.baselines import LINE, Node2Vec
from repro.core import EHNA
from repro.core.variants import ABLATION_VARIANTS
from repro.datasets import load
from repro.eval.link_prediction import (
    evaluate_all_operators,
    evaluate_operator,
    prepare_link_prediction,
)
from repro.eval.metrics import error_reduction
from repro.eval.reconstruction import reconstruction_precision
from repro.experiments import run_fig4, run_fig5, run_link_table, run_table7
from repro.utils.rng import ensure_rng

TINY_METHODS = {
    "LINE": lambda: LINE(dim=8, samples_per_edge=5, seed=0),
    "Node2Vec": lambda: Node2Vec(dim=8, num_walks=2, walk_length=8, epochs=1, seed=0),
    "EHNA": lambda: EHNA(dim=8, epochs=1, batch_size=32, num_walks=2,
                         walk_length=3, num_negatives=2, seed=0),
}
METRICS = ("auc", "f1", "precision", "recall")


def legacy_run_link_table(dataset, scale, methods, seed, repeats):
    """The pre-refactor run_link_table loop, verbatim."""
    graph = load(dataset, scale=scale, seed=seed)
    rng = ensure_rng(seed)
    data = prepare_link_prediction(graph, fraction=0.2, rng=rng)

    per_method = {}
    for name, factory in methods.items():
        model = factory().fit(data.train_graph)
        per_method[name] = evaluate_all_operators(
            model.embeddings(), data, repeats=repeats, rng=rng
        )

    table = {}
    method_names = list(per_method)
    for operator in next(iter(per_method.values())):
        table[operator] = {}
        for metric in METRICS:
            row = {m: per_method[m][operator][metric] for m in method_names}
            if "EHNA" in row:
                baselines = [v for m, v in row.items() if m != "EHNA"]
                if baselines:
                    row["Error Reduction"] = error_reduction(
                        max(baselines), row["EHNA"]
                    )
            table[operator][metric] = row
    return table


def legacy_run_fig4(datasets, scale, ps, methods, seed, repeats):
    """The pre-refactor run_fig4 loop, verbatim."""
    rng = ensure_rng(seed)
    results = {}
    for ds in datasets:
        graph = load(ds, scale=scale, seed=seed)
        per_method = {}
        for name, factory in methods.items():
            model = factory().fit(graph)
            per_method[name] = reconstruction_precision(
                model.embeddings(), graph, list(ps), sample_size=None,
                repeats=repeats, rng=rng,
            )
        results[ds] = per_method
    return results


def legacy_run_table7(datasets, scale, dim, epochs, seed, repeats):
    """The pre-refactor run_table7 loop, verbatim."""
    results = {v: {} for v in ABLATION_VARIANTS}
    for ds in datasets:
        graph = load(ds, scale=scale, seed=seed)
        rng = ensure_rng(seed)
        data = prepare_link_prediction(graph, fraction=0.2, rng=rng)
        for variant, factory in ABLATION_VARIANTS.items():
            model = factory(seed=seed, dim=dim, epochs=epochs)
            model.fit(data.train_graph)
            metrics = evaluate_operator(
                model.embeddings(), data, "Weighted-L2", repeats=repeats, rng=rng
            )
            results[variant][ds] = metrics["f1"]
    return results


@pytest.mark.parametrize("seed", [0, 3])
def test_link_table_bitwise_equivalence(seed):
    new = run_link_table("digg", scale=0.12, methods=TINY_METHODS, seed=seed,
                         repeats=2)
    old = legacy_run_link_table("digg", scale=0.12, methods=TINY_METHODS,
                                seed=seed, repeats=2)
    assert new == old  # exact float equality, every operator/metric/method


def test_fig4_bitwise_equivalence():
    kwargs = dict(datasets=("dblp", "digg"), scale=0.1, ps=(10, 50),
                  methods={k: TINY_METHODS[k] for k in ("LINE", "Node2Vec")},
                  seed=3, repeats=1)
    assert run_fig4(**kwargs) == legacy_run_fig4(**kwargs)


def test_table7_bitwise_equivalence():
    kwargs = dict(datasets=("dblp",), scale=0.1, dim=8, epochs=1, seed=3,
                  repeats=2)
    assert run_table7(**kwargs) == legacy_run_table7(**kwargs)


def legacy_run_fig5(dataset, scale, dim, epochs, seed, grids):
    """The pre-refactor run_fig5 loop, verbatim."""
    graph = load(dataset, scale=scale, seed=seed)
    rng = ensure_rng(seed)
    data = prepare_link_prediction(graph, fraction=0.2, rng=rng)
    base = {"dim": dim, "epochs": epochs}

    def f1_for(**overrides):
        model = EHNA(seed=seed, **overrides)
        model.fit(data.train_graph)
        return evaluate_operator(
            model.embeddings(), data, "Weighted-L2", repeats=3, rng=rng
        )["f1"]

    results = {"margin": {}, "walk_length": {}, "log2_p": {}, "log2_q": {}}
    for m in grids["margin"]:
        results["margin"][m] = f1_for(margin=float(m), **base)
    for length in grids["walk_length"]:
        results["walk_length"][length] = f1_for(walk_length=int(length), **base)
    for e in grids["log2_p"]:
        results["log2_p"][e] = f1_for(p=float(2.0**e), **base)
    for e in grids["log2_q"]:
        results["log2_q"][e] = f1_for(q=float(2.0**e), **base)
    return results


def test_fig5_bitwise_equivalence():
    grids = {"margin": [2.0], "walk_length": [2], "log2_p": [0], "log2_q": [1]}
    new = run_fig5(dataset="yelp", scale=0.1, dim=8, epochs=1, seed=2, grids=grids)
    old = legacy_run_fig5("yelp", scale=0.1, dim=8, epochs=1, seed=2, grids=grids)
    assert new == old
