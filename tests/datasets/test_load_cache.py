"""The datasets.load LRU memoization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load, load_cache_clear, load_cache_info
from repro.datasets.registry import LOAD_CACHE_SIZE


@pytest.fixture(autouse=True)
def fresh_cache():
    load_cache_clear()
    yield
    load_cache_clear()


class TestLoadCache:
    def test_repeat_load_hits_cache(self):
        g1 = load("digg", scale=0.05, seed=3)
        info = load_cache_info()
        assert info["misses"] == 1 and info["hits"] == 0
        g2 = load("digg", scale=0.05, seed=3)
        info = load_cache_info()
        assert info["hits"] == 1
        # A caller-owned copy of the memoized graph, not a regeneration:
        # the underlying edge arrays are shared, the object is fresh.
        assert g2 is not g1
        assert g2.src is g1.src
        assert g2.time is g1.time

    def test_distinct_signatures_miss(self):
        load("digg", scale=0.05, seed=3)
        load("digg", scale=0.05, seed=4)
        load("digg", scale=0.1, seed=3)
        load("yelp", scale=0.05, seed=3)
        assert load_cache_info()["hits"] == 0
        assert load_cache_info()["misses"] == 4

    def test_labels_flag_is_part_of_the_key(self):
        g = load("digg", scale=0.05, seed=5)
        pair = load("digg", scale=0.05, seed=5, labels=True)
        assert load_cache_info()["misses"] == 2
        graph, labels = pair
        assert labels.shape == (graph.num_nodes,)
        # Hitting the labeled entry returns an equivalent pair.
        graph2, labels2 = load("digg", scale=0.05, seed=5, labels=True)
        assert load_cache_info()["hits"] == 1
        assert graph2.src is graph.src  # shared arrays, no regeneration
        np.testing.assert_array_equal(labels2, labels)
        # Same seed => bitwise the same graph either way.
        np.testing.assert_array_equal(graph.src, g.src)
        np.testing.assert_array_equal(graph.time, g.time)

    def test_cached_graph_is_isolated_from_a_callers_extend(self):
        g1 = load("digg", scale=0.05, seed=11)
        n, m = g1.num_nodes, g1.num_edges
        head = g1.time[-1]
        g1.extend_in_place([0], [1], [head + 1.0])
        g1.compact()
        assert g1.num_edges == m + 1
        # A second load sees the pristine graph, not the grown one.
        g2 = load("digg", scale=0.05, seed=11)
        assert load_cache_info()["hits"] == 1
        assert g2.num_edges == m
        assert g2.num_nodes == n
        assert g2.pending_events == 0
        assert g2.time[-1] == head

    def test_cached_labels_are_isolated_from_in_place_edits(self):
        _, labels = load("digg", scale=0.05, seed=12, labels=True)
        original = labels.copy()
        labels[:] = -1
        _, labels2 = load("digg", scale=0.05, seed=12, labels=True)
        np.testing.assert_array_equal(labels2, original)

    def test_seed_none_never_caches(self):
        g1 = load("digg", scale=0.05)
        g2 = load("digg", scale=0.05)
        info = load_cache_info()
        assert info["hits"] == 0 and info["size"] == 0
        assert g1 is not g2

    def test_generator_seed_never_caches(self):
        rng = np.random.default_rng(0)
        load("digg", scale=0.05, seed=rng)
        assert load_cache_info()["size"] == 0

    def test_lru_eviction_keeps_capacity_bounded(self):
        for i in range(LOAD_CACHE_SIZE + 3):
            load("digg", scale=0.05, seed=100 + i)
        info = load_cache_info()
        assert info["size"] == LOAD_CACHE_SIZE
        # The oldest entry was evicted: loading it again is a miss.
        misses = info["misses"]
        load("digg", scale=0.05, seed=100)
        assert load_cache_info()["misses"] == misses + 1
        # The newest entry survived.
        hits = load_cache_info()["hits"]
        load("digg", scale=0.05, seed=100 + LOAD_CACHE_SIZE + 2)
        assert load_cache_info()["hits"] == hits + 1

    def test_clear_resets_counters(self):
        load("digg", scale=0.05, seed=9)
        load("digg", scale=0.05, seed=9)
        load_cache_clear()
        assert load_cache_info() == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": LOAD_CACHE_SIZE,
        }

    def test_failed_load_does_not_count_a_miss(self):
        from repro.datasets import UnknownDatasetError

        with pytest.raises(UnknownDatasetError):
            load("no-such-dataset", seed=0)
        assert load_cache_info()["misses"] == 0
        assert load_cache_info()["size"] == 0

    def test_numpy_integer_seed_caches_like_python_int(self):
        load("digg", scale=0.05, seed=np.int64(7))
        load("digg", scale=0.05, seed=7)
        assert load_cache_info()["hits"] == 1


class TestStorageBackendKey:
    """The storage backend is part of the memoization key."""

    def test_memmap_request_never_served_the_memory_entry(self, tmp_path):
        g_mem = load("digg", scale=0.05, seed=3)
        assert load_cache_info()["misses"] == 1
        g_map = load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        info = load_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0
        assert g_mem.storage_backend == "memory"
        assert g_map.storage_backend == "memmap"
        # Distinct backends, bitwise-identical events.
        np.testing.assert_array_equal(g_mem.src, g_map.src)
        np.testing.assert_array_equal(g_mem.time, g_map.time)

    def test_memmap_entry_hits_and_keeps_its_backend(self, tmp_path):
        load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        g = load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        assert load_cache_info()["hits"] == 1
        assert g.storage_backend == "memmap"

    def test_distinct_store_paths_are_distinct_keys(self, tmp_path):
        load("digg", scale=0.05, seed=3, storage=tmp_path / "a")
        load("digg", scale=0.05, seed=3, storage=tmp_path / "b")
        info = load_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0

    def test_reopen_after_cache_clear_reads_the_store(self, tmp_path):
        g1 = load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        load_cache_clear()
        g2 = load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        assert g2.storage_backend == "memmap"
        np.testing.assert_array_equal(g1.src, g2.src)

    def test_provenance_mismatch_rejected(self, tmp_path):
        load("digg", scale=0.05, seed=3, storage=tmp_path / "s")
        load_cache_clear()
        with pytest.raises(ValueError, match="does not match"):
            load("digg", scale=0.05, seed=4, storage=tmp_path / "s")

    def test_unknown_name_with_storage_writes_nothing(self, tmp_path):
        from repro.datasets import UnknownDatasetError

        with pytest.raises(UnknownDatasetError):
            load("no-such-dataset", seed=0, storage=tmp_path / "s")
        assert not (tmp_path / "s").exists()


class TestSharedBackendKey:
    """``shared=True`` is part of the memoization key too."""

    def test_shared_request_never_served_the_memory_entry(self):
        g_mem = load("digg", scale=0.05, seed=3)
        g_shm = load("digg", scale=0.05, seed=3, shared=True)
        info = load_cache_info()
        assert info["misses"] == 2 and info["hits"] == 0
        assert g_mem.storage_backend == "memory"
        assert g_shm.storage_backend == "shared"
        np.testing.assert_array_equal(g_mem.src, g_shm.src)
        np.testing.assert_array_equal(g_mem.time, g_shm.time)

    def test_shared_entry_hits_and_clones_share_one_segment(self):
        g1 = load("digg", scale=0.05, seed=3, shared=True)
        g2 = load("digg", scale=0.05, seed=3, shared=True)
        assert load_cache_info()["hits"] == 1
        assert g2.storage_backend == "shared"
        # Cache-served clones attach the same segment, not a new one.
        assert g2.shared_handle.name == g1.shared_handle.name

    def test_memory_request_never_served_the_shared_entry(self):
        load("digg", scale=0.05, seed=3, shared=True)
        g = load("digg", scale=0.05, seed=3)
        assert load_cache_info()["misses"] == 2
        assert g.storage_backend == "memory"
