"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    UnknownDatasetError,
    available,
    community_labels,
    dblp_like,
    digg_like,
    load,
    temporal_preferential_attachment,
    temporal_sbm,
    tmall_like,
    yelp_like,
    PAPER_DATASETS,
)


class TestPreferentialAttachment:
    def test_size(self):
        g = temporal_preferential_attachment(num_nodes=50, edges_per_node=3, seed=0)
        assert g.num_nodes <= 50
        assert g.num_edges > 100

    def test_deterministic(self):
        a = temporal_preferential_attachment(num_nodes=30, seed=5)
        b = temporal_preferential_attachment(num_nodes=30, seed=5)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.time, b.time)

    def test_degree_skew(self):
        """Preferential attachment must produce a heavy-tailed degree list."""
        g = temporal_preferential_attachment(num_nodes=150, edges_per_node=3, seed=1)
        deg = g.degrees()
        assert deg.max() > 4 * np.median(deg)


class TestSBM:
    def test_shape(self, sbm_graph):
        assert sbm_graph.num_edges == 240

    def test_community_assortativity(self):
        """Most edges should stay within communities when p_in is high."""
        from repro.datasets.generators import temporal_sbm

        g = temporal_sbm(num_nodes=60, num_communities=3, num_edges=600,
                         p_in=0.9, seed=2)
        # Recover communities by id blocks is impossible post-compaction;
        # instead check clustering: edges repeat among a small set of pairs.
        deg = g.degrees()
        assert deg.std() > 0


class TestDBLP:
    def test_year_range(self):
        g = dblp_like(num_authors=80, num_papers=150, seed=0)
        lo, hi = g.time_span
        assert lo >= 1955.0
        assert hi <= 2018.5

    def test_repeat_collaborations_exist(self):
        g = dblp_like(num_authors=60, num_papers=300, seed=1)
        lo = np.minimum(g.src, g.dst)
        hi = np.maximum(g.src, g.dst)
        pairs = np.stack([lo, hi], axis=1)
        unique = np.unique(pairs, axis=0)
        assert unique.shape[0] < pairs.shape[0]  # parallel temporal edges

    def test_volume_grows_over_time(self):
        """Later half of the timeline should hold most papers."""
        g = dblp_like(num_authors=100, num_papers=400, seed=2)
        lo, hi = g.time_span
        midpoint = (lo + hi) / 2
        late = np.sum(g.time > midpoint)
        assert late > g.num_edges / 2


class TestDigg:
    def test_time_range(self):
        g = digg_like(num_users=60, num_edges=400, seed=0)
        lo, hi = g.time_span
        assert 2004.0 <= lo and hi <= 2009.0

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError, match="increasing"):
            digg_like(time_range=(2009.0, 2004.0))

    def test_covers_most_users(self):
        g = digg_like(num_users=100, num_edges=1200, seed=0)
        assert g.num_nodes > 70


class TestBipartite:
    @pytest.mark.parametrize("gen,n_left,n_right", [
        (tmall_like, 40, 15),
        (yelp_like, 40, 15),
    ])
    def test_strictly_bipartite(self, gen, n_left, n_right):
        if gen is tmall_like:
            g = gen(num_users=n_left, num_items=n_right, num_purchases=400, seed=0)
        else:
            g = gen(num_users=n_left, num_businesses=n_right, num_reviews=400, seed=0)
        # After compaction user ids remain below item ids: every edge must
        # cross the partition (src strictly smaller than every dst partner
        # is not guaranteed, but no edge may join two original users).
        # Generators emit user->item only, so src/dst sides never mix:
        left = set(g.src.tolist())
        right = set(g.dst.tolist())
        assert left.isdisjoint(right)

    def test_tmall_burst_day(self):
        g = tmall_like(num_users=50, num_items=20, num_purchases=1000,
                       burst_fraction=0.4, seed=0)
        lo, hi = g.time_span
        burst = np.sum(g.time >= 364.0)
        assert burst / g.num_edges == pytest.approx(0.4, abs=0.05)

    def test_tmall_popularity_skew(self):
        g = tmall_like(num_users=50, num_items=30, num_purchases=2000, seed=1)
        deg = g.degrees()
        assert deg.max() > 5 * np.median(deg)

    def test_yelp_repeat_reviews(self):
        g = yelp_like(num_users=30, num_businesses=15, num_reviews=600,
                      repeat_prob=0.5, seed=0)
        lo = np.minimum(g.src, g.dst)
        hi = np.maximum(g.src, g.dst)
        pairs = np.stack([lo, hi], axis=1)
        assert np.unique(pairs, axis=0).shape[0] < pairs.shape[0]


class TestRegistry:
    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_load_all(self, name):
        g = load(name, scale=0.05, seed=0)
        assert g.num_edges > 0

    def test_scale_changes_size(self):
        small = load("digg", scale=0.1, seed=0)
        big = load("digg", scale=0.3, seed=0)
        assert big.num_edges > small.num_edges

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("facebook")

    def test_unknown_name_is_also_a_value_error_listing_names(self):
        with pytest.raises(ValueError) as exc_info:
            load("facebook")
        assert isinstance(exc_info.value, UnknownDatasetError)
        for name in PAPER_DATASETS:
            assert name in str(exc_info.value)

    def test_available(self):
        assert available() == PAPER_DATASETS

    def test_labels_option(self):
        graph, labels = load("digg", scale=0.1, seed=0, labels=True)
        assert labels.shape == (graph.num_nodes,)
        assert labels.dtype == np.int64
        assert set(np.unique(labels)) <= set(range(4))

    def test_labels_do_not_perturb_the_graph(self):
        plain = load("yelp", scale=0.1, seed=4)
        labeled, _ = load("yelp", scale=0.1, seed=4, labels=True)
        np.testing.assert_array_equal(plain.src, labeled.src)
        np.testing.assert_array_equal(plain.dst, labeled.dst)
        np.testing.assert_array_equal(plain.time, labeled.time)


class TestCommunityLabels:
    def test_deterministic(self):
        g = load("digg", scale=0.1, seed=0)
        a = community_labels(g, seed=0)
        b = community_labels(g, seed=0)
        np.testing.assert_array_equal(a, b)

    def test_every_community_populated_and_balanced(self):
        g = load("digg", scale=0.2, seed=0)
        labels = community_labels(g, num_communities=4, seed=0)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() >= 1
        # balanced region growing: no community hoards the graph
        assert counts.max() <= 3 * max(counts.min(), 1)

    def test_more_communities_than_nodes_clamps(self):
        g = temporal_sbm(num_nodes=6, num_edges=30, seed=0)
        labels = community_labels(g, num_communities=50, seed=0)
        assert labels.max() < g.num_nodes

    def test_case_insensitive(self):
        assert load("DBLP", scale=0.05, seed=0).num_edges > 0

    def test_deterministic(self):
        a = load("tmall", scale=0.1, seed=9)
        b = load("tmall", scale=0.1, seed=9)
        np.testing.assert_array_equal(a.src, b.src)
