"""The precision policy at the nn layer.

Covers the policy registry itself, dtype preservation through the autograd
engine, float32 parameter allocation across every layer, the fused LSTM
kernel in single precision, and the loosened-tolerance gradchecks that
validate the fast mode (the float64 suites elsewhere remain the bitwise
reference)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    Adam,
    BatchNorm1d,
    Embedding,
    Linear,
    Precision,
    SGD,
    StackedLSTM,
    Tensor,
    UnknownPrecisionError,
    check_gradients,
    get_precision,
)
from repro.nn.tensor import softmax


class TestPolicyRegistry:
    def test_registered_policies(self):
        assert set(PRECISIONS) == {"float64", "float32"}
        assert FLOAT64.real == np.float64
        assert FLOAT32.real == np.float32

    def test_get_precision_resolves_names_and_instances(self):
        assert get_precision("float64") is FLOAT64
        assert get_precision("float32") is FLOAT32
        assert get_precision(FLOAT32) is FLOAT32

    def test_unknown_name_lists_valid_values(self):
        with pytest.raises(UnknownPrecisionError) as err:
            get_precision("float16")
        assert "float64" in str(err.value) and "float32" in str(err.value)
        # Catchable under both historical exception disciplines.
        assert isinstance(err.value, KeyError)
        assert isinstance(err.value, ValueError)

    def test_index_dtype_overflow_guard(self):
        assert FLOAT32.index_dtype(1000) == np.int32
        assert FLOAT32.index_dtype(2**31 - 1) == np.int32
        assert FLOAT32.index_dtype(2**31) == np.int64
        assert FLOAT64.index_dtype(1000) == np.int32  # exact either way

    def test_float32_tolerances_are_looser(self):
        assert FLOAT32.gradcheck_atol > FLOAT64.gradcheck_atol
        assert FLOAT32.loss_rtol > FLOAT64.loss_rtol

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            FLOAT32.name = "other"

    def test_policy_is_dataclass_with_name(self):
        assert isinstance(FLOAT32, Precision)
        assert FLOAT32.name == "float32"


class TestTensorDtypePreservation:
    def test_float32_arrays_keep_their_dtype(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32))
        assert t.dtype == np.float32

    def test_non_float_inputs_coerce_to_default_float64(self):
        assert Tensor([1, 2, 3]).dtype == np.float64
        assert Tensor(np.arange(3)).dtype == np.float64
        assert Tensor(2.5).dtype == np.float64

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_arithmetic_preserves_dtype(self, dtype):
        a = Tensor(np.ones((2, 2), dtype=dtype), requires_grad=True)
        b = Tensor(np.full((2, 2), 2.0, dtype=dtype))
        for out in (a + b, a - b, a * b, a / b, a @ b, -a, a**2):
            assert out.dtype == dtype, out

    def test_python_scalars_do_not_promote(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        for out in (a + 1.0, 1.0 + a, a - 1.0, 1.0 - a, a * 2.0, a / 2.0, 2.0 / a):
            assert out.dtype == np.float32, out

    def test_plain_float64_operand_adopts_tensor_dtype(self):
        a = Tensor(np.ones(4, dtype=np.float32))
        out = a * np.full(4, 2.0)  # float64 ndarray operand
        assert out.dtype == np.float32

    def test_nonlinearities_and_reductions_preserve_dtype(self):
        a = Tensor(np.linspace(-2, 2, 8, dtype=np.float32).reshape(2, 4))
        for out in (
            a.exp(),
            (a * a + 1.0).log(),
            a.tanh(),
            a.sigmoid(),
            a.relu(),
            a.sum(),
            a.mean(axis=1),
            softmax(a, axis=1),
        ):
            assert out.dtype == np.float32, out

    def test_backward_gradients_match_parameter_dtype(self):
        a = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        loss = (a * a).sum()
        assert loss.dtype == np.float32
        loss.backward()
        assert a.grad.dtype == np.float32


class TestFloat32Layers:
    def test_layer_parameters_allocate_in_policy_dtype(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng=rng, dtype=np.float32)
        emb = Embedding(10, 4, rng=rng, dtype=np.float32)
        lstm = StackedLSTM(4, 4, 2, rng=rng, dtype=np.float32)
        bn = BatchNorm1d(4, dtype=np.float32)
        for module in (lin, emb, lstm, bn):
            for param in module.parameters():
                assert param.dtype == np.float32
        assert bn.running_mean.dtype == np.float32
        assert bn.running_var.dtype == np.float32

    def test_float32_init_narrows_the_same_float64_draws(self):
        """Same RNG stream, values equal after rounding — so a float32 model
        is the narrowed twin of the float64 one, not a different model."""
        w64 = Linear(6, 5, rng=np.random.default_rng(3)).weight.data
        w32 = Linear(6, 5, rng=np.random.default_rng(3), dtype=np.float32).weight.data
        np.testing.assert_array_equal(w32, w64.astype(np.float32))

    def test_forward_stays_float32_end_to_end(self):
        rng = np.random.default_rng(1)
        lstm = StackedLSTM(4, 4, 2, rng=rng, dtype=np.float32)
        bn = BatchNorm1d(4, dtype=np.float32)
        x = Tensor(rng.standard_normal((3, 5, 4)).astype(np.float32))
        mask = np.ones((3, 5), dtype=np.float32)
        out = bn(lstm.fused(x, mask=mask)).relu()
        assert out.dtype == np.float32

    def test_fused_matches_stepwise_in_float32(self):
        rng = np.random.default_rng(2)
        lstm = StackedLSTM(3, 3, 2, rng=rng, dtype=np.float32)
        x_data = rng.standard_normal((4, 6, 3)).astype(np.float32)
        mask = (rng.random((4, 6)) < 0.8).astype(np.float32)
        mask[:, 0] = 1.0
        fused = lstm.fused(Tensor(x_data), mask=mask)
        steps = [Tensor(x_data[:, t]) for t in range(6)]
        _, ref = lstm(steps, mask=mask.T)
        assert fused.dtype == np.float32 and ref.dtype == np.float32
        np.testing.assert_allclose(fused.data, ref.data, rtol=1e-5, atol=1e-6)

    def test_optimizers_keep_float32_state(self):
        rng = np.random.default_rng(4)
        lin = Linear(4, 2, rng=rng, dtype=np.float32)
        for opt in (Adam(lin.parameters(), lr=1e-2), SGD(lin.parameters(), momentum=0.5)):
            x = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
            loss = (lin(x) * lin(x)).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
            assert lin.weight.data.dtype == np.float32
            state = opt._m if isinstance(opt, Adam) else opt._velocity
            assert all(arr.dtype == np.float32 for arr in state)


class TestFloat32Gradchecks:
    """The fast mode's validation: gradients still match finite differences,
    under the policy's loosened tolerances."""

    def _params(self, module):
        return [p for p in module.parameters()]

    def test_linear_gradcheck(self):
        rng = np.random.default_rng(10)
        lin = Linear(4, 3, rng=rng, dtype=np.float32)
        x = Tensor(rng.standard_normal((5, 4)).astype(np.float32))

        def fn():
            out = lin(x)
            return (out * out).mean()

        check_gradients(fn, self._params(lin), precision="float32")

    def test_stacked_lstm_fused_gradcheck(self):
        rng = np.random.default_rng(11)
        lstm = StackedLSTM(3, 3, 2, rng=rng, dtype=np.float32)
        x_data = rng.standard_normal((2, 4, 3)).astype(np.float32)
        mask = np.ones((2, 4), dtype=np.float32)
        mask[0, 2:] = 0.0
        x = Tensor(x_data, requires_grad=True)

        def fn():
            return (lstm.fused(x, mask=mask) ** 2).sum()

        check_gradients(fn, [x, *self._params(lstm)], precision=FLOAT32)

    def test_batchnorm_gradcheck(self):
        rng = np.random.default_rng(12)
        bn = BatchNorm1d(3, dtype=np.float32)
        x = Tensor(rng.standard_normal((6, 3)).astype(np.float32), requires_grad=True)

        def fn():
            out = bn(x)
            return (out * out).mean()

        check_gradients(fn, [x, bn.gamma, bn.beta], precision="float32")
