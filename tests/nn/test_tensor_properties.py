"""Property-based tests of autograd algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, softmax

finite = st.floats(min_value=-10, max_value=10, allow_nan=False)


def small_arrays(shape=(3, 4)):
    return arrays(np.float64, shape, elements=finite)


@given(small_arrays(), small_arrays())
@settings(max_examples=60, deadline=None)
def test_addition_commutes(a, b):
    x, y = Tensor(a), Tensor(b)
    np.testing.assert_allclose((x + y).data, (y + x).data)


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_double_negation(a):
    np.testing.assert_allclose((-(-Tensor(a))).data, a)


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_sum_linear_in_scalar(a):
    x = Tensor(a, requires_grad=True)
    (x * 3.0).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, 3.0))


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_gradient_of_sum_is_ones(a):
    x = Tensor(a, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_softmax_simplex(a):
    out = softmax(Tensor(a), axis=1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(a.shape[0]), atol=1e-12)


@given(small_arrays(), st.floats(min_value=-5, max_value=5))
@settings(max_examples=60, deadline=None)
def test_softmax_shift_invariant(a, shift):
    base = softmax(Tensor(a), axis=1).data
    shifted = softmax(Tensor(a + shift), axis=1).data
    np.testing.assert_allclose(base, shifted, atol=1e-10)


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_relu_idempotent(a):
    x = Tensor(a)
    np.testing.assert_allclose(x.relu().relu().data, x.relu().data)


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_tanh_odd_function(a):
    np.testing.assert_allclose(
        Tensor(-a).tanh().data, -Tensor(a).tanh().data, atol=1e-12
    )


@given(small_arrays())
@settings(max_examples=60, deadline=None)
def test_sigmoid_symmetry(a):
    """σ(-x) = 1 - σ(x)."""
    np.testing.assert_allclose(
        Tensor(-a).sigmoid().data, 1.0 - Tensor(a).sigmoid().data, atol=1e-12
    )


@given(small_arrays())
@settings(max_examples=40, deadline=None)
def test_product_rule(a):
    """d(x·x)/dx = 2x elementwise."""
    x = Tensor(a, requires_grad=True)
    (x * x).sum().backward()
    np.testing.assert_allclose(x.grad, 2 * a, atol=1e-10)
