"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, SGD, Tensor
from repro.nn.optim import Optimizer


def quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def step_loss(p):
    return (p * p).sum()


class TestOptimizerBase:
    def test_requires_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_constant_tensor(self):
        with pytest.raises(ValueError, match="require grad"):
            SGD([Tensor([1.0])], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_zero_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        step_loss(p).backward()
        opt.zero_grad()
        assert p.grad is None

    def test_base_step_abstract(self):
        opt = Optimizer([quadratic_param()], lr=0.1)
        with pytest.raises(NotImplementedError):
            opt.step()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = quadratic_param(3.0)
        opt = SGD([p], lr=0.1)
        step_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [3.0 - 0.1 * 6.0])

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            step_loss(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_momentum_accelerates(self):
        def run(momentum):
            p = quadratic_param(5.0)
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                step_loss(p).backward()
                opt.step()
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_clip_bounds_update(self):
        p = quadratic_param(100.0)
        opt = SGD([p], lr=1.0, clip=1.0)
        step_loss(p).backward()  # grad = 200
        opt.step()
        np.testing.assert_allclose(p.data, [99.0])  # clipped to 1

    def test_skips_params_without_grad(self):
        p, q = quadratic_param(1.0), quadratic_param(1.0)
        opt = SGD([p, q], lr=0.1)
        step_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(q.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = Adam([p], lr=0.2)
        for _ in range(200):
            opt.zero_grad()
            step_loss(p).backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_first_step_size_is_lr(self):
        """With bias correction, Adam's first |update| ≈ lr."""
        p = quadratic_param(5.0)
        opt = Adam([p], lr=0.1)
        step_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [5.0 - 0.1], atol=1e-6)

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.999))

    def test_handles_sparse_like_gradients(self):
        """Rows that never receive gradient must stay untouched."""
        p = Tensor(np.ones((4, 2)), requires_grad=True)
        opt = Adam([p], lr=0.5)
        (p[np.array([0])] ** 2).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data[1:], np.ones((3, 2)))
        assert not np.allclose(p.data[0], np.ones(2))

    def test_ill_conditioned_descent(self):
        """Adam must make progress on very differently scaled coordinates."""
        p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        scales = Tensor(np.array([1.0, 1e4]))
        opt = Adam([p], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            ((p * p) * scales).sum().backward()
            opt.step()
        assert np.all(np.abs(p.data) < 0.05)
