"""Fused BPTT LSTM kernel vs the stepwise reference and finite differences.

The fused kernel (one autograd node, hand-derived backward) must agree with
the per-timestep ``StackedLSTM`` graph *exactly* — same forward values, same
gradients for the input and every weight — including masked/padded
sequences, and its gradients must match central differences.
"""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.layers import LSTM, StackedLSTM, fused_stacked_lstm
from repro.nn.tensor import Tensor


def _random_case(seed, batch, steps, dim, hidden, layers, masked):
    rng = np.random.default_rng(seed)
    lstm = StackedLSTM(dim, hidden, layers, rng=rng)
    x = rng.normal(size=(batch, steps, dim))
    mask = None
    if masked:
        lengths = rng.integers(1, steps + 1, size=batch)
        mask = (np.arange(steps) < lengths[:, None]).astype(np.float64)
    upstream = rng.normal(size=(batch, hidden))
    return lstm, x, mask, upstream


def _run_stepwise(lstm, x_data, mask, upstream):
    x = Tensor(x_data, requires_grad=True)
    steps = [x[:, t, :] for t in range(x_data.shape[1])]
    _, h = lstm(steps, mask=mask.T if mask is not None else None)
    (h * Tensor(upstream)).sum().backward()
    grads = [x.grad.copy()] + [p.grad.copy() for p in lstm.parameters()]
    for p in lstm.parameters():
        p.zero_grad()
    return h.data, grads


def _run_fused(lstm, x_data, mask, upstream):
    x = Tensor(x_data, requires_grad=True)
    h = fused_stacked_lstm(x, lstm.layers, mask=mask)
    (h * Tensor(upstream)).sum().backward()
    grads = [x.grad.copy()] + [p.grad.copy() for p in lstm.parameters()]
    for p in lstm.parameters():
        p.zero_grad()
    return h.data, grads


CASES = [
    # (batch, steps, dim, hidden, layers, masked)
    (6, 7, 4, 4, 2, True),
    (6, 7, 4, 4, 2, False),
    (3, 5, 6, 6, 3, True),
    (1, 6, 4, 4, 2, True),  # single row: the encode(one node) shape
    (4, 1, 3, 3, 1, True),  # single step
    (5, 4, 2, 8, 2, False),  # input size != hidden size
]


class TestFusedMatchesStepwise:
    @pytest.mark.parametrize("case", CASES)
    def test_forward_bitwise(self, case):
        lstm, x, mask, up = _random_case(0, *case)
        h_ref, _ = _run_stepwise(lstm, x, mask, up)
        h_fus, _ = _run_fused(lstm, x, mask, up)
        np.testing.assert_array_equal(h_ref, h_fus)

    @pytest.mark.parametrize("case", CASES)
    def test_backward_agreement(self, case):
        """Input and weight gradients agree far below 1e-10 (in practice
        they are value-equal: the fused backward replays the reference's
        per-step accumulation order)."""
        lstm, x, mask, up = _random_case(1, *case)
        _, g_ref = _run_stepwise(lstm, x, mask, up)
        _, g_fus = _run_fused(lstm, x, mask, up)
        for a, b in zip(g_ref, g_fus):
            np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-10)

    def test_fully_padded_tail_is_identity(self):
        """Steps masked for every row must not change the final state."""
        lstm, x, _, up = _random_case(2, 4, 6, 4, 4, 2, False)
        mask = np.ones((4, 6))
        mask[:, 4:] = 0.0  # common padded tail
        h_full, _ = _run_fused(lstm, x, mask, up)
        h_trim, _ = _run_fused(lstm, x[:, :4, :], mask[:, :4], up)
        np.testing.assert_array_equal(h_full, h_trim)

    def test_stacked_fused_method(self):
        """StackedLSTM.fused is the documented front door to the kernel."""
        lstm, x, mask, _ = _random_case(3, 5, 6, 4, 4, 2, True)
        out_fn = lstm.fused(Tensor(x), mask=mask)
        out_free = fused_stacked_lstm(Tensor(x), lstm.layers, mask=mask)
        np.testing.assert_array_equal(out_fn.data, out_free.data)


class TestFusedGradcheck:
    def test_numerical_gradients_masked(self):
        rng = np.random.default_rng(7)
        lstm = StackedLSTM(3, 3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=np.float64)
        worst = check_gradients(
            lambda: fused_stacked_lstm(x, lstm.layers, mask=mask).sum(),
            [x] + lstm.parameters(),
        )
        assert worst < 1e-5

    def test_numerical_gradients_unmasked_single_layer(self):
        rng = np.random.default_rng(8)
        lstm = StackedLSTM(2, 4, 1, rng=rng)
        x = Tensor(rng.normal(size=(3, 3, 2)), requires_grad=True)
        worst = check_gradients(
            lambda: fused_stacked_lstm(x, lstm.layers).sum(),
            [x] + lstm.parameters(),
        )
        assert worst < 1e-5

    def test_constant_input_gets_no_input_grad(self):
        """A non-differentiable input still trains the weights."""
        rng = np.random.default_rng(9)
        lstm = StackedLSTM(3, 3, 1, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 3)))  # requires_grad=False
        out = fused_stacked_lstm(x, lstm.layers)
        out.sum().backward()
        assert x.grad is None
        assert all(p.grad is not None for p in lstm.parameters())


class TestFusedValidation:
    def test_rejects_non_3d_input(self):
        lstm = LSTM(3, 3, rng=0)
        with pytest.raises(ValueError, match="B, T, D"):
            fused_stacked_lstm(Tensor(np.zeros((2, 3))), [lstm])

    def test_rejects_wrong_mask_shape(self):
        lstm = LSTM(3, 3, rng=0)
        with pytest.raises(ValueError, match="mask shape"):
            fused_stacked_lstm(
                Tensor(np.zeros((2, 4, 3))), [lstm], mask=np.ones((4, 2))
            )
