"""Op-by-op correctness and gradient checks for the autograd engine."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients, concat, softmax, squared_distance, stack


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestForwardValues:
    def test_add(self):
        out = t([1.0, 2.0]) + t([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_scalar_coercion(self):
        out = t([1.0]) + 2.0
        np.testing.assert_array_equal(out.data, [3.0])
        out = 2.0 * t([3.0])
        np.testing.assert_array_equal(out.data, [6.0])

    def test_sub_rsub(self):
        np.testing.assert_array_equal((5.0 - t([2.0])).data, [3.0])

    def test_div(self):
        np.testing.assert_array_equal((t([6.0]) / 2.0).data, [3.0])
        np.testing.assert_array_equal((6.0 / t([2.0])).data, [3.0])

    def test_matmul_values(self):
        a, b = t([[1.0, 2.0]]), t([[3.0], [4.0]])
        np.testing.assert_array_equal((a @ b).data, [[11.0]])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            t([1.0]) @ t([1.0])

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            t([2.0]) ** t([2.0])

    def test_relu(self):
        np.testing.assert_array_equal(t([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_extremes_stable(self):
        out = t([-800.0, 0.0, 800.0]).sigmoid().data
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_reshape_and_transpose(self):
        x = t(np.arange(6.0))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape((3, 2)).transpose().shape == (2, 3)

    def test_sum_axis_keepdims(self):
        x = t(np.ones((2, 3)))
        assert x.sum(axis=1).shape == (2,)
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)
        assert x.sum().item() == 6.0

    def test_mean_matches_numpy(self):
        data = np.arange(12.0).reshape(3, 4)
        np.testing.assert_allclose(t(data).mean(axis=0).data, data.mean(axis=0))

    def test_getitem_fancy(self):
        x = t(np.arange(12.0).reshape(4, 3))
        rows = x[np.array([0, 2])]
        np.testing.assert_array_equal(rows.data, [[0, 1, 2], [6, 7, 8]])

    def test_concat_stack(self):
        a, b = t([[1.0]]), t([[2.0]])
        np.testing.assert_array_equal(concat([a, b], axis=1).data, [[1.0, 2.0]])
        np.testing.assert_array_equal(stack([a, b], axis=0).data, [[[1.0]], [[2.0]]])

    def test_softmax_rows_sum_to_one(self):
        out = softmax(t(np.random.default_rng(0).normal(size=(4, 5))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_stable_under_large_logits(self):
        out = softmax(t([1000.0, 1000.0]), axis=0)
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_squared_distance(self):
        d = squared_distance(t([[0.0, 0.0]]), t([[3.0, 4.0]]))
        np.testing.assert_allclose(d.data, [25.0])


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_gradient(self):
        x = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_explicit_gradient(self):
        x = t([1.0, 2.0])
        (x * 3.0).backward(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(x.grad, [3.0, 3.0])

    def test_gradient_shape_mismatch(self):
        x = t([1.0, 2.0])
        with pytest.raises(ValueError):
            (x * 3.0).backward(np.array([1.0]))

    def test_grad_accumulates_across_backwards(self):
        x = t([2.0])
        (x * 1.0).sum().backward()
        (x * 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0])

    def test_zero_grad(self):
        x = t([2.0])
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = t([2.0])
        y = x.detach() * x
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0])  # only one path

    def test_constant_operands_get_no_grad(self):
        const = Tensor([1.0])
        x = t([2.0])
        (x + const).sum().backward()
        assert const.grad is None

    def test_reused_node_accumulates(self):
        x = t([3.0])
        y = x * x  # x used twice
        y.sum().backward()
        np.testing.assert_array_equal(x.grad, [6.0])

    def test_deep_chain_no_recursion_error(self):
        x = t([1.0])
        y = x
        for _ in range(3000):
            y = y * 1.0
        y.sum().backward()  # iterative topo sort must survive depth 3000
        np.testing.assert_array_equal(x.grad, [1.0])


class TestGradChecks:
    """Central-difference validation of every differentiable op."""

    rng = np.random.default_rng(7)

    def check(self, fn, *tensors):
        worst = check_gradients(fn, list(tensors))
        assert worst < 1e-5

    def test_add_broadcast(self):
        a, b = t(self.rng.normal(size=(3, 4))), t(self.rng.normal(size=(4,)))
        self.check(lambda: ((a + b) ** 2).sum(), a, b)

    def test_mul_broadcast(self):
        a, b = t(self.rng.normal(size=(2, 3))), t(self.rng.normal(size=(2, 1)))
        self.check(lambda: (a * b).sum(), a, b)

    def test_div(self):
        a = t(self.rng.normal(size=(3,)) + 3.0)
        b = t(self.rng.normal(size=(3,)) + 3.0)
        self.check(lambda: (a / b).sum(), a, b)

    def test_pow(self):
        a = t(np.abs(self.rng.normal(size=(3,))) + 0.5)
        self.check(lambda: (a**1.7).sum(), a)

    def test_matmul(self):
        a, b = t(self.rng.normal(size=(3, 4))), t(self.rng.normal(size=(4, 2)))
        self.check(lambda: (a @ b).sum(), a, b)

    def test_exp_log(self):
        a = t(np.abs(self.rng.normal(size=(4,))) + 0.5)
        self.check(lambda: (a.exp().log() * a).sum(), a)

    def test_tanh_sigmoid(self):
        a = t(self.rng.normal(size=(5,)))
        self.check(lambda: (a.tanh() * a.sigmoid()).sum(), a)

    def test_relu_away_from_kink(self):
        a = t(self.rng.normal(size=(6,)) + 3.0)  # keep clear of 0
        self.check(lambda: (a.relu() ** 2).sum(), a)

    def test_sum_mean(self):
        a = t(self.rng.normal(size=(3, 4)))
        self.check(lambda: (a.sum(axis=0) * a.mean(axis=0)).sum(), a)

    def test_getitem_slice(self):
        a = t(self.rng.normal(size=(4, 6)))
        self.check(lambda: (a[:, 1:4] ** 2).sum(), a)

    def test_getitem_fancy_with_duplicates(self):
        a = t(self.rng.normal(size=(5, 3)))
        idx = np.array([0, 2, 2, 4])
        self.check(lambda: (a[idx] ** 2).sum(), a)

    def test_reshape_transpose(self):
        a = t(self.rng.normal(size=(3, 4)))
        self.check(lambda: (a.reshape(4, 3).transpose() * a).sum(), a)

    def test_concat(self):
        a, b = t(self.rng.normal(size=(2, 3))), t(self.rng.normal(size=(2, 2)))
        self.check(lambda: (concat([a, b], axis=1) ** 2).sum(), a, b)

    def test_stack(self):
        a, b = t(self.rng.normal(size=(2, 3))), t(self.rng.normal(size=(2, 3)))
        self.check(lambda: (stack([a, b], axis=0) ** 2).sum(), a, b)

    def test_softmax(self):
        a = t(self.rng.normal(size=(3, 5)))
        w = Tensor(self.rng.normal(size=(3, 5)))
        self.check(lambda: (softmax(a, axis=1) * w).sum(), a)

    def test_squared_distance_both_sides(self):
        a, b = t(self.rng.normal(size=(4, 3))), t(self.rng.normal(size=(1, 3)))
        self.check(lambda: squared_distance(a, b).sum(), a, b)

    def test_3d_broadcast_chain(self):
        a = t(self.rng.normal(size=(2, 3, 4)))
        b = t(self.rng.normal(size=(2, 1, 4)))
        self.check(lambda: (((a - b) ** 2).sum(axis=2) ** 1.5).sum(), a, b)
