"""Tests for nn layers: Linear, Embedding, LSTM, StackedLSTM, BatchNorm."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm1d,
    Embedding,
    Linear,
    LSTM,
    Sequential,
    StackedLSTM,
    Tensor,
    check_gradients,
)


class TestModuleInfra:
    def test_parameter_discovery(self):
        lin = Linear(3, 2)
        assert len(lin.parameters()) == 2  # weight + bias

    def test_parameters_deduplicated(self):
        lin = Linear(2, 2)
        seq = Sequential(lin, lin)
        assert len(seq.parameters()) == 2

    def test_nested_module_list(self):
        stacked = StackedLSTM(3, 4, num_layers=2)
        # each LSTM: w_ih, w_hh, bias
        assert len(stacked.parameters()) == 6

    def test_train_eval_propagates(self):
        seq = Sequential(BatchNorm1d(2), Linear(2, 2))
        seq.eval()
        assert not seq.layers[0].training
        seq.train()
        assert seq.layers[0].training

    def test_zero_grad_clears(self):
        lin = Linear(2, 1)
        out = lin(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_num_parameters(self):
        lin = Linear(3, 2)
        assert lin.num_parameters() == 3 * 2 + 2


class TestLinear:
    def test_shape(self):
        lin = Linear(4, 3, rng=0)
        assert lin(Tensor(np.ones((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        lin = Linear(4, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradcheck(self):
        lin = Linear(3, 2, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        worst = check_gradients(lambda: (lin(x) ** 2).sum(), lin.parameters() + [x])
        assert worst < 1e-5

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        assert emb(np.array([1, 2, 3])).shape == (3, 4)

    def test_2d_lookup(self):
        emb = Embedding(10, 4, rng=0)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 4)

    def test_gradient_scatter_adds_duplicates(self):
        emb = Embedding(5, 3, rng=0)
        out = emb(np.array([1, 1, 2])).sum()
        out.backward()
        np.testing.assert_allclose(emb.weight.grad[1], 2 * np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_init_scale_default(self):
        """Default bound is 1/sqrt(dim): roughly unit-norm rows."""
        emb = Embedding(100, 16, rng=0)
        assert np.abs(emb.weight.data).max() <= 1.0 / 4.0
        norms = np.linalg.norm(emb.weight.data, axis=1)
        assert 0.3 < norms.mean() < 1.5

    def test_init_scale_custom_bound(self):
        emb = Embedding(100, 16, rng=0, bound=0.5 / 16)
        assert np.abs(emb.weight.data).max() <= 0.5 / 16


class TestLSTM:
    def test_output_shapes(self):
        lstm = LSTM(3, 5, rng=0)
        steps = [Tensor(np.ones((2, 3))) for _ in range(4)]
        outputs, final = lstm(steps)
        assert len(outputs) == 4
        assert final.shape == (2, 5)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            LSTM(3, 5)([])

    def test_forget_bias_initialized_to_one(self):
        lstm = LSTM(2, 3)
        assert np.all(lstm.bias.data[3:6] == 1.0)

    def test_mask_freezes_state(self):
        """A fully masked step must not change the hidden state."""
        lstm = LSTM(2, 3, rng=0)
        x = [Tensor(np.ones((1, 2))), Tensor(np.full((1, 2), 9.0))]
        mask = np.array([[1.0], [0.0]])
        _, h_masked = lstm(x, mask=mask)
        _, h_single = lstm(x[:1])
        np.testing.assert_allclose(h_masked.data, h_single.data)

    def test_gradcheck_through_time(self):
        lstm = LSTM(2, 3, rng=1)
        rng = np.random.default_rng(0)
        xs = [Tensor(rng.normal(size=(2, 2)), requires_grad=True) for _ in range(3)]
        def f():
            _, h = lstm(xs)
            return (h * h).sum()
        worst = check_gradients(f, lstm.parameters() + xs)
        assert worst < 1e-5

    def test_gradcheck_with_mask(self):
        lstm = LSTM(2, 3, rng=2)
        rng = np.random.default_rng(1)
        xs = [Tensor(rng.normal(size=(2, 2)), requires_grad=True) for _ in range(3)]
        mask = np.array([[1, 1], [1, 0], [0, 0]], dtype=float)
        def f():
            _, h = lstm(xs, mask=mask)
            return (h * h).sum()
        worst = check_gradients(f, lstm.parameters() + xs)
        assert worst < 1e-5


class TestStackedLSTM:
    def test_two_layers_compose(self):
        stacked = StackedLSTM(3, 4, num_layers=2, rng=0)
        steps = [Tensor(np.ones((2, 3))) for _ in range(3)]
        outputs, final = stacked(steps)
        assert final.shape == (2, 4)
        assert len(outputs) == 3

    def test_single_layer_matches_lstm(self):
        stacked = StackedLSTM(3, 4, num_layers=1, rng=5)
        lone = LSTM(3, 4, rng=5)
        # Same rng seed -> same initial weights.
        steps = [Tensor(np.ones((1, 3)))]
        np.testing.assert_allclose(stacked(steps)[1].data, lone(steps)[1].data)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            StackedLSTM(3, 4, num_layers=0)


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(64, 4)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)  # running stats = last batch
        x = Tensor(np.array([[0.0, 0.0], [2.0, 4.0]]))
        bn(x)
        bn.eval()
        out = bn(Tensor(np.array([[1.0, 2.0]]))).data
        np.testing.assert_allclose(out, [[0.0, 0.0]], atol=1e-2)

    def test_eval_mode_is_deterministic_wrt_batch(self):
        bn = BatchNorm1d(3)
        bn(Tensor(np.random.default_rng(1).normal(size=(16, 3))))
        bn.eval()
        single = bn(Tensor(np.ones((1, 3)))).data
        batch = bn(Tensor(np.ones((4, 3)))).data
        np.testing.assert_allclose(batch[0], single[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BatchNorm1d(3)(Tensor(np.ones((2, 4))))

    def test_gradcheck(self):
        bn = BatchNorm1d(3)
        x = Tensor(np.random.default_rng(2).normal(size=(6, 3)), requires_grad=True)
        worst = check_gradients(
            lambda: (bn(x) ** 2).sum(), [x, bn.gamma, bn.beta]
        )
        assert worst < 1e-4


class TestTraining:
    def test_linear_regression_converges(self):
        """The full stack (layer + autograd + Adam) must fit y = 2x + 1."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 1))
        y = 2.0 * x + 1.0
        lin = Linear(1, 1, rng=0)
        opt = Adam(lin.parameters(), lr=0.05)
        for _ in range(300):
            pred = lin(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert lin.weight.data[0, 0] == pytest.approx(2.0, abs=0.05)
        assert lin.bias.data[0] == pytest.approx(1.0, abs=0.05)
