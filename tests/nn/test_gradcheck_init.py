"""Tests for gradcheck helpers and initializers."""

import numpy as np
import pytest

from repro.nn import Tensor, check_gradients, numerical_gradient
from repro.nn import init


class TestNumericalGradient:
    def test_matches_analytic_on_quadratic(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        num = numerical_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_allclose(num, [2.0, 4.0], atol=1e-6)

    def test_restores_data(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        before = x.data.copy()
        numerical_gradient(lambda: (x * x).sum(), x)
        np.testing.assert_array_equal(x.data, before)


class TestCheckGradients:
    def test_passes_correct_graph(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        assert check_gradients(lambda: (x**3).sum(), [x]) < 1e-5

    def test_rejects_nonscalar(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        with pytest.raises(ValueError):
            check_gradients(lambda: x * 2, [x])

    def test_detects_wrong_gradient(self):
        """A deliberately broken backward must be caught."""
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def broken():
            out = (x * x).sum()
            # sabotage: double-count x's grad after the fact
            return out

        out = broken()
        out.backward()
        x.grad *= 2  # simulate a buggy op
        num = numerical_gradient(broken, x)
        assert not np.allclose(x.grad, num)


class TestInit:
    def test_xavier_bound(self):
        w = init.xavier_uniform((100, 50), rng=0)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w.data).max() <= bound
        assert w.requires_grad

    def test_xavier_deterministic(self):
        a = init.xavier_uniform((5, 5), rng=3)
        b = init.xavier_uniform((5, 5), rng=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_uniform_range(self):
        w = init.uniform((200,), -2.0, 3.0, rng=0)
        assert w.data.min() >= -2.0
        assert w.data.max() < 3.0

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)).data == 0)
        assert np.all(init.ones((2,)).data == 1)
        assert init.zeros((1,)).requires_grad
