"""Repo gate scripts and the :mod:`tools.reprolint` invariant checker.

The single-file gates (``check_api.py``, ``check_docs.py``,
``check_lint.py``) still run as plain scripts; this package marker exists
so ``python -m tools.reprolint`` and ``python -m tools.check`` resolve from
the repo root.
"""
