#!/usr/bin/env python
"""Run ruff (pinned) over the whole tree, skipping cleanly when absent.

The repo vendors no third-party tooling, so ruff may not exist in every
environment (the offline test container, for one).  This wrapper keeps
``make lint`` meaningful everywhere:

- ruff importable → run ``ruff check`` with the pinned rule set; non-zero
  on findings.  A major-version drift from :data:`PINNED` is reported as a
  warning (rule sets shift between majors) but the check still runs.
- ruff missing → print a skip notice and exit 0, so the default ``make
  test`` path stays green offline while CI images with ruff get the real
  check.

Rules are configured here (via command line) rather than in pyproject.toml
so the pin and the policy live in one reviewable place.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The ruff version this repo is linted against.
PINNED = "0.6.9"

#: What we lint: correctness-oriented rule families, not formatting.
#: E4/E7/E9 (pycodestyle errors), F (pyflakes), B (bugbear basics).
SELECT = "E4,E7,E9,F,B"

TARGETS = ["src", "tests", "tools", "benchmarks", "examples"]


def ruff_version() -> str | None:
    try:
        out = subprocess.run(
            [sys.executable, "-m", "ruff", "--version"],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    # "ruff 0.6.9" -> "0.6.9"
    return out.stdout.strip().split()[-1]


def main() -> int:
    version = ruff_version()
    if version is None:
        print(f"lint: ruff not installed; skipping (pinned {PINNED})")
        return 0
    if version.split(".")[:2] != PINNED.split(".")[:2]:
        print(
            f"lint: warning: ruff {version} differs from pinned {PINNED}; "
            "findings may drift",
            file=sys.stderr,
        )
    cmd = [
        sys.executable,
        "-m",
        "ruff",
        "check",
        "--select",
        SELECT,
        *TARGETS,
    ]
    print("lint:", " ".join(cmd[1:]))
    return subprocess.run(cmd, cwd=ROOT).returncode


if __name__ == "__main__":
    sys.exit(main())
