#!/usr/bin/env python
"""Run ruff (pinned) over the whole tree, skipping cleanly when absent.

The repo vendors no third-party tooling, so ruff may not exist in every
environment (the offline test container, for one).  This wrapper keeps
``make lint`` meaningful everywhere:

- ruff importable → run ``ruff check`` with the pinned rule set; non-zero
  on findings.  A major-version drift from :data:`PINNED` is reported as a
  warning (rule sets shift between majors) but the check still runs.
- ruff missing → print a skip notice and exit 0, so the default ``make
  test`` path stays green offline while CI images with ruff get the real
  check.

Rules are configured here (via command line) rather than in pyproject.toml
so the pin and the policy live in one reviewable place.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The ruff version this repo is linted against.
PINNED = "0.6.9"

#: What we lint: correctness-oriented rule families, not formatting.
#: E4/E7/E9 (pycodestyle errors), F (pyflakes), B (bugbear basics).
SELECT = "E4,E7,E9,F,B"

TARGETS = ["src", "tests", "tools", "benchmarks", "examples"]


def ruff_version_output() -> str | None:
    """Raw ``ruff --version`` stdout, or None when ruff is not runnable."""
    try:
        out = subprocess.run(
            [sys.executable, "-m", "ruff", "--version"],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return out.stdout


def parse_version(raw: str) -> str | None:
    """``"ruff 0.6.9"`` -> ``"0.6.9"``; None when the output has no X.Y.Z."""
    for token in raw.strip().split():
        parts = token.split(".")
        if len(parts) >= 2 and all(p.isdigit() for p in parts[:3] if p):
            return token
    return None


def main() -> int:
    raw = ruff_version_output()
    if raw is None:
        print(f"lint: ruff not installed; skipping (pinned {PINNED})")
        return 0
    version = parse_version(raw)
    if version is None:
        print(
            f"lint: cannot parse `ruff --version` output {raw.strip()!r}; "
            f"refusing to guess whether it matches pinned {PINNED}",
            file=sys.stderr,
        )
        return 1
    if version.split(".")[:2] != PINNED.split(".")[:2]:
        print(
            f"lint: warning: installed ruff {version} differs from pinned "
            f"{PINNED}; findings may drift between these versions",
            file=sys.stderr,
        )
    cmd = [
        sys.executable,
        "-m",
        "ruff",
        "check",
        "--select",
        SELECT,
        *TARGETS,
    ]
    print("lint:", " ".join(cmd[1:]))
    return subprocess.run(cmd, cwd=ROOT).returncode


if __name__ == "__main__":
    sys.exit(main())
