#!/usr/bin/env python
"""Run every repo gate behind one command with one-line verdicts.

``make check`` (which ``make test`` depends on) runs the four gates in
order — API surface, README mirrors, ruff wrapper, reprolint — captures
each one's output, and prints a single ``PASS``/``FAIL`` line per gate
plus a summary.  A failing gate's captured output is replayed in full so
nothing is hidden; the exit code is non-zero if any gate failed.

Run a single gate directly (``python tools/check_api.py`` etc.) for the
focused inner loop; this runner is the everything-at-once entry point.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: (name, argv) per gate, in execution order.  Every gate runs even when
#: an earlier one fails, so one ``make check`` reports all the damage.
GATES = [
    ("api-check", [sys.executable, "tools/check_api.py"]),
    ("docs-check", [sys.executable, "tools/check_docs.py"]),
    ("lint", [sys.executable, "tools/check_lint.py"]),
    ("reprolint", [sys.executable, "-m", "tools.reprolint", "src", "tests"]),
]


def run_gate(name: str, argv: list[str]) -> tuple[bool, float, str]:
    """Run one gate; returns (passed, seconds, combined output)."""
    started = time.perf_counter()
    proc = subprocess.run(
        argv, cwd=ROOT, capture_output=True, text=True
    )
    elapsed = time.perf_counter() - started
    output = (proc.stdout or "") + (proc.stderr or "")
    return proc.returncode == 0, elapsed, output


def main() -> int:
    failures = []
    for name, argv in GATES:
        passed, elapsed, output = run_gate(name, argv)
        verdict = "PASS" if passed else "FAIL"
        print(f"check: {verdict} {name} ({elapsed:.1f}s)")
        if not passed:
            failures.append(name)
            sys.stdout.write(output if output.endswith("\n") else output + "\n")
    if failures:
        print(f"check: {len(failures)}/{len(GATES)} gate(s) failed: "
              f"{', '.join(failures)}")
        return 1
    print(f"check: all {len(GATES)} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
