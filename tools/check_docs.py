#!/usr/bin/env python
"""Fail when README code blocks drift from the files they mirror.

The README's quickstart section embeds ``examples/quickstart.py`` verbatim
(the README promises it "runs as-is").  This checker extracts the first
fenced ``python`` block after the quickstart heading and requires it to match
the example file character for character (modulo a single trailing newline).

Run directly or via ``make docs-check``; exits non-zero on drift so CI and
pre-commit hooks can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: (README heading, fence language, mirrored file) triples to keep in sync.
MIRRORS = [
    ("## 60-second quickstart", "python", "examples/quickstart.py"),
    (
        "## Serving embeddings at a point in time",
        "python",
        "examples/serving_point_in_time.py",
    ),
    (
        "## Serving an event stream",
        "python",
        "examples/streaming_service.py",
    ),
    (
        "## Crash-safe serving and recovery",
        "python",
        "examples/crash_recovery.py",
    ),
    (
        "## Regenerating the paper's tables",
        "python",
        "examples/paper_tables.py",
    ),
    (
        "## Fast mode: the float32 precision policy",
        "python",
        "examples/fast_mode.py",
    ),
    (
        "## Scaling to millions of events",
        "python",
        "examples/million_edge_ingest.py",
    ),
    (
        "## Invariant checking",
        "python",
        "examples/invariant_checking.py",
    ),
    (
        "## Using every core",
        "python",
        "examples/parallel_training.py",
    ),
]


def extract_block(readme: str, heading: str, lang: str) -> str | None:
    """The first ``lang`` fence after ``heading``, or None."""
    at = readme.find(heading)
    if at < 0:
        return None
    match = re.search(rf"```{lang}\n(.*?)```", readme[at:], flags=re.DOTALL)
    return match.group(1) if match else None


def main() -> int:
    readme_path = ROOT / "README.md"
    if not readme_path.exists():
        print("docs-check: README.md is missing", file=sys.stderr)
        return 1
    readme = readme_path.read_text()

    failures = 0
    for heading, lang, rel in MIRRORS:
        block = extract_block(readme, heading, lang)
        source_path = ROOT / rel
        if block is None:
            print(
                f"docs-check: no ```{lang} block found after {heading!r} in README.md",
                file=sys.stderr,
            )
            failures += 1
            continue
        if not source_path.exists():
            print(f"docs-check: {rel} is missing", file=sys.stderr)
            failures += 1
            continue
        source = source_path.read_text()
        if block.rstrip("\n") != source.rstrip("\n"):
            block_lines = block.rstrip("\n").splitlines()
            src_lines = source.rstrip("\n").splitlines()
            line = next(
                (
                    i + 1
                    for i, (a, b) in enumerate(zip(block_lines, src_lines))
                    if a != b
                ),
                min(len(block_lines), len(src_lines)) + 1,
            )
            print(
                f"docs-check: README block under {heading!r} drifted from {rel} "
                f"(first difference at line {line})",
                file=sys.stderr,
            )
            failures += 1
        else:
            print(f"docs-check: README block under {heading!r} matches {rel}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
