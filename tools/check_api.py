#!/usr/bin/env python
"""Assert the public protocol surfaces are complete.

Two gates, both wired into ``make test`` via ``make api-check``:

1. **Method protocol (v2)** — every ``EmbeddingMethod`` subclass (see
   ``src/repro/base.py`` and docs/architecture.md) must expose ``fit`` /
   ``embeddings`` / ``encode`` / ``partial_fit`` / ``save`` / ``load``, and
   must override the four checkpoint/streaming hooks the base class leaves
   abstract (``_config_dict``, ``_state_dict``, ``_load_state_dict``,
   ``_apply_partial_fit``).  This keeps a new baseline from silently
   shipping with half a protocol.

2. **Task API (v2)** — every registered task type in
   ``repro.tasks.TASK_TYPES`` must subclass ``Task``, carry a matching
   ``name``, override ``prepare``/``evaluate`` and construct with defaults;
   ``Runner`` and ``ResultTable`` must expose the surface the experiment
   adapters and the CLI are built on.  This keeps a new scenario from
   shipping half a task.

3. **Precision policy** — ``repro.nn.dtypes`` must expose the policy
   surface (``Precision``/``get_precision``/``FLOAT64``/``FLOAT32``), every
   embedding method must accept ``precision="float32"`` at construction and
   report it via ``_precision_name()``, and ``EHNAConfig.validate`` must
   reject unknown precision names.  This keeps a new method (or a config
   regression) from silently ignoring the policy.

4. **Storage backends** — ``repro.storage`` must export the backend seam
   (``GraphStorage``/``ArrayStorage``/``MemmapStorage``/
   ``MemmapStorageWriter`` plus the format constants), both backends must
   implement the column protocol, and ``TemporalGraph`` must keep the
   ``from_storage``/``storage``/``storage_backend`` surface the memmap
   path is built on.  This keeps a new backend (or a graph refactor) from
   shipping half the seam.

5. **Parallelism** — ``repro.storage`` must export the shared-memory
   backend (``SharedMemoryStorage``/``SharedArrayPack``/``PackHandle``),
   ``TemporalGraph`` must keep ``to_shared``/``from_handle``/
   ``shared_handle``, ``repro.parallel`` must export the worker-pool
   surface, ``repro.core`` must export the flat-parameter seam
   (``FlatParams``/``FlatAdam``), ``EHNAConfig`` must carry and validate
   the ``num_workers``/``parallel``/``parallel_shards`` knobs, and the
   SGNS baselines must accept ``num_workers`` end to end.  This keeps a
   refactor from silently stranding the data-parallel path.

6. **Durability** — ``repro.stream`` must export the WAL surface
   (``WriteAheadLog``/``WALRecord`` and the error taxonomy),
   ``OnlineService`` must keep ``checkpoint``/``recover``/``close``, the
   fault-injection helpers in ``repro.utils.faults`` must stay importable
   (the crash-everywhere sweep is built on them), and checkpoints must keep
   the watermark field.  This keeps a serving refactor from silently
   dropping crash recovery.

Run directly; exits non-zero listing every violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Public methods every embedding method must expose.
REQUIRED_CALLABLES = (
    "fit",
    "embeddings",
    "embedding_of",
    "encode",
    "partial_fit",
    "save",
    "load",
)

#: Base-class stubs each concrete method must override (directly or via a
#: shared mixin/parent) for partial_fit and save/load to actually work.
REQUIRED_OVERRIDES = (
    "_apply_partial_fit",
    "_config_dict",
    "_state_dict",
    "_load_state_dict",
)


def all_method_classes():
    """Every concrete EmbeddingMethod subclass in the standard roster."""
    import repro.baselines  # noqa: F401 — registers the baselines
    import repro.core  # noqa: F401 — registers EHNA

    from repro.base import EmbeddingMethod

    found = []
    stack = list(EmbeddingMethod.__subclasses__())
    while stack:
        klass = stack.pop()
        stack.extend(klass.__subclasses__())
        if not getattr(klass, "__abstractmethods__", None):
            found.append(klass)
    return sorted(set(found), key=lambda c: c.__name__)


def check_class(klass) -> list[str]:
    from repro.base import EmbeddingMethod

    problems = []
    name = klass.__name__
    if not isinstance(getattr(klass, "name", None), str) or not klass.name:
        problems.append(f"{name}: missing a non-empty .name label")
    for attr in REQUIRED_CALLABLES:
        if not callable(getattr(klass, attr, None)):
            problems.append(f"{name}: missing callable {attr}()")
    for hook in REQUIRED_OVERRIDES:
        if getattr(klass, hook, None) is getattr(EmbeddingMethod, hook):
            problems.append(
                f"{name}: inherits the base-class stub for {hook} — "
                "partial_fit/save/load would raise NotImplementedError"
            )
    try:
        klass()
    except Exception as exc:  # default construction must work for load()
        problems.append(f"{name}: default construction failed: {exc}")
    return problems


#: Task names that must stay registered (the scenarios + timing + streaming).
REQUIRED_TASKS = (
    "link_prediction",
    "reconstruction",
    "node_classification",
    "temporal_ranking",
    "streaming_replay",
    "fit_timing",
)

#: The Runner/ResultTable surface the adapters and the CLI rely on.
RUNNER_CALLABLES = ("run",)
RESULT_TABLE_CALLABLES = (
    "to_markdown",
    "to_json",
    "from_json",
    "row",
    "cell",
    "reduction",
    "metric_names",
    "datasets",
    "methods",
    "tasks",
    "num_fits",
)


def check_task_layer() -> list[str]:
    """Violations of the task-API surface (empty list = clean)."""
    import repro.tasks as tasks
    from repro.tasks.base import Task

    problems = []
    for name in REQUIRED_TASKS:
        if name not in tasks.TASK_TYPES:
            problems.append(f"TASK_TYPES: required task {name!r} is not registered")
    for name, klass in tasks.TASK_TYPES.items():
        label = klass.__name__
        if not issubclass(klass, Task):
            problems.append(f"{label}: not a Task subclass")
            continue
        if klass.name != name:
            problems.append(
                f"{label}: registered as {name!r} but .name is {klass.name!r}"
            )
        for hook in ("prepare", "evaluate"):
            if getattr(klass, hook, None) is getattr(Task, hook):
                problems.append(f"{label}: does not override {hook}()")
        try:
            klass()
        except Exception as exc:  # CLI default construction must work
            problems.append(f"{label}: default construction failed: {exc}")
    for attr in RUNNER_CALLABLES:
        if not callable(getattr(tasks.Runner, attr, None)):
            problems.append(f"Runner: missing callable {attr}()")
    for attr in RESULT_TABLE_CALLABLES:
        if not callable(getattr(tasks.ResultTable, attr, None)):
            problems.append(f"ResultTable: missing callable {attr}()")
    return problems


def check_precision_surface() -> list[str]:
    """Violations of the precision-policy surface (empty list = clean)."""
    problems = []
    try:
        from repro.nn.dtypes import (
            FLOAT32,
            FLOAT64,
            PRECISIONS,
            Precision,
            UnknownPrecisionError,
            get_precision,
        )
    except ImportError as exc:
        return [f"precision: policy module missing pieces: {exc}"]

    for name in ("float64", "float32"):
        if name not in PRECISIONS or not isinstance(PRECISIONS[name], Precision):
            problems.append(f"precision: policy {name!r} is not registered")
    if get_precision("float64") is not FLOAT64 or get_precision("float32") is not FLOAT32:
        problems.append("precision: get_precision does not resolve the registry")
    try:
        get_precision("no-such-policy")
        problems.append("precision: unknown names must raise UnknownPrecisionError")
    except UnknownPrecisionError as exc:
        if "float64" not in str(exc) or "float32" not in str(exc):
            problems.append("precision: the error must list the valid policy names")

    from repro.core import EHNAConfig

    try:
        EHNAConfig(precision="no-such-policy").validate()
        problems.append("precision: EHNAConfig.validate accepted an unknown policy")
    except UnknownPrecisionError:
        pass

    for klass in all_method_classes():
        label = klass.__name__
        try:
            model = klass(precision="float32")
        except Exception as exc:
            problems.append(f"{label}: construction with precision='float32' failed: {exc}")
            continue
        if model._precision_name() != "float32":
            problems.append(
                f"{label}: _precision_name() reports "
                f"{model._precision_name()!r} for a float32 model"
            )
    return problems


#: The repro.stream exports the service examples and docs are built on.
STREAM_EXPORTS = (
    "EventBatch",
    "EventStreamLoader",
    "OnlineService",
    "LatencyTracker",
    "ThroughputTracker",
)

#: Loader/service callables the streaming loop relies on.
LOADER_CALLABLES = ("from_graph", "__iter__", "__len__")
SERVICE_CALLABLES = ("ingest", "absorb", "encode", "stats")

#: The buffered-growth surface TemporalGraph must keep for streaming.
GRAPH_STREAM_CALLABLES = (
    "extend_in_place",
    "compact",
    "take_fresh",
    "copy",
    "pin_time_scale",
)


def check_stream_surface() -> list[str]:
    """Violations of the streaming-layer surface (empty list = clean)."""
    import inspect

    problems = []
    try:
        import repro.stream as stream
    except ImportError as exc:
        return [f"stream: package missing: {exc}"]

    for name in STREAM_EXPORTS:
        if not hasattr(stream, name):
            problems.append(f"stream: repro.stream does not export {name}")
    loader = getattr(stream, "EventStreamLoader", None)
    if loader is not None:
        for attr in LOADER_CALLABLES:
            if not callable(getattr(loader, attr, None)):
                problems.append(f"EventStreamLoader: missing callable {attr}()")
    service = getattr(stream, "OnlineService", None)
    if service is not None:
        for attr in SERVICE_CALLABLES:
            if not callable(getattr(service, attr, None)):
                problems.append(f"OnlineService: missing callable {attr}()")

    from repro.graph.temporal_graph import TemporalGraph

    for attr in GRAPH_STREAM_CALLABLES:
        if not callable(getattr(TemporalGraph, attr, None)):
            problems.append(f"TemporalGraph: missing callable {attr}()")
    for prop in ("pending_events", "compactions", "time_scale"):
        if not isinstance(getattr(TemporalGraph, prop, None), property):
            problems.append(f"TemporalGraph: missing property {prop}")

    # partial_fit(edges=None) is the buffered-graph absorb path the service
    # is built on — the default must stay None.
    from repro.base import EmbeddingMethod

    sig = inspect.signature(EmbeddingMethod.partial_fit)
    edges = sig.parameters.get("edges")
    if edges is None or edges.default is not None:
        problems.append(
            "EmbeddingMethod: partial_fit must accept edges=None "
            "(the buffered-graph absorb path)"
        )
    return problems


#: The repro.storage exports the backend seam is built on.
STORAGE_EXPORTS = (
    "GraphStorage",
    "ArrayStorage",
    "MemmapStorage",
    "MemmapStorageWriter",
    "SharedMemoryStorage",
    "SharedArrayPack",
    "PackHandle",
    "StoreFormatError",
    "validate_event_columns",
    "is_store_dir",
    "COLUMNS",
    "COLUMN_DTYPES",
    "MANIFEST_NAME",
    "FORMAT_NAME",
    "FORMAT_VERSION",
)

#: The column protocol every backend must implement.
BACKEND_CALLABLES = ("column",)
BACKEND_PROPERTIES = ("src", "dst", "time", "weight", "num_events", "num_nodes")

#: The graph-side surface the memmap path is built on.
GRAPH_STORAGE_CALLABLES = ("from_storage",)
GRAPH_STORAGE_PROPERTIES = ("storage", "storage_backend")


def check_storage_surface() -> list[str]:
    """Violations of the storage-backend surface (empty list = clean)."""
    problems = []
    try:
        import repro.storage as storage
    except ImportError as exc:
        return [f"storage: package missing: {exc}"]

    for name in STORAGE_EXPORTS:
        if not hasattr(storage, name):
            problems.append(f"storage: repro.storage does not export {name}")

    for backend_name in ("ArrayStorage", "MemmapStorage", "SharedMemoryStorage"):
        backend = getattr(storage, backend_name, None)
        if backend is None:
            continue
        base = getattr(storage, "GraphStorage", object)
        if not issubclass(backend, base):
            problems.append(f"{backend_name}: not a GraphStorage subclass")
        for attr in BACKEND_CALLABLES:
            if not callable(getattr(backend, attr, None)):
                problems.append(f"{backend_name}: missing callable {attr}()")
        for prop in BACKEND_PROPERTIES:
            if not isinstance(getattr(backend, prop, None), property):
                problems.append(f"{backend_name}: missing property {prop}")
        if not isinstance(getattr(backend, "backend", None), str):
            problems.append(f"{backend_name}: missing backend label")

    writer = getattr(storage, "MemmapStorageWriter", None)
    if writer is not None:
        for attr in ("append", "finalize"):
            if not callable(getattr(writer, attr, None)):
                problems.append(f"MemmapStorageWriter: missing callable {attr}()")

    from repro.graph.temporal_graph import TemporalGraph

    for attr in GRAPH_STORAGE_CALLABLES:
        if not callable(getattr(TemporalGraph, attr, None)):
            problems.append(f"TemporalGraph: missing callable {attr}()")
    for prop in GRAPH_STORAGE_PROPERTIES:
        if not isinstance(getattr(TemporalGraph, prop, None), property):
            problems.append(f"TemporalGraph: missing property {prop}")
    return problems


#: The repro.parallel exports the data-parallel path is built on.
PARALLEL_EXPORTS = (
    "ParallelWalkEngine",
    "SharedParams",
    "fit_data_parallel",
    "hogwild_train_corpus",
    "spawn_pool",
    "shard_ranges",
    "shard_rng",
    "shard_seed_seq",
)

#: The flat-parameter seam workers rebind training state through.
PARAMS_EXPORTS = ("FlatParams", "FlatAdam", "ParamGroup", "ParamSpec")

#: The graph-side surface the shared-memory path is built on.
GRAPH_SHARED_CALLABLES = ("to_shared", "from_handle")

#: Config knobs the dispatcher in EHNA.fit keys on.
PARALLEL_CONFIG_FIELDS = ("num_workers", "parallel", "parallel_shards", "candidate_cap")


def check_parallel_surface() -> list[str]:
    """Violations of the data-parallelism surface (empty list = clean)."""
    import inspect

    problems = []
    try:
        import repro.parallel as parallel
    except ImportError as exc:
        return [f"parallel: package missing: {exc}"]

    for name in PARALLEL_EXPORTS:
        if not hasattr(parallel, name):
            problems.append(f"parallel: repro.parallel does not export {name}")

    import repro.core as core

    for name in PARAMS_EXPORTS:
        if not hasattr(core, name):
            problems.append(f"parallel: repro.core does not export {name}")

    from repro.graph.temporal_graph import TemporalGraph

    for attr in GRAPH_SHARED_CALLABLES:
        if not callable(getattr(TemporalGraph, attr, None)):
            problems.append(f"TemporalGraph: missing callable {attr}()")
    if not isinstance(getattr(TemporalGraph, "shared_handle", None), property):
        problems.append("TemporalGraph: missing property shared_handle")

    from dataclasses import fields

    from repro.core import EHNAConfig

    config_fields = {f.name for f in fields(EHNAConfig)}
    for name in PARALLEL_CONFIG_FIELDS:
        if name not in config_fields:
            problems.append(f"EHNAConfig: missing field {name}")
    try:
        EHNAConfig(parallel="no-such-mode").validate()
        problems.append("EHNAConfig.validate accepted an unknown parallel mode")
    except ValueError:
        pass

    # The SGNS engine (and every baseline built on it) must plumb the
    # worker count through to the Hogwild path.
    from repro.baselines.skipgram import SkipGramNS

    sig = inspect.signature(SkipGramNS.train_corpus)
    workers = sig.parameters.get("num_workers")
    if workers is None or workers.default != 1:
        problems.append(
            "SkipGramNS: train_corpus must accept num_workers=1 "
            "(the Hogwild dispatch seam)"
        )
    for klass in all_method_classes():
        if klass.__name__ in ("Node2Vec", "DeepWalk", "CTDNE"):
            try:
                model = klass(num_workers=2)
            except Exception as exc:
                problems.append(
                    f"{klass.__name__}: construction with num_workers=2 "
                    f"failed: {exc}"
                )
                continue
            if getattr(model, "num_workers", None) != 2:
                problems.append(
                    f"{klass.__name__}: constructor does not store num_workers"
                )

    # datasets.load(shared=True) is how benchmark grids request a
    # worker-attachable graph; the kwarg must stay (with its default off).
    from repro.datasets import load

    shared = inspect.signature(load).parameters.get("shared")
    if shared is None or shared.default is not False:
        problems.append("datasets.load: missing shared=False parameter")
    return problems


#: The WAL exports the durability layer is built on.
DURABILITY_STREAM_EXPORTS = (
    "WriteAheadLog",
    "WALRecord",
    "WALError",
    "WALCorruptionError",
)

#: WAL methods recovery and checkpoint pruning rely on.
WAL_CALLABLES = ("append", "records", "rotate", "prune", "sync_now", "close")

#: Service durability methods (recover is a classmethod, checked callable).
SERVICE_DURABILITY_CALLABLES = ("checkpoint", "recover", "close")

#: Fault-harness helpers the crash-everywhere sweep is built on.
FAULT_HELPERS = ("inject", "crash_point", "torn_write", "wrap_file", "active_fault")


def check_durability_surface() -> list[str]:
    """Violations of the crash-safety surface (empty list = clean)."""
    problems = []
    try:
        import repro.stream as stream
    except ImportError as exc:
        return [f"durability: stream package missing: {exc}"]

    for name in DURABILITY_STREAM_EXPORTS:
        if not hasattr(stream, name):
            problems.append(f"durability: repro.stream does not export {name}")
    wal = getattr(stream, "WriteAheadLog", None)
    if wal is not None:
        for attr in WAL_CALLABLES:
            if not callable(getattr(wal, attr, None)):
                problems.append(f"WriteAheadLog: missing callable {attr}()")
        for prop in ("next_seq", "first_seq", "last_seq", "truncated_tail"):
            if not isinstance(getattr(wal, prop, None), property):
                problems.append(f"WriteAheadLog: missing property {prop}")
    service = getattr(stream, "OnlineService", None)
    if service is not None:
        for attr in SERVICE_DURABILITY_CALLABLES:
            if not callable(getattr(service, attr, None)):
                problems.append(f"OnlineService: missing callable {attr}()")
        if not isinstance(getattr(service, "wal", None), property):
            problems.append("OnlineService: missing property wal")

    try:
        from repro.utils import faults
    except ImportError as exc:
        problems.append(f"durability: fault harness missing: {exc}")
        return problems
    for helper in FAULT_HELPERS:
        if not callable(getattr(faults, helper, None)):
            problems.append(f"faults: missing callable {helper}()")
    points = getattr(faults, "SERVICE_INJECTION_POINTS", ())
    if not points or not all(isinstance(p, str) for p in points):
        problems.append(
            "faults: SERVICE_INJECTION_POINTS must enumerate the service's "
            "crash points (the recovery sweep iterates it)"
        )
    if not isinstance(getattr(faults, "InjectedCrash", None), type):
        problems.append("faults: missing InjectedCrash exception type")

    from dataclasses import fields

    from repro.utils.checkpoint import Checkpoint

    if "watermark" not in {f.name for f in fields(Checkpoint)}:
        problems.append(
            "Checkpoint: missing the watermark field recovery resumes from"
        )
    return problems


def main() -> int:
    classes = all_method_classes()
    if len(classes) < 5:
        print(
            f"api-check: expected at least 5 embedding methods, found "
            f"{[c.__name__ for c in classes]}",
            file=sys.stderr,
        )
        return 1
    failures = 0
    for klass in classes:
        problems = check_class(klass)
        if problems:
            failures += 1
            for line in problems:
                print(f"api-check: {line}", file=sys.stderr)
        else:
            print(f"api-check: {klass.__name__} implements the v2 surface")
    task_problems = check_task_layer()
    if task_problems:
        failures += 1
        for line in task_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: task layer complete "
            f"({len(REQUIRED_TASKS)} tasks, Runner, ResultTable)"
        )
    precision_problems = check_precision_surface()
    if precision_problems:
        failures += 1
        for line in precision_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: precision policy complete "
            f"({len(classes)} methods accept float32, config validates)"
        )
    stream_problems = check_stream_surface()
    if stream_problems:
        failures += 1
        for line in stream_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: streaming surface complete "
            "(loader, service, buffered graph growth, absorb path)"
        )
    storage_problems = check_storage_surface()
    if storage_problems:
        failures += 1
        for line in storage_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: storage surface complete "
            "(backend protocol, memmap store + writer, graph seam)"
        )
    parallel_problems = check_parallel_surface()
    if parallel_problems:
        failures += 1
        for line in parallel_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: parallel surface complete "
            "(shared backend, flat params, worker pools, config knobs)"
        )
    durability_problems = check_durability_surface()
    if durability_problems:
        failures += 1
        for line in durability_problems:
            print(f"api-check: {line}", file=sys.stderr)
    else:
        print(
            "api-check: durability surface complete "
            "(WAL, checkpoint watermark, recover, fault harness)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
