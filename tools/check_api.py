#!/usr/bin/env python
"""Assert every ``EmbeddingMethod`` subclass implements the v2 surface.

The v2 protocol (see ``src/repro/base.py`` and docs/architecture.md) is the
contract the serving layer and the experiment harnesses rely on: every
method must expose ``fit`` / ``embeddings`` / ``encode`` / ``partial_fit``
/ ``save`` / ``load``, and must override the four checkpoint/streaming
hooks the base class leaves abstract (``_config_dict``, ``_state_dict``,
``_load_state_dict``, ``_apply_partial_fit``).  This gate keeps a new
baseline from silently shipping with half a protocol.

Run directly or via ``make api-check`` (part of the default ``make test``
path); exits non-zero listing every violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: Public methods every embedding method must expose.
REQUIRED_CALLABLES = (
    "fit",
    "embeddings",
    "embedding_of",
    "encode",
    "partial_fit",
    "save",
    "load",
)

#: Base-class stubs each concrete method must override (directly or via a
#: shared mixin/parent) for partial_fit and save/load to actually work.
REQUIRED_OVERRIDES = (
    "_apply_partial_fit",
    "_config_dict",
    "_state_dict",
    "_load_state_dict",
)


def all_method_classes():
    """Every concrete EmbeddingMethod subclass in the standard roster."""
    import repro.baselines  # noqa: F401 — registers the baselines
    import repro.core  # noqa: F401 — registers EHNA

    from repro.base import EmbeddingMethod

    found = []
    stack = list(EmbeddingMethod.__subclasses__())
    while stack:
        klass = stack.pop()
        stack.extend(klass.__subclasses__())
        if not getattr(klass, "__abstractmethods__", None):
            found.append(klass)
    return sorted(set(found), key=lambda c: c.__name__)


def check_class(klass) -> list[str]:
    from repro.base import EmbeddingMethod

    problems = []
    name = klass.__name__
    if not isinstance(getattr(klass, "name", None), str) or not klass.name:
        problems.append(f"{name}: missing a non-empty .name label")
    for attr in REQUIRED_CALLABLES:
        if not callable(getattr(klass, attr, None)):
            problems.append(f"{name}: missing callable {attr}()")
    for hook in REQUIRED_OVERRIDES:
        if getattr(klass, hook, None) is getattr(EmbeddingMethod, hook):
            problems.append(
                f"{name}: inherits the base-class stub for {hook} — "
                "partial_fit/save/load would raise NotImplementedError"
            )
    try:
        klass()
    except Exception as exc:  # default construction must work for load()
        problems.append(f"{name}: default construction failed: {exc}")
    return problems


def main() -> int:
    classes = all_method_classes()
    if len(classes) < 5:
        print(
            f"api-check: expected at least 5 embedding methods, found "
            f"{[c.__name__ for c in classes]}",
            file=sys.stderr,
        )
        return 1
    failures = 0
    for klass in classes:
        problems = check_class(klass)
        if problems:
            failures += 1
            for line in problems:
                print(f"api-check: {line}", file=sys.stderr)
        else:
            print(f"api-check: {klass.__name__} implements the v2 surface")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
