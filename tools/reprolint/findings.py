"""The one value every rule produces: a :class:`Finding`.

A finding pins a rule violation to a file and line.  The ``(rule_id, path,
message)`` triple — deliberately *without* the line — is the identity the
baseline machinery matches on, so grandfathered findings survive unrelated
edits that shift line numbers (see :mod:`tools.reprolint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    path:
        Posix-style path of the offending file, relative to the scan root
        (the repo root under ``make lint``).
    line:
        1-based source line the violation anchors to.
    rule_id:
        The emitting rule's identifier (``RNG001``, ``DTYPE001``, ...).
    message:
        Human-readable description of the violated contract.
    """

    path: str
    line: int
    rule_id: str
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict:
        """JSON-ready mapping (the JSON reporter's row shape)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (line defaults to 0 for baselines)."""
        return cls(
            path=str(row["path"]),
            line=int(row.get("line", 0)),
            rule_id=str(row["rule"]),
            message=str(row["message"]),
        )
