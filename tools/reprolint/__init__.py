"""reprolint — the repo's AST-based invariant checker.

The test suite can only *sample* the contracts earlier PRs established
(explicit-Generator determinism, the float32/int32 precision policy, the
read-only storage seam, fsync-before-``os.replace`` durability); reprolint
enforces them statically on every ``make test`` run.  Stdlib-only on
purpose: it must run in the offline container where ruff is absent.

Layout:

- :mod:`~tools.reprolint.engine` — single-pass AST visitor, rule registry,
  inline suppressions (``# reprolint: disable=RULE-ID``)
- :mod:`~tools.reprolint.rules` — the six shipped rule plugins
- :mod:`~tools.reprolint.baseline` — grandfathered-finding machinery
- :mod:`~tools.reprolint.reporters` — text + JSON output
- :mod:`~tools.reprolint.cli` — ``python -m tools.reprolint [paths...]``

See the "Static analysis" section of ``docs/architecture.md`` for each
rule's contract and the PR that introduced it.
"""

from tools.reprolint.baseline import load_baseline, split_by_baseline, write_baseline
from tools.reprolint.engine import (
    Engine,
    FileContext,
    LintConfig,
    Rule,
    default_rules,
    register,
    registered_rule_classes,
)
from tools.reprolint.findings import Finding
from tools.reprolint.reporters import Report, render_json, render_text

__all__ = [
    "Engine",
    "FileContext",
    "Finding",
    "LintConfig",
    "Report",
    "Rule",
    "default_rules",
    "load_baseline",
    "register",
    "registered_rule_classes",
    "render_json",
    "render_text",
    "split_by_baseline",
    "write_baseline",
]
