"""``python -m tools.reprolint`` — the command-line entry point.

Exit codes follow linter convention:

- ``0`` — checked everything, no (non-baselined) findings
- ``1`` — findings
- ``2`` — usage or configuration error (bad baseline, unknown flag)

The default target set matches the tier-1 gate: ``src tests`` relative to
the repo root, against the checked-in baseline next to this module.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.baseline import (
    BaselineError,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from tools.reprolint.engine import Engine, LintConfig, registered_rule_classes
from tools.reprolint.reporters import Report, render_json, render_text

#: The checked-in baseline the repo gate runs against.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST-based invariant checker for this repo's RNG, dtype, "
            "storage-seam, durability, API and test-marker contracts."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--root", default=None,
        help="scan root rule path-scopes resolve against (default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE.name} next to the package)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule id and contract, then exit",
    )
    return parser


def list_rules() -> str:
    rows = []
    for rule_cls in registered_rule_classes():
        rows.append(f"{rule_cls.rule_id}  {rule_cls.title}")
        rows.append(f"        {rule_cls.contract}")
    return "\n".join(rows)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    root = Path(args.root).resolve() if args.root else Path.cwd()
    engine = Engine(root, config=LintConfig(root))
    findings = engine.check_paths(args.paths)

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"reprolint: wrote {len(findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = []
    if not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
    fresh, matched = split_by_baseline(findings, baseline)

    report = Report(
        findings=fresh,
        baselined=matched,
        suppressed_count=engine.suppressed_count,
        files_checked=engine.files_checked,
    )
    rendered = (
        render_json(report) if args.format == "json" else render_text(report) + "\n"
    )
    if args.output:
        output_path = Path(args.output)
        output_path.parent.mkdir(parents=True, exist_ok=True)
        output_path.write_text(rendered)
        counts = report.summary_counts()
        print(
            f"reprolint: wrote {args.format} report to {output_path} "
            f"({counts['findings']} finding(s))"
        )
    else:
        sys.stdout.write(rendered)
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
