"""The rule plugins: each encodes one machine-checked repo contract.

Every rule is a :class:`~tools.reprolint.engine.Rule` subclass registered
via :func:`~tools.reprolint.engine.register`.  The seven shipped rules map
one-to-one onto invariants earlier PRs established by convention:

========  ==============================================================
RNG001    determinism: no process-global numpy RNG in ``src/``
DTYPE001  precision policy: explicit dtypes in policy modules
SEAM001   storage seam: no private column access outside graph/storage
DUR001    durability: fsync before every ``os.replace`` publish
API001    API hygiene: ``__all__`` exports carry docstrings
TEST001   test hygiene: pytest markers must be registered in pytest.ini
PAR001    parallelism: shared arrays mutate only inside ``parallel/``
========  ==============================================================

Path scopes are expressed against the scan root, so the same rules run
unchanged over fixture trees in the test suite.
"""

from __future__ import annotations

import ast

from tools.reprolint.engine import FileContext, Rule, dotted_name, register

#: numpy.random constructors that are fine to call (they build explicit
#: generator objects instead of touching the process-global stream).
_RNG_CONSTRUCTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64", "RandomState",
})

#: Generator factories that additionally must be *seeded*.
_SEED_REQUIRED = frozenset({"default_rng", "RandomState"})

#: Array constructors whose dtype defaults to float64, mapped to the
#: positional index their dtype parameter sits at.
_DTYPE_CONSTRUCTORS = {"zeros": 1, "empty": 1, "ones": 1, "full": 2, "arange": 3}

#: Modules the float32/int32 precision policy governs (PR5).
_PRECISION_DIRS = (
    "src/repro/nn/", "src/repro/walks/", "src/repro/graph/", "src/repro/stream/",
)

#: Private storage columns of TemporalGraph / GraphStorage backends (PR7).
_PRIVATE_COLUMNS = frozenset({"_src", "_dst", "_time", "_weight", "_store"})

#: The only packages allowed to reach through the storage seam.
_SEAM_DIRS = ("src/repro/graph/", "src/repro/storage/")

#: Files bound by the fsync-before-publish durability protocol (PR7/PR8).
_DURABILITY_FILES = ("src/repro/stream/wal.py", "src/repro/utils/checkpoint.py")
_DURABILITY_DIRS = ("src/repro/storage/",)

#: The only package allowed to unfreeze shared-memory array views (PR10).
_PARALLEL_DIRS = ("src/repro/parallel/",)

#: Marker names pytest itself defines; never required in pytest.ini.
_BUILTIN_MARKS = frozenset({
    "parametrize", "skip", "skipif", "xfail", "usefixtures", "filterwarnings",
})


def _in_dirs(rel: str, prefixes) -> bool:
    return any(rel.startswith(prefix) for prefix in prefixes)


def _has_dtype_argument(node: ast.Call, positional_index: int) -> bool:
    if len(node.args) > positional_index:
        return True
    for keyword in node.keywords:
        if keyword.arg is None or keyword.arg == "dtype":
            # ``**kwargs`` splats are unresolvable statically; trust them.
            return True
    return False


@register
class GlobalRngRule(Rule):
    """RNG001 — all randomness must flow through explicit Generators.

    PR2/PR4 made bitwise reproducibility the correctness argument: every
    stochastic path threads a seeded ``np.random.Generator`` (via
    ``utils/rng.ensure_rng`` or the Runner's per-cell derivation).  One call
    into the process-global stream — or an unseeded ``default_rng()`` —
    breaks fixed-seed equivalence silently.
    """

    rule_id = "RNG001"
    title = "no process-global numpy RNG"
    contract = (
        "src/ never samples from the global np.random stream and never "
        "builds an unseeded generator; thread an explicit seeded "
        "np.random.Generator (utils/rng.ensure_rng) instead"
    )
    interests = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel.startswith("src/")

    def visit(self, node: ast.Call, ctx: FileContext):
        qualified = ctx.resolve_call(node.func)
        if not qualified or not qualified.startswith("numpy.random."):
            return
        fn = qualified[len("numpy.random."):]
        if "." in fn:  # an attribute on a constructor result, not a sampler
            return
        if fn in _SEED_REQUIRED and not node.args and not node.keywords:
            yield self.finding(
                ctx, node.lineno,
                f"np.random.{fn}() without a seed draws OS entropy — "
                "pass a seed (or an existing Generator) so runs reproduce",
            )
        elif fn not in _RNG_CONSTRUCTORS:
            yield self.finding(
                ctx, node.lineno,
                f"np.random.{fn}() uses the process-global RNG stream; "
                "thread an explicit np.random.Generator "
                "(utils/rng.ensure_rng) instead",
            )


@register
class DtypeDefaultRule(Rule):
    """DTYPE001 — precision-policy modules allocate with explicit dtypes.

    PR5 made precision a policy: float arrays take the policy dtype, index
    arrays take the graph's index dtype.  A bare ``np.zeros(n)`` in a hot
    path silently re-introduces float64 compute (and 2x the memory) under
    the float32 fast mode.
    """

    rule_id = "DTYPE001"
    title = "explicit dtype in precision-policy modules"
    contract = (
        "nn/, walks/, graph/ and stream/ never call a float64-defaulting "
        "array constructor (np.zeros/empty/ones/arange/full) without an "
        "explicit dtype"
    )
    interests = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return _in_dirs(ctx.rel, _PRECISION_DIRS)

    def visit(self, node: ast.Call, ctx: FileContext):
        qualified = ctx.resolve_call(node.func)
        if not qualified or not qualified.startswith("numpy."):
            return
        fn = qualified[len("numpy."):]
        positional_index = _DTYPE_CONSTRUCTORS.get(fn)
        if positional_index is None or _has_dtype_argument(node, positional_index):
            return
        yield self.finding(
            ctx, node.lineno,
            f"np.{fn}(...) without dtype= defaults to float64/platform int "
            "inside a precision-policy module; state the dtype explicitly "
            "(nn/dtypes.py owns the policy)",
        )


@register
class StorageSeamRule(Rule):
    """SEAM001 — event columns are read through the storage seam only.

    PR7 put a ``GraphStorage`` backend under ``TemporalGraph``; code above
    the seam sees ``graph.src/dst/time/weight`` (public, backend-agnostic).
    Reaching for ``graph._src`` or ``graph._store`` couples a caller to one
    backend's memory layout and bypasses the compaction guard.
    """

    rule_id = "SEAM001"
    title = "no private storage-column access outside the seam"
    contract = (
        "only graph/ and storage/ touch ._src/._dst/._time/._weight/._store; "
        "everything else reads the public column properties"
    )
    interests = (ast.Attribute,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel.startswith("src/") and not _in_dirs(ctx.rel, _SEAM_DIRS)

    def visit(self, node: ast.Attribute, ctx: FileContext):
        if node.attr not in _PRIVATE_COLUMNS:
            return
        value = node.value
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            return  # a class's own private attribute, not a seam reach
        yield self.finding(
            ctx, node.lineno,
            f".{node.attr} is a private storage column of "
            "TemporalGraph/GraphStorage; outside graph/ and storage/, read "
            "the public surface (graph.src/dst/time/weight, graph.storage)",
        )


@register
class DurabilityRule(Rule):
    """DUR001 — every atomic publish fsyncs before it renames.

    PR8's crash-safety protocol: stage to a temp file, flush + fsync, then
    ``os.replace`` (and fsync the directory).  An ``os.replace`` with no
    preceding fsync in the same function can publish a name whose bytes are
    still in the page cache — exactly the torn state recovery cannot detect.
    """

    rule_id = "DUR001"
    title = "fsync before os.replace in durability code"
    contract = (
        "wal.py, utils/checkpoint.py and storage/ route every os.replace "
        "publish through an fsync (os.fsync / *fsync* helper / sync_now) "
        "earlier in the same function"
    )
    interests = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel in _DURABILITY_FILES or _in_dirs(ctx.rel, _DURABILITY_DIRS)

    def begin_file(self, ctx: FileContext) -> None:
        self._replaces: list[tuple[int, int]] = []  # (scope id, line)
        self._synced_scopes: dict[int, int] = {}  # scope id -> first sync line

    def _scope_id(self, ctx: FileContext) -> int:
        scope = ctx.current_scope()
        return id(scope) if scope is not None else 0

    def visit(self, node: ast.Call, ctx: FileContext):
        qualified = ctx.resolve_call(node.func)
        dotted = dotted_name(node.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        if qualified == "os.replace":
            self._replaces.append((self._scope_id(ctx), node.lineno))
        elif qualified == "os.fsync" or "fsync" in tail or tail == "sync_now":
            scope = self._scope_id(ctx)
            self._synced_scopes.setdefault(scope, node.lineno)
        return ()

    def end_file(self, ctx: FileContext):
        for scope, line in self._replaces:
            synced_at = self._synced_scopes.get(scope)
            if synced_at is None or synced_at >= line:
                yield self.finding(
                    ctx, line,
                    "os.replace publishes without a preceding fsync in this "
                    "function — flush + os.fsync the staged file first so a "
                    "crash cannot publish unsynced bytes",
                )


@register
class PublicDocstringRule(Rule):
    """API001 — the exported surface documents itself.

    ``tools/check_api.py`` gates the *shape* of the public protocol; this
    rule gates its *legibility*: anything a module exports via ``__all__``
    is part of the supported API and must say what it is for.
    """

    rule_id = "API001"
    title = "__all__ exports carry docstrings"
    contract = (
        "every function/class a src/ module lists in __all__ has a docstring"
    )
    interests = ()

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel.startswith("src/")

    @staticmethod
    def _exported_names(tree: ast.Module) -> set:
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        return {
                            element.value
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        }
        return set()

    def end_file(self, ctx: FileContext):
        exported = self._exported_names(ctx.tree)
        if not exported:
            return
        for node in ctx.tree.body:
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if node.name in exported and ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.finding(
                    ctx, node.lineno,
                    f"public {kind} {node.name!r} is exported via __all__ "
                    "but has no docstring",
                )


@register
class SharedMutationRule(Rule):
    """PAR001 — shared-memory arrays are written only inside ``parallel/``.

    PR10's isolation contract: :class:`~repro.storage.SharedArrayPack`
    hands out *frozen* views (``writeable=False``), and only the
    sanctioned sites in ``repro/parallel`` (the leader's live parameter
    view, the Hogwild worker tables) re-derive write access.  A
    ``writable=True`` call — or a flag flip back to writeable — anywhere
    else lets two processes race on the same buffer with no protocol.
    """

    rule_id = "PAR001"
    title = "no shared-array write access outside parallel/"
    contract = (
        "outside repro/parallel, nothing re-enables writes on a shared "
        "view: no writable=True keyword, no .flags.writeable flip and no "
        "setflags(write=...) to anything but False (freezing is fine)"
    )
    interests = (ast.Assign, ast.Call)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.rel.startswith("src/") and not _in_dirs(ctx.rel, _PARALLEL_DIRS)

    @staticmethod
    def _is_false(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and node.value is False

    def visit(self, node, ctx: FileContext):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "writeable"
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "flags"
                    and not self._is_false(node.value)
                ):
                    yield self.finding(
                        ctx, node.lineno,
                        ".flags.writeable set to a non-False value outside "
                        "repro/parallel — shared views stay frozen; only the "
                        "worker-pool modules may re-derive write access",
                    )
            return
        dotted = dotted_name(node.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        if tail == "setflags":
            for keyword in node.keywords:
                if keyword.arg == "write" and not self._is_false(keyword.value):
                    yield self.finding(
                        ctx, node.lineno,
                        "setflags(write=...) re-enables writes outside "
                        "repro/parallel — shared views stay frozen; only the "
                        "worker-pool modules may re-derive write access",
                    )
        for keyword in node.keywords:
            if keyword.arg == "writable" and not self._is_false(keyword.value):
                yield self.finding(
                    ctx, node.lineno,
                    "writable=True requests a mutable shared view outside "
                    "repro/parallel — read through the frozen default view, "
                    "or move the mutation into the worker-pool modules",
                )


@register
class MarkerRegistrationRule(Rule):
    """TEST001 — pytest markers are declared before they are used.

    The tier-1 suite deselects by marker (``-m "not stress and not
    scale"``); a typo'd or unregistered marker silently selects the wrong
    set instead of failing.  Every marker used in tests/ and benchmarks/
    must appear in pytest.ini's ``markers`` list.
    """

    rule_id = "TEST001"
    title = "pytest markers registered in pytest.ini"
    contract = (
        "every pytest.mark.<name> used under tests/ and benchmarks/ is "
        "registered in pytest.ini (builtin marks exempt)"
    )
    interests = (ast.Attribute,)

    def applies(self, ctx: FileContext) -> bool:
        if ctx.config.registered_markers is None:
            return False  # no pytest.ini at the scan root: nothing to check
        return ctx.rel.startswith(("tests/", "benchmarks/"))

    def visit(self, node: ast.Attribute, ctx: FileContext):
        value = node.value
        if not (
            isinstance(value, ast.Attribute)
            and value.attr == "mark"
            and isinstance(value.value, ast.Name)
            and value.value.id == "pytest"
        ):
            return
        name = node.attr
        if name in _BUILTIN_MARKS or name in ctx.config.registered_markers:
            return
        yield self.finding(
            ctx, node.lineno,
            f"pytest.mark.{name} is not registered in pytest.ini — add it "
            "to the markers list (tier-1 deselection depends on marker "
            "spelling)",
        )
