"""Checked-in baseline of grandfathered findings.

A baseline lets the checker gate *new* violations while an old one is being
paid down: findings whose ``(rule, path, message)`` triple appears in the
baseline file are reported as "baselined" and do not fail the run.  Matching
deliberately ignores line numbers so unrelated edits do not invalidate
entries; an entry goes stale (and should be deleted) only when the violation
itself is fixed or the file moves.

The shipped baseline (``tools/reprolint/baseline.json``) is empty — every
violation the six rules found at introduction time was fixed instead of
grandfathered — but the mechanism is load-bearing for future rules with
large existing debt.
"""

from __future__ import annotations

import json
from pathlib import Path

from tools.reprolint.findings import Finding

#: Baseline file format version (bumped on incompatible layout changes).
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but is not readable as a baseline."""


def load_baseline(path) -> list[Finding]:
    """Findings recorded in a baseline file (empty list when absent)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}")
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: not a reprolint baseline (expected version "
            f"{BASELINE_VERSION}, found {payload.get('version')!r})"
        )
    try:
        return [Finding.from_dict(row) for row in payload.get("findings", [])]
    except (KeyError, TypeError, ValueError) as exc:
        raise BaselineError(f"{path}: malformed baseline entry: {exc}")


def write_baseline(findings, path) -> Path:
    """Record ``findings`` as the new baseline; returns the path."""
    path = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def split_by_baseline(findings, baseline) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined) against baseline entries.

    Each baseline entry absorbs at most as many findings as it occurs in
    the baseline (duplicate keys are counted, not collapsed), so a file
    that *grows* a second identical violation still fails the run.
    """
    budget: dict[tuple, int] = {}
    for entry in baseline:
        budget[entry.key] = budget.get(entry.key, 0) + 1
    fresh: list[Finding] = []
    matched: list[Finding] = []
    for finding in sorted(findings):
        remaining = budget.get(finding.key, 0)
        if remaining > 0:
            budget[finding.key] = remaining - 1
            matched.append(finding)
        else:
            fresh.append(finding)
    return fresh, matched
