"""Single-pass AST engine that dispatches nodes to registered rules.

The shape of the framework:

- A :class:`Rule` subclass declares the node types it wants (``interests``),
  a path scope (``applies``), and yields :class:`Finding` objects from
  ``visit`` (per interesting node) and ``end_file`` (whole-file state).
- :func:`register` adds a rule class to the global registry;
  :func:`default_rules` instantiates them all.
- :class:`Engine` walks every requested file **once** with a single
  recursive visitor, handing each node to every interested rule, then
  filters inline suppressions (``# reprolint: disable=RULE-ID`` on the
  flagged line, ``# reprolint: disable-file=RULE-ID`` anywhere).

Everything is stdlib-only (``ast`` + ``configparser``): the checker must
run in the offline container where ruff and friends do not exist.
"""

from __future__ import annotations

import ast
import configparser
import re
from pathlib import Path

from tools.reprolint.findings import Finding

#: Inline suppression syntax: ``# reprolint: disable=RNG001,DTYPE001`` or
#: ``disable=all``; ``disable-file=...`` suppresses for the whole file.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_*,\- ]+)"
)

#: Directories never scanned.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: Rule id used for files the engine itself cannot parse.
PARSE_RULE_ID = "E000"


class LintConfig:
    """Repo-level facts rules need: the scan root and pytest's markers."""

    def __init__(self, root: Path, registered_markers: frozenset | None = None):
        self.root = Path(root)
        if registered_markers is None:
            registered_markers = load_registered_markers(self.root / "pytest.ini")
        self.registered_markers = registered_markers


def load_registered_markers(pytest_ini: Path) -> frozenset | None:
    """Marker names declared in ``pytest.ini`` (None when there is no file).

    ``None`` (as opposed to an empty set) tells marker rules to stand down:
    without a config there is no registry to check against.
    """
    if not pytest_ini.is_file():
        return None
    parser = configparser.ConfigParser()
    try:
        parser.read(pytest_ini)
    except configparser.Error:
        return None
    if not parser.has_option("pytest", "markers"):
        return frozenset()
    names = set()
    for line in parser.get("pytest", "markers").splitlines():
        line = line.strip()
        if line:
            names.add(line.split(":", 1)[0].strip())
    return frozenset(names)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Per-file state handed to every rule callback."""

    def __init__(self, path: Path, rel: str, tree: ast.Module, source: str,
                 config: LintConfig):
        self.path = path
        self.rel = rel
        self.tree = tree
        self.source = source
        self.config = config
        #: Function/Lambda nodes enclosing the node being visited (inner
        #: last); maintained by the engine's visitor.
        self.scope_stack: list[ast.AST] = []
        self._import_maps: tuple[dict, dict] | None = None

    # -- scope --------------------------------------------------------
    def current_scope(self) -> ast.AST | None:
        """The innermost enclosing function node, or None at module level."""
        return self.scope_stack[-1] if self.scope_stack else None

    # -- imports ------------------------------------------------------
    def _imports(self) -> tuple[dict, dict]:
        """(module aliases, imported names) for the whole file, lazily.

        ``module_aliases`` maps a local name to the dotted module it is
        bound to (``np`` → ``numpy``, ``npr`` → ``numpy.random``);
        ``imported_names`` maps a local name to its ``module.attr`` origin
        (``zeros`` → ``numpy.zeros``).
        """
        if self._import_maps is None:
            modules: dict[str, str] = {}
            names: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        modules[alias.asname or alias.name.split(".")[0]] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
                        if alias.asname is None and "." in alias.name:
                            # ``import numpy.random`` binds ``numpy``.
                            modules[alias.name.split(".")[0]] = alias.name.split(".")[0]
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        names[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._import_maps = (modules, names)
        return self._import_maps

    def resolve_call(self, func: ast.AST) -> str | None:
        """Fully qualified origin of a called name, import-aware.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when ``np``
        aliases numpy; a bare ``zeros`` resolves to ``numpy.zeros`` when it
        was imported from numpy.  Unresolvable calls return None.
        """
        modules, names = self._imports()
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if not rest:
            return names.get(head, None)
        origin = modules.get(head)
        if origin is not None:
            return f"{origin}.{rest}"
        via_name = names.get(head)
        if via_name is not None:
            return f"{via_name}.{rest}"
        return None


class Rule:
    """Base class every rule plugin extends.

    Subclasses set :attr:`rule_id`, :attr:`title`, :attr:`contract` (the
    docs line) and :attr:`interests` (AST node types to receive), and
    implement any of ``begin_file`` / ``visit`` / ``end_file``.
    """

    rule_id: str = ""
    title: str = ""
    #: One-line statement of the repo contract the rule encodes.
    contract: str = ""
    #: AST node classes this rule wants ``visit`` called for.
    interests: tuple = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx``'s file (path-scoped rules)."""
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Reset per-file state before the walk."""

    def visit(self, node: ast.AST, ctx: FileContext):
        """Yield findings for one node of an interesting type."""
        return ()

    def end_file(self, ctx: FileContext):
        """Yield findings that need whole-file state, after the walk."""
        return ()

    def finding(self, ctx: FileContext, line: int, message: str) -> Finding:
        """Construct a finding attributed to this rule."""
        return Finding(path=ctx.rel, line=int(line), rule_id=self.rule_id,
                       message=message)


#: The global rule registry, in registration order.
_REGISTRY: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if any(r.rule_id == rule_cls.rule_id for r in _REGISTRY):
        raise ValueError(f"duplicate rule id {rule_cls.rule_id!r}")
    _REGISTRY.append(rule_cls)
    return rule_cls


def registered_rule_classes() -> tuple[type[Rule], ...]:
    """Every registered rule class, in registration order."""
    import tools.reprolint.rules  # noqa: F401 — populates the registry

    return tuple(_REGISTRY)


def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in registered_rule_classes()]


def _suppressions(source: str) -> tuple[dict[int, set], set]:
    """(per-line suppressed ids, file-wide suppressed ids) from comments."""
    per_line: dict[int, set] = {}
    whole_file: set = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = {part.strip() for part in match.group(2).split(",") if part.strip()}
        if match.group(1) == "disable-file":
            whole_file |= ids
        else:
            per_line.setdefault(lineno, set()).update(ids)
    return per_line, whole_file


def _suppressed(finding: Finding, per_line: dict[int, set], whole_file: set) -> bool:
    for ids in (whole_file, per_line.get(finding.line, ())):
        if finding.rule_id in ids or "all" in ids or "*" in ids:
            return True
    return False


class _Visitor(ast.NodeVisitor):
    """One recursive pass dispatching nodes to interested rules."""

    _SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def __init__(self, dispatch: dict, ctx: FileContext, out: list):
        self.dispatch = dispatch
        self.ctx = ctx
        self.out = out

    def generic_visit(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            self.out.extend(rule.visit(node, self.ctx))
        if isinstance(node, self._SCOPE_NODES):
            self.ctx.scope_stack.append(node)
            super().generic_visit(node)
            self.ctx.scope_stack.pop()
        else:
            super().generic_visit(node)


class Engine:
    """Walk files, run rules, apply suppressions, collect findings."""

    def __init__(self, root, rules: list[Rule] | None = None,
                 config: LintConfig | None = None):
        self.root = Path(root).resolve()
        self.rules = default_rules() if rules is None else list(rules)
        self.config = config or LintConfig(self.root)
        #: Findings silenced by inline comments during the last run.
        self.suppressed_count = 0
        #: Files checked during the last run.
        self.files_checked = 0

    # -- file discovery -----------------------------------------------
    def iter_files(self, paths) -> list[Path]:
        """Expand the requested paths into a sorted list of ``.py`` files."""
        found: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not _SKIP_DIRS.intersection(candidate.parts):
                        found.add(candidate)
            elif path.suffix == ".py":
                found.add(path)
        return sorted(found)

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- checking -----------------------------------------------------
    def check_paths(self, paths) -> list[Finding]:
        """Check every file under ``paths``; returns sorted findings."""
        findings: list[Finding] = []
        self.suppressed_count = 0
        self.files_checked = 0
        for path in self.iter_files(paths):
            findings.extend(self.check_file(path))
            self.files_checked += 1
        return sorted(findings)

    def check_file(self, path: Path) -> list[Finding]:
        """Run every applicable rule over one file."""
        rel = self.relpath(Path(path))
        try:
            source = Path(path).read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            return [Finding(path=rel, line=getattr(exc, "lineno", 0) or 0,
                            rule_id=PARSE_RULE_ID,
                            message=f"cannot parse file: {exc}")]
        ctx = FileContext(Path(path), rel, tree, source, self.config)
        active = [rule for rule in self.rules if rule.applies(ctx)]
        if not active:
            return []
        dispatch: dict[type, list[Rule]] = {}
        for rule in active:
            rule.begin_file(ctx)
            for node_type in rule.interests:
                dispatch.setdefault(node_type, []).append(rule)
        raw: list[Finding] = []
        _Visitor(dispatch, ctx, raw).visit(tree)
        for rule in active:
            raw.extend(rule.end_file(ctx))
        per_line, whole_file = _suppressions(source)
        kept = []
        for finding in raw:
            if _suppressed(finding, per_line, whole_file):
                self.suppressed_count += 1
            else:
                kept.append(finding)
        return kept
