"""Text and JSON reporters over a finished check run.

Both consume a :class:`Report` — findings split against the baseline plus
run counters — so the CLI builds one value and picks a serialization.  The
JSON shape is versioned and stable: ``make lint-report`` archives it under
``benchmarks/results/lint.json`` so invariant debt is tracked across PRs
the same way the perf numbers are.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from tools.reprolint.findings import Finding

#: JSON report format version.
REPORT_VERSION = 1


@dataclass
class Report:
    """Everything a reporter needs about one run."""

    findings: list[Finding] = field(default_factory=list)  # new (failing)
    baselined: list[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.findings)

    def summary_counts(self) -> dict:
        by_rule: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        return {
            "files_checked": self.files_checked,
            "findings": len(self.findings),
            "baselined": len(self.baselined),
            "suppressed": self.suppressed_count,
            "by_rule": dict(sorted(by_rule.items())),
        }


def render_text(report: Report) -> str:
    """One ``path:line: RULE message`` row per finding plus a summary line."""
    lines = [
        f"{finding.path}:{finding.line}: {finding.rule_id} {finding.message}"
        for finding in report.findings
    ]
    counts = report.summary_counts()
    status = "FAIL" if report.failed else "OK"
    lines.append(
        f"reprolint: {status} — {counts['findings']} finding(s) across "
        f"{counts['files_checked']} file(s) "
        f"({counts['baselined']} baselined, {counts['suppressed']} suppressed)"
    )
    return "\n".join(lines)


def render_json(report: Report) -> str:
    """Versioned JSON document with findings, baselined rows and counters."""
    payload = {
        "version": REPORT_VERSION,
        "summary": report.summary_counts(),
        "findings": [finding.to_dict() for finding in report.findings],
        "baselined": [finding.to_dict() for finding in report.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
