"""Skip-gram with negative sampling (SGNS) — the engine behind the
DeepWalk / Node2Vec / CTDNE baselines.

Given a corpus of node "sentences" (random walks), SGNS learns input vectors
``W_in`` and output vectors ``W_out`` such that co-occurring nodes score high
under ``σ(u·v)`` and sampled noise nodes score low [38].  Training is
vectorized mini-batch SGD in numpy; duplicate indices inside a batch are
handled with ``np.add.at`` so gradients accumulate correctly.
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import Trainer
from repro.nn.dtypes import get_precision
from repro.utils.alias import AliasTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive


def sentences_to_pairs(sentences: list[list[int]], window: int, rng=None) -> np.ndarray:
    """Expand sentences into (center, context) pairs within ``window``.

    The pair list is shuffled so mini-batches mix sentences.
    """
    check_positive("window", window)
    rng = ensure_rng(rng)
    centers: list[int] = []
    contexts: list[int] = []
    for sent in sentences:
        n = len(sent)
        for i, center in enumerate(sent):
            lo = max(0, i - window)
            hi = min(n, i + window + 1)
            for j in range(lo, hi):
                if j != i:
                    centers.append(center)
                    contexts.append(sent[j])
    if not centers:
        raise ValueError("corpus produced no training pairs")
    pairs = np.stack(
        [np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)],
        axis=1,
    )
    rng.shuffle(pairs)
    return pairs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class SkipGramNS:
    """SGNS trainer over a fixed vocabulary of node ids."""

    def __init__(
        self,
        num_nodes: int,
        dim: int = 32,
        num_negatives: int = 5,
        lr: float = 0.025,
        noise_weights=None,
        clip: float = 5.0,
        seed=None,
        precision: str = "float64",
    ):
        check_positive("num_nodes", num_nodes)
        check_positive("dim", dim)
        check_positive("num_negatives", num_negatives)
        check_positive("lr", lr)
        check_positive("clip", clip)
        rng = ensure_rng(seed)
        self.num_nodes = num_nodes
        self.dim = dim
        self.num_negatives = num_negatives
        self.lr = lr
        self.clip = clip
        # Weight tables follow the shared precision policy; the RNG stream
        # is consumed in float64 and narrowed afterwards, so a float32 model
        # initializes from bitwise the same draws as its float64 twin.
        self.precision = get_precision(precision).name
        self._real = get_precision(precision).real
        bound = 0.5 / dim
        self.w_in = rng.uniform(-bound, bound, size=(num_nodes, dim)).astype(
            self._real, copy=False
        )
        self.w_out = np.zeros((num_nodes, dim), dtype=self._real)
        if noise_weights is None:
            noise_weights = np.ones(num_nodes)
        else:
            noise_weights = np.asarray(noise_weights, dtype=np.float64)
            if noise_weights.shape != (num_nodes,):
                raise ValueError("noise_weights must have one entry per node")
        # Kept alongside the alias table so Hogwild workers can rebuild
        # their own sampler (the packed table itself is not portable).
        self._noise_weights = np.asarray(noise_weights, dtype=np.float64)
        self._noise = AliasTable(noise_weights)
        self._rng = rng

    def train_pairs(self, pairs: np.ndarray, batch_size: int = 64) -> float:
        """One pass of SGD over (center, context) pairs; returns mean loss.

        Batches stay small by default: within a batch, updates to a repeated
        node accumulate (``np.add.at``), so very large batches over small
        vocabularies would multiply the effective step size and diverge.
        """
        check_positive("batch_size", batch_size)
        total, count = 0.0, 0
        for lo in range(0, pairs.shape[0], batch_size):
            batch = pairs[lo : lo + batch_size]
            total += self._step(batch[:, 0], batch[:, 1]) * batch.shape[0]
            count += batch.shape[0]
        return total / max(count, 1)

    def train_corpus(
        self,
        sentences: list[list[int]],
        window: int = 5,
        epochs: int = 1,
        batch_size: int = 64,
        callbacks=(),
        name: str = "SGNS",
        num_workers: int = 1,
    ) -> list[float]:
        """Train on walk sentences; returns per-epoch mean losses.

        The epoch loop is the shared :class:`~repro.core.trainer.Trainer`;
        every epoch re-expands the corpus into freshly shuffled pairs
        (``epoch_items``), so batching stays randomized without a second
        shuffle pass.

        ``num_workers >= 2`` delegates to
        :func:`repro.parallel.hogwild.hogwild_train_corpus`: the weight
        tables move to shared memory and that many spawn workers update
        them lock-free.  Faster on multicore machines but *not* bitwise
        reproducible (see that module's nondeterminism note);
        ``num_workers=1`` (default) keeps this serial, deterministic loop.
        """
        if num_workers != 1:
            from repro.parallel.hogwild import hogwild_train_corpus

            return hogwild_train_corpus(
                self,
                sentences,
                window=window,
                epochs=epochs,
                batch_size=batch_size,
                num_workers=num_workers,
                callbacks=callbacks,
                name=name,
            )
        current: dict = {}

        def epoch_items(epoch, rng):
            current["pairs"] = sentences_to_pairs(sentences, window, rng)
            return np.arange(current["pairs"].shape[0])

        def step(idx):
            batch = current["pairs"][idx]
            return self._step(batch[:, 0], batch[:, 1])

        trainer = Trainer(
            epochs=epochs,
            batch_size=batch_size,
            rng=self._rng,
            callbacks=callbacks,
            shuffle=False,  # sentences_to_pairs already shuffles
            name=name,
        )
        return trainer.run(step, epoch_items=epoch_items)

    def grow(self, num_nodes: int, noise_weights=None) -> None:
        """Extend the vocabulary to ``num_nodes`` ids (streaming updates).

        New input rows are initialized like fresh ones (uniform in
        ``0.5/dim``), new output rows start at zero; existing vectors are
        untouched.  Pass ``noise_weights`` to rebuild the negative-sampling
        table against the grown graph's degrees.
        """
        if num_nodes < self.num_nodes:
            raise ValueError(
                f"cannot shrink vocabulary from {self.num_nodes} to {num_nodes}"
            )
        extra = num_nodes - self.num_nodes
        if extra:
            bound = 0.5 / self.dim
            fresh = self._rng.uniform(-bound, bound, size=(extra, self.dim))
            self.w_in = np.vstack([self.w_in, fresh.astype(self._real, copy=False)])
            self.w_out = np.vstack(
                [self.w_out, np.zeros((extra, self.dim), dtype=self._real)]
            )
            self.num_nodes = num_nodes
            if noise_weights is None:
                # Keep the stored weights vocabulary-sized (new nodes get
                # unit weight) even when the caller keeps the old table.
                self._noise_weights = np.concatenate(
                    [self._noise_weights, np.ones(extra)]
                )
        if noise_weights is not None:
            noise_weights = np.asarray(noise_weights, dtype=np.float64)
            if noise_weights.shape != (self.num_nodes,):
                raise ValueError("noise_weights must have one entry per node")
            self._noise_weights = noise_weights
            self._noise = AliasTable(noise_weights)

    def _step(self, centers: np.ndarray, contexts: np.ndarray) -> float:
        b = centers.size
        q = self.num_negatives
        negs = self._noise.sample(self._rng, size=(b, q))

        v = self.w_in[centers]  # (B, d)
        u_pos = self.w_out[contexts]  # (B, d)
        u_neg = self.w_out[negs]  # (B, Q, d)

        s_pos = np.einsum("bd,bd->b", v, u_pos)
        s_neg = np.einsum("bd,bqd->bq", v, u_neg)
        sig_pos = _sigmoid(s_pos)
        sig_neg = _sigmoid(s_neg)

        # dL/ds for L = -log σ(s_pos) - Σ log σ(-s_neg)
        g_pos = sig_pos - 1.0  # (B,)
        g_neg = sig_neg  # (B, Q)

        c = self.clip
        grad_v = np.clip(
            g_pos[:, None] * u_pos + np.einsum("bq,bqd->bd", g_neg, u_neg), -c, c
        )
        grad_u_pos = np.clip(g_pos[:, None] * v, -c, c)
        grad_u_neg = np.clip(g_neg[:, :, None] * v[:, None, :], -c, c)

        lr = self.lr
        np.add.at(self.w_in, centers, -lr * grad_v)
        np.add.at(self.w_out, contexts, -lr * grad_u_pos)
        np.add.at(
            self.w_out, negs.ravel(), -lr * grad_u_neg.reshape(b * q, self.dim)
        )

        with np.errstate(divide="ignore"):
            loss = -np.log(np.clip(sig_pos, 1e-12, None)).sum() - np.log(
                np.clip(1.0 - sig_neg, 1e-12, None)
            ).sum()
        return float(loss) / b

    def embeddings(self) -> np.ndarray:
        """The learned input vectors (the standard word2vec output)."""
        return self.w_in.copy()


def degree_noise_weights(degrees: np.ndarray, power: float = 0.75) -> np.ndarray:
    """The ``d^0.75`` noise distribution shared by all methods (Section IV.D)."""
    check_non_negative("power", power)
    return np.asarray(degrees, dtype=np.float64) ** power


class SGNSCheckpointMixin:
    """Protocol-v2 checkpoint hooks shared by the SGNS-backed methods.

    Hosts expose ``self._model`` (a :class:`SkipGramNS`), ``self.graph`` and
    ``self._rng``, plus a ``_new_model(graph)`` factory; the trained state is
    just the two weight tables.
    """

    def _state_dict(self) -> tuple[dict, dict]:
        if self._model is None:
            raise RuntimeError("call fit() before save()")
        arrays = {"w_in": self._model.w_in, "w_out": self._model.w_out}
        return arrays, {"loss_history": getattr(self, "loss_history", [])}

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        from repro.utils.checkpoint import CheckpointError

        if self.graph is None:
            raise CheckpointError(f"{type(self).__name__} checkpoint lacks its graph")
        # Init weights come from a throwaway generator (they are overwritten
        # below), so the restored RNG stream stays untouched.
        saved_rng = self._rng
        self._rng = ensure_rng(0)
        self._model = self._new_model(self.graph)
        self._rng = saved_rng
        self._model._rng = saved_rng
        for key in ("w_in", "w_out"):
            if key not in arrays:
                raise CheckpointError(f"checkpoint is missing array {key!r}")
            if arrays[key].shape != getattr(self._model, key).shape:
                raise CheckpointError(
                    f"checkpoint array {key!r} has shape {arrays[key].shape}, "
                    f"expected {getattr(self._model, key).shape}"
                )
            # Loading casts into the model's policy dtype (a no-op when the
            # archive was saved under the same precision).
            setattr(self._model, key, np.asarray(arrays[key], dtype=self._model._real))
        self.loss_history = [float(x) for x in meta.get("loss_history", [])]
