"""Baseline embedding methods compared against EHNA in Section V."""

from repro.baselines.ctdne import CTDNE
from repro.baselines.htne import HTNE
from repro.baselines.line import LINE
from repro.baselines.node2vec import DeepWalk, Node2Vec
from repro.baselines.skipgram import SkipGramNS, degree_noise_weights, sentences_to_pairs

__all__ = [
    "Node2Vec",
    "DeepWalk",
    "CTDNE",
    "LINE",
    "HTNE",
    "SkipGramNS",
    "sentences_to_pairs",
    "degree_noise_weights",
]
