"""CTDNE baseline [12]: continuous-time dynamic network embeddings.

CTDNE replaces node2vec's static walks with *time-respecting* walks (each
step moves to an edge no older than the previous one), then trains the same
skip-gram model, so co-occurrence is only counted along temporally valid
paths.  Following Section V.C we use uniform initial edge selection and
uniform node selection within the walk.

Although training is time-aware, the output is one frozen vector per node,
so ``encode(nodes, at=...)`` inherits the base class's time-invariant table
lookup.  ``partial_fit`` extends the graph and continues SGNS training on
time-respecting walks started *from the fresh edges themselves* — exactly
CTDNE's initial-edge sampling, restricted to the arrivals.
"""

from __future__ import annotations

import numpy as np

from repro.base import EmbeddingMethod
from repro.baselines.skipgram import (
    SGNSCheckpointMixin,
    SkipGramNS,
    degree_noise_weights,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.nn.dtypes import get_precision
from repro.utils.rng import ensure_rng
from repro.walks.ctdne import CTDNEWalker


class CTDNE(SGNSCheckpointMixin, EmbeddingMethod):
    """Time-respecting walks + SGNS."""

    name = "CTDNE"

    def __init__(
        self,
        dim: int = 32,
        walks_per_node: int = 10,
        walk_length: int = 20,
        window: int = 5,
        num_negatives: int = 5,
        epochs: int = 2,
        lr: float = 0.025,
        seed=None,
        precision: str = "float64",
        num_workers: int = 1,
    ):
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.precision = get_precision(precision).name
        # num_workers >= 2 trains SGNS Hogwild-style over shared tables
        # (nondeterministic; see repro.parallel.hogwild); 1 stays serial.
        self.num_workers = num_workers
        self._rng = ensure_rng(seed)
        self.graph: TemporalGraph | None = None
        self._model: SkipGramNS | None = None

    def _new_model(self, graph: TemporalGraph) -> SkipGramNS:
        return SkipGramNS(
            graph.num_nodes,
            dim=self.dim,
            num_negatives=self.num_negatives,
            lr=self.lr,
            noise_weights=degree_noise_weights(graph.degrees()),
            seed=self._rng,
            precision=self.precision,
        )

    def fit(self, graph: TemporalGraph, callbacks=()) -> "CTDNE":
        self.graph = graph
        walker = CTDNEWalker(graph)
        # Match the walk budget of the static baselines: one temporal walk
        # per node per round, started from uniformly sampled edges.
        num_walks = self.walks_per_node * graph.num_nodes
        sentences = walker.corpus(num_walks, self.walk_length, self._rng)
        if not sentences:
            raise RuntimeError("CTDNE sampled no usable walks")
        self._model = self._new_model(graph)
        self.loss_history = self._model.train_corpus(
            sentences,
            window=self.window,
            epochs=self.epochs,
            callbacks=callbacks,
            name=self.name,
            num_workers=self.num_workers,
        )
        return self

    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        if self._model is None:
            raise RuntimeError("call fit() before partial_fit()")
        self._model.grow(
            graph.num_nodes, noise_weights=degree_noise_weights(graph.degrees())
        )
        walker = CTDNEWalker(graph)
        starts = np.repeat(fresh_edge_ids, self.walks_per_node)
        walks = walker.engine.ctdne(starts, self.walk_length, self._rng)
        sentences = [w.nodes for w in walks if len(w) > 1]
        if not sentences:
            return
        self.loss_history.extend(
            self._model.train_corpus(
                sentences,
                window=self.window,
                epochs=epochs if epochs is not None else 1,
                name=self.name,
            )
        )

    def embeddings(self) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._model.embeddings()

    # -- checkpointing (protocol v2) -----------------------------------
    def _config_dict(self) -> dict:
        return {
            "dim": self.dim,
            "walks_per_node": self.walks_per_node,
            "walk_length": self.walk_length,
            "window": self.window,
            "num_negatives": self.num_negatives,
            "epochs": self.epochs,
            "lr": self.lr,
            "precision": self.precision,
            "num_workers": self.num_workers,
        }

