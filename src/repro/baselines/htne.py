"""HTNE baseline [14]: Hawkes-process temporal network embedding.

HTNE models *neighborhood formation* as a Hawkes process: the intensity of
node ``x`` acquiring neighbor ``y`` at time ``t`` is a base rate plus
excitation from ``x``'s recent historical neighbors, decayed exponentially::

    λ̃(y|x, t) = -||e_x - e_y||² + (1/|H|) Σ_{(h_i, t_i) ∈ H_x(t)}
                 exp(-δ (t - t_i)) · (-||e_{h_i} - e_y||²)

(the squared-Euclidean "similarity" and per-source decay follow the original
paper; we use uniform history weights — HTNE's non-attention variant — and a
single learnable global decay ``δ``).  Training maximizes the intensity of
observed formations against degree-biased negatives through a sigmoid,
word2vec style.  Only *direct* historical neighbors excite the process —
exactly the limitation (no influence from surrounding non-neighbors) that
EHNA's historical-neighborhood walks remove, as Section II argues.

Gradients are derived in closed form and applied with ``np.add.at``.
"""

from __future__ import annotations

import numpy as np

from repro.base import EmbeddingMethod
from repro.baselines.skipgram import _sigmoid, degree_noise_weights
from repro.core.trainer import Trainer
from repro.nn.dtypes import get_precision
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import AliasTable
from repro.utils.checkpoint import CheckpointError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class HTNE(EmbeddingMethod):
    """Hawkes-process temporal embedding with closed-form SGD."""

    name = "HTNE"

    def __init__(
        self,
        dim: int = 32,
        history_length: int = 5,
        num_negatives: int = 5,
        epochs: int = 5,
        batch_size: int = 64,
        lr: float = 0.02,
        init_decay: float = 1.0,
        clip: float = 2.0,
        seed=None,
        precision: str = "float64",
    ):
        check_positive("dim", dim)
        check_positive("history_length", history_length)
        check_positive("num_negatives", num_negatives)
        check_positive("epochs", epochs)
        check_positive("lr", lr)
        check_positive("clip", clip)
        self.dim = dim
        self.history_length = history_length
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.init_decay = init_decay
        self.clip = clip
        self.precision = get_precision(precision).name
        self._real = get_precision(precision).real
        self._rng = ensure_rng(seed)
        self.graph: TemporalGraph | None = None
        self._emb: np.ndarray | None = None
        self.decay: float = init_decay
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _build_events(self, graph: TemporalGraph, edge_ids=None):
        """Neighborhood-formation events with padded per-source histories.

        Every directed view ``x -> y`` of each edge is an event; its history
        is the (up to ``history_length``) most recent earlier neighbors of
        ``x`` on the [0, 1] time scale.  ``edge_ids`` restricts the event
        construction to a subset of edges (the incremental-training path);
        histories still look back over the *whole* graph.
        """
        h = self.history_length
        times01 = graph.times01()
        events_x, events_y, events_t = [], [], []
        hist_ids, hist_t, hist_mask = [], [], []
        if edge_ids is None:
            edge_ids = range(graph.num_edges)
        for e in edge_ids:
            t_raw = float(graph.time[e])
            t01 = float(times01[e])
            for x, y in ((int(graph.src[e]), int(graph.dst[e])),
                         (int(graph.dst[e]), int(graph.src[e]))):
                nbrs, _times, eids = graph.events_before(x, t_raw, inclusive=False)
                ids = np.zeros(h, dtype=np.int64)
                ts = np.zeros(h, dtype=np.float64)
                mask = np.zeros(h, dtype=np.float64)
                if nbrs.size:
                    take = min(h, nbrs.size)
                    ids[:take] = nbrs[-take:]
                    ts[:take] = times01[eids[-take:]]
                    mask[:take] = 1.0
                events_x.append(x)
                events_y.append(y)
                events_t.append(t01)
                hist_ids.append(ids)
                hist_t.append(ts)
                hist_mask.append(mask)
        return (
            np.asarray(events_x, dtype=np.int64),
            np.asarray(events_y, dtype=np.int64),
            np.asarray(events_t, dtype=np.float64),
            np.stack(hist_ids),
            np.stack(hist_t),
            np.stack(hist_mask),
        )

    def fit(self, graph: TemporalGraph, callbacks=()) -> "HTNE":
        rng = self._rng
        n = graph.num_nodes
        bound = 0.5 / self.dim
        self.graph = graph
        self._emb = rng.uniform(-bound, bound, size=(n, self.dim)).astype(
            self._real, copy=False
        )
        self.decay = float(self.init_decay)
        self.loss_history = self._train_events(graph, None, self.epochs, callbacks)
        return self

    def _train_events(
        self, graph: TemporalGraph, edge_ids, epochs: int, callbacks=()
    ) -> list[float]:
        """Shared-trainer epochs over the (restricted) formation events."""
        rng = self._rng
        noise = AliasTable(degree_noise_weights(graph.degrees()))
        ex, ey, et, hid, ht, hmask = self._build_events(graph, edge_ids)

        def step(idx):
            negs = noise.sample(rng, size=(idx.size, self.num_negatives))
            return self._step(
                self._emb, ex[idx], ey[idx], et[idx],
                hid[idx], ht[idx], hmask[idx], negs,
            )

        trainer = Trainer(
            epochs=epochs,
            batch_size=self.batch_size,
            rng=rng,
            callbacks=callbacks,
            name=self.name,
        )
        return trainer.run(step, num_items=ex.size)

    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        if self._emb is None:
            raise RuntimeError("call fit() before partial_fit()")
        extra = graph.num_nodes - self._emb.shape[0]
        if extra > 0:
            bound = 0.5 / self.dim
            fresh = self._rng.uniform(-bound, bound, size=(extra, self.dim))
            self._emb = np.vstack([self._emb, fresh.astype(self._real, copy=False)])
        self.loss_history.extend(
            self._train_events(
                graph, fresh_edge_ids, epochs if epochs is not None else 1
            )
        )

    # ------------------------------------------------------------------
    def _intensity_and_grads(self, emb, x, v, t, hid, ht, hmask):
        """λ̃(v|x,t) plus the pieces needed for its gradient.

        Shapes: ``x, t`` are ``(B,)``; ``v`` is ``(B, C)`` candidates
        (positive or negatives); histories are ``(B, H)``.
        """
        b, c = v.shape
        ev = emb[v]  # (B, C, d)
        ext = emb[x][:, None, :]  # (B, 1, d)
        diff_xv = ext - ev  # (B, C, d)
        base = -np.einsum("bcd,bcd->bc", diff_xv, diff_xv)

        kappa = np.exp(-self.decay * (t[:, None] - ht)) * hmask  # (B, H)
        counts = np.maximum(hmask.sum(axis=1, keepdims=True), 1.0)
        w = kappa / counts  # (B, H)
        eh = emb[hid]  # (B, H, d)
        diff_hv = eh[:, :, None, :] - ev[:, None, :, :]  # (B, H, C, d)
        d_hv = np.einsum("bhcd,bhcd->bhc", diff_hv, diff_hv)  # (B, H, C)
        excite = -np.einsum("bh,bhc->bc", w, d_hv)
        lam = base + excite
        return lam, diff_xv, diff_hv, d_hv, w, kappa, counts

    def _step(self, emb, x, y, t, hid, ht, hmask, negs) -> float:
        b = x.size
        cand = np.concatenate([y[:, None], negs], axis=1)  # (B, 1+Q)
        lam, diff_xv, diff_hv, d_hv, w, kappa, counts = self._intensity_and_grads(
            emb, x, cand, t, hid, ht, hmask
        )
        sig = _sigmoid(lam)
        # dL/dλ: positive column wants σ(λ)→1, negatives want σ(λ)→0.
        g = sig.copy()
        g[:, 0] -= 1.0  # (B, C)

        # Gradients of λ w.r.t. embeddings:
        #   ∂base/∂e_x = -2 (e_x - e_v); ∂base/∂e_v = +2 (e_x - e_v)
        #   ∂excite/∂e_h = -2 w (e_h - e_v); ∂excite/∂e_v = +2 w (e_h - e_v)
        grad_x = -2.0 * np.einsum("bc,bcd->bd", g, diff_xv)
        grad_v = 2.0 * np.einsum("bc,bcd->bcd", g, diff_xv) + 2.0 * np.einsum(
            "bc,bh,bhcd->bcd", g, w, diff_hv
        )
        grad_h = -2.0 * np.einsum("bc,bh,bhcd->bhd", g, w, diff_hv)
        # ∂λ/∂δ = Σ_h (-(t - t_h)) κ_h / |H| · (-d_hv)
        dt = (t[:, None] - ht) * hmask
        ddecay = np.einsum("bc,bhc->", g, (dt * kappa / counts)[:, :, None] * d_hv)

        lr, c = self.lr, self.clip
        np.add.at(emb, x, -lr * np.clip(grad_x, -c, c))
        np.add.at(
            emb, cand.ravel(), -lr * np.clip(grad_v.reshape(-1, self.dim), -c, c)
        )
        np.add.at(
            emb, hid.ravel(), -lr * np.clip(grad_h.reshape(-1, self.dim), -c, c)
        )
        self.decay = float(max(self.decay - lr * float(np.clip(ddecay / b, -c, c)), 1e-3))

        with np.errstate(divide="ignore"):
            loss = -np.log(np.clip(sig[:, 0], 1e-12, None)).sum() - np.log(
                np.clip(1.0 - sig[:, 1:], 1e-12, None)
            ).sum()
        return float(loss) / b

    def embeddings(self) -> np.ndarray:
        if self._emb is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._emb.copy()

    # -- checkpointing (protocol v2) -----------------------------------
    def _config_dict(self) -> dict:
        return {
            "dim": self.dim,
            "history_length": self.history_length,
            "num_negatives": self.num_negatives,
            "epochs": self.epochs,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "init_decay": self.init_decay,
            "clip": self.clip,
            "precision": self.precision,
        }

    def _state_dict(self) -> tuple[dict, dict]:
        if self._emb is None:
            raise RuntimeError("call fit() before save()")
        return {"emb": self._emb}, {
            "decay": self.decay,
            "loss_history": self.loss_history,
        }

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        if "emb" not in arrays:
            raise CheckpointError("checkpoint is missing array 'emb'")
        # Loading casts into the policy dtype (no-op for same-precision saves).
        emb = np.asarray(arrays["emb"], dtype=self._real)
        if emb.ndim != 2 or emb.shape[1] != self.dim:
            raise CheckpointError(
                f"checkpoint array 'emb' has shape {emb.shape}, expected (*, {self.dim})"
            )
        self._emb = emb
        self.decay = float(meta["decay"])
        self.loss_history = [float(x) for x in meta.get("loss_history", [])]
