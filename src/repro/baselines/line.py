"""LINE baseline [4]: first- plus second-order proximity embeddings.

LINE optimizes two objectives by sampling edges with probability
proportional to their weight:

- *first-order* (O1): endpoints of an observed edge score high under
  ``σ(u·v)`` against degree-biased noise — preserves local pairwise
  proximity;
- *second-order* (O2): a node predicts its neighbor's *context* vector —
  nodes with similar neighborhoods converge.

As the authors recommend (and Section V.B repeats), the final embedding is
the concatenation of the two, each trained in ``dim/2`` so the total matches
the other methods.  Timestamps are ignored entirely; LINE's per-epoch cost
depends only on the number of sampled edges, which reproduces its flat
runtime row in Table VIII.
"""

from __future__ import annotations

import numpy as np

from repro.base import EmbeddingMethod
from repro.baselines.skipgram import _sigmoid, degree_noise_weights
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import AliasTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class LINE(EmbeddingMethod):
    """Large-scale Information Network Embedding (orders 1 + 2)."""

    name = "LINE"

    def __init__(
        self,
        dim: int = 32,
        samples_per_edge: int = 20,
        num_negatives: int = 5,
        batch_size: int = 512,
        lr: float = 0.025,
        seed=None,
    ):
        check_positive("dim", dim)
        if dim % 2 != 0:
            raise ValueError("LINE needs an even dim (two concatenated halves)")
        check_positive("samples_per_edge", samples_per_edge)
        check_positive("num_negatives", num_negatives)
        self.dim = dim
        self.samples_per_edge = samples_per_edge
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.lr = lr
        self._rng = ensure_rng(seed)
        self._emb: np.ndarray | None = None

    def fit(self, graph: TemporalGraph) -> "LINE":
        half = self.dim // 2
        rng = self._rng
        n = graph.num_nodes
        bound = 0.5 / half
        first = rng.uniform(-bound, bound, size=(n, half))
        second = rng.uniform(-bound, bound, size=(n, half))
        context = np.zeros((n, half))

        edge_table = AliasTable(graph.weight)
        noise = AliasTable(degree_noise_weights(graph.degrees()))
        total = self.samples_per_edge * graph.num_edges
        q = self.num_negatives

        done = 0
        while done < total:
            b = min(self.batch_size, total - done)
            eids = edge_table.sample(rng, size=b)
            u = graph.src[eids].copy()
            v = graph.dst[eids].copy()
            # Undirected edges: random orientation per sample.
            flip = rng.random(b) < 0.5
            u[flip], v[flip] = v[flip], u[flip]
            negs = noise.sample(rng, size=(b, q))
            # Linearly decaying learning rate, as in the reference LINE code.
            lr = self.lr * max(1.0 - done / total, 1e-2)
            self._o1_step(first, u, v, negs, lr)
            self._o2_step(second, context, u, v, negs, lr)
            done += b

        self._emb = np.concatenate([first, second], axis=1)
        return self

    def _o1_step(self, emb, u, v, negs, lr) -> None:
        vu, vv = emb[u], emb[v]
        g_pos = _sigmoid(np.einsum("bd,bd->b", vu, vv)) - 1.0
        un = emb[negs]
        g_neg = _sigmoid(np.einsum("bd,bqd->bq", vu, un))
        grad_u = g_pos[:, None] * vv + np.einsum("bq,bqd->bd", g_neg, un)
        grad_v = g_pos[:, None] * vu
        grad_n = g_neg[:, :, None] * vu[:, None, :]
        np.add.at(emb, u, -lr * grad_u)
        np.add.at(emb, v, -lr * grad_v)
        np.add.at(emb, negs.ravel(), -lr * grad_n.reshape(-1, emb.shape[1]))

    def _o2_step(self, emb, context, u, v, negs, lr) -> None:
        vu = emb[u]
        cv = context[v]
        g_pos = _sigmoid(np.einsum("bd,bd->b", vu, cv)) - 1.0
        cn = context[negs]
        g_neg = _sigmoid(np.einsum("bd,bqd->bq", vu, cn))
        grad_u = g_pos[:, None] * cv + np.einsum("bq,bqd->bd", g_neg, cn)
        grad_cv = g_pos[:, None] * vu
        grad_cn = g_neg[:, :, None] * vu[:, None, :]
        np.add.at(emb, u, -lr * grad_u)
        np.add.at(context, v, -lr * grad_cv)
        np.add.at(context, negs.ravel(), -lr * grad_cn.reshape(-1, emb.shape[1]))

    def embeddings(self) -> np.ndarray:
        if self._emb is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._emb.copy()
