"""LINE baseline [4]: first- plus second-order proximity embeddings.

LINE optimizes two objectives by sampling edges with probability
proportional to their weight:

- *first-order* (O1): endpoints of an observed edge score high under
  ``σ(u·v)`` against degree-biased noise — preserves local pairwise
  proximity;
- *second-order* (O2): a node predicts its neighbor's *context* vector —
  nodes with similar neighborhoods converge.

As the authors recommend (and Section V.B repeats), the final embedding is
the concatenation of the two, each trained in ``dim/2`` so the total matches
the other methods.  Timestamps are ignored entirely (hence the inherited
time-invariant ``encode``); LINE's per-epoch cost depends only on the number
of sampled edges, which reproduces its flat runtime row in Table VIII.

Sampling rounds run on the shared :class:`~repro.core.trainer.Trainer`
(``samples_per_edge`` epochs of one weighted edge draw per edge each), which
also gives LINE a per-round ``loss_history``.  ``partial_fit`` keeps the
trained halves, grows them for new nodes, and runs the same sampler over the
*fresh* edges only.
"""

from __future__ import annotations

import numpy as np

from repro.base import EmbeddingMethod
from repro.baselines.skipgram import _sigmoid, degree_noise_weights
from repro.core.trainer import Trainer
from repro.nn.dtypes import get_precision
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import AliasTable
from repro.utils.checkpoint import CheckpointError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class LINE(EmbeddingMethod):
    """Large-scale Information Network Embedding (orders 1 + 2)."""

    name = "LINE"

    def __init__(
        self,
        dim: int = 32,
        samples_per_edge: int = 20,
        num_negatives: int = 5,
        batch_size: int = 512,
        lr: float = 0.025,
        seed=None,
        precision: str = "float64",
    ):
        check_positive("dim", dim)
        if dim % 2 != 0:
            raise ValueError("LINE needs an even dim (two concatenated halves)")
        check_positive("samples_per_edge", samples_per_edge)
        check_positive("num_negatives", num_negatives)
        self.precision = get_precision(precision).name
        self._real = get_precision(precision).real
        self.dim = dim
        self.samples_per_edge = samples_per_edge
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.lr = lr
        self._rng = ensure_rng(seed)
        self.graph: TemporalGraph | None = None
        self._first: np.ndarray | None = None
        self._second: np.ndarray | None = None
        self._context: np.ndarray | None = None
        self._emb: np.ndarray | None = None
        self.loss_history: list[float] = []

    def _init_rows(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        half = self.dim // 2
        bound = 0.5 / half
        real = self._real
        first = self._rng.uniform(-bound, bound, size=(n, half)).astype(real, copy=False)
        second = self._rng.uniform(-bound, bound, size=(n, half)).astype(real, copy=False)
        context = np.zeros((n, half), dtype=real)
        return first, second, context

    def fit(self, graph: TemporalGraph, callbacks=()) -> "LINE":
        self.graph = graph
        self._first, self._second, self._context = self._init_rows(graph.num_nodes)
        self.loss_history = self._sample_and_train(
            graph, np.arange(graph.num_edges), self.samples_per_edge, callbacks
        )
        self._emb = np.concatenate([self._first, self._second], axis=1)
        return self

    def _sample_and_train(
        self, graph: TemporalGraph, edge_ids: np.ndarray, rounds: int, callbacks=()
    ) -> list[float]:
        """``rounds`` weighted-sampling passes over ``edge_ids``; per-round loss.

        Each Trainer "epoch" draws ``len(edge_ids)`` edges from the weighted
        alias table (LINE's edge-sampling trick), so restricting ``edge_ids``
        to fresh arrivals turns the same loop into the incremental path.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        edge_table = AliasTable(graph.weight[edge_ids])
        noise = AliasTable(degree_noise_weights(graph.degrees()))
        m = edge_ids.size
        total = rounds * m
        q = self.num_negatives
        done = {"n": 0}

        def epoch_items(epoch, rng):
            return edge_ids[edge_table.sample(rng, size=m)]

        def step(eids):
            b = eids.size
            u = graph.src[eids].copy()
            v = graph.dst[eids].copy()
            # Undirected edges: random orientation per sample.
            flip = self._rng.random(b) < 0.5
            u[flip], v[flip] = v[flip], u[flip]
            negs = noise.sample(self._rng, size=(b, q))
            # Linearly decaying learning rate, as in the reference LINE code.
            lr = self.lr * max(1.0 - done["n"] / total, 1e-2)
            loss = self._o1_step(self._first, u, v, negs, lr)
            loss += self._o2_step(self._second, self._context, u, v, negs, lr)
            done["n"] += b
            return loss / b

        trainer = Trainer(
            epochs=rounds,
            batch_size=self.batch_size,
            rng=self._rng,
            callbacks=callbacks,
            shuffle=False,  # items are already an iid weighted sample
            name=self.name,
        )
        return trainer.run(step, epoch_items=epoch_items)

    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        if self._first is None:
            raise RuntimeError("call fit() before partial_fit()")
        extra = graph.num_nodes - self._first.shape[0]
        if extra > 0:
            first, second, context = self._init_rows(extra)
            self._first = np.vstack([self._first, first])
            self._second = np.vstack([self._second, second])
            self._context = np.vstack([self._context, context])
        rounds = epochs if epochs is not None else self.samples_per_edge
        self.loss_history.extend(
            self._sample_and_train(graph, fresh_edge_ids, rounds)
        )
        self._emb = np.concatenate([self._first, self._second], axis=1)

    def _o1_step(self, emb, u, v, negs, lr) -> float:
        vu, vv = emb[u], emb[v]
        s_pos = np.einsum("bd,bd->b", vu, vv)
        g_pos = _sigmoid(s_pos) - 1.0
        un = emb[negs]
        s_neg = np.einsum("bd,bqd->bq", vu, un)
        g_neg = _sigmoid(s_neg)
        grad_u = g_pos[:, None] * vv + np.einsum("bq,bqd->bd", g_neg, un)
        grad_v = g_pos[:, None] * vu
        grad_n = g_neg[:, :, None] * vu[:, None, :]
        np.add.at(emb, u, -lr * grad_u)
        np.add.at(emb, v, -lr * grad_v)
        np.add.at(emb, negs.ravel(), -lr * grad_n.reshape(-1, emb.shape[1]))
        return _ns_loss(g_pos, g_neg)

    def _o2_step(self, emb, context, u, v, negs, lr) -> float:
        vu = emb[u]
        cv = context[v]
        s_pos = np.einsum("bd,bd->b", vu, cv)
        g_pos = _sigmoid(s_pos) - 1.0
        cn = context[negs]
        s_neg = np.einsum("bd,bqd->bq", vu, cn)
        g_neg = _sigmoid(s_neg)
        grad_u = g_pos[:, None] * cv + np.einsum("bq,bqd->bd", g_neg, cn)
        grad_cv = g_pos[:, None] * vu
        grad_cn = g_neg[:, :, None] * vu[:, None, :]
        np.add.at(emb, u, -lr * grad_u)
        np.add.at(context, v, -lr * grad_cv)
        np.add.at(context, negs.ravel(), -lr * grad_cn.reshape(-1, emb.shape[1]))
        return _ns_loss(g_pos, g_neg)

    def embeddings(self) -> np.ndarray:
        if self._emb is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._emb.copy()

    # -- checkpointing (protocol v2) -----------------------------------
    def _config_dict(self) -> dict:
        return {
            "dim": self.dim,
            "samples_per_edge": self.samples_per_edge,
            "num_negatives": self.num_negatives,
            "batch_size": self.batch_size,
            "lr": self.lr,
            "precision": self.precision,
        }

    def _state_dict(self) -> tuple[dict, dict]:
        if self._emb is None:
            raise RuntimeError("call fit() before save()")
        arrays = {
            "first": self._first,
            "second": self._second,
            "context": self._context,
        }
        return arrays, {"loss_history": self.loss_history}

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        half = self.dim // 2
        for key in ("first", "second", "context"):
            if key not in arrays:
                raise CheckpointError(f"checkpoint is missing array {key!r}")
            if arrays[key].ndim != 2 or arrays[key].shape[1] != half:
                raise CheckpointError(
                    f"checkpoint array {key!r} has shape {arrays[key].shape}, "
                    f"expected (*, {half})"
                )
        # Loading casts into the policy dtype (no-op for same-precision saves).
        self._first = np.asarray(arrays["first"], dtype=self._real)
        self._second = np.asarray(arrays["second"], dtype=self._real)
        self._context = np.asarray(arrays["context"], dtype=self._real)
        self._emb = np.concatenate([self._first, self._second], axis=1)
        self.loss_history = [float(x) for x in meta.get("loss_history", [])]


def _ns_loss(g_pos: np.ndarray, g_neg: np.ndarray) -> float:
    """Summed negative-sampling loss from the sigmoid gradients.

    ``g_pos = σ(s)-1`` and ``g_neg = σ(s)`` are exactly the quantities the
    update steps already computed; ``-log σ(s) = -log(1+g_pos)`` and
    ``-log σ(-s) = -log(1-g_neg)``.
    """
    with np.errstate(divide="ignore"):
        pos = -np.log(np.clip(1.0 + g_pos, 1e-12, None)).sum()
        neg = -np.log(np.clip(1.0 - g_neg, 1e-12, None)).sum()
    return float(pos + neg)
