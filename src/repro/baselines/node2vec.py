"""NODE2VEC and DEEPWALK baselines [1, 3].

Node2vec samples second-order biased random walks (parameters ``p``/``q``)
and feeds them to skip-gram with negative sampling; DeepWalk is the ``p = q
= 1`` special case with uniform first-order walks.  Both ignore timestamps —
they are the static references EHNA is compared against, which is also why
their ``encode(nodes, at=...)`` inherits the base class's time-invariant
table lookup.  ``partial_fit`` extends the graph and continues SGNS training
on walks restarted from the nodes the fresh edges touched.
"""

from __future__ import annotations

import numpy as np

from repro.base import EmbeddingMethod
from repro.baselines.skipgram import (
    SGNSCheckpointMixin,
    SkipGramNS,
    degree_noise_weights,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.nn.dtypes import get_precision
from repro.utils.rng import ensure_rng
from repro.walks.engine import BatchedWalkEngine
from repro.walks.static import Node2VecWalker, UniformWalker


class Node2Vec(SGNSCheckpointMixin, EmbeddingMethod):
    """node2vec: biased static walks + SGNS.

    Paper defaults are ``k = 10`` walks of length ``l = 80`` (Section V.C);
    the laptop defaults below keep the same walk budget ratio at small scale.
    """

    name = "Node2Vec"

    def __init__(
        self,
        dim: int = 32,
        num_walks: int = 10,
        walk_length: int = 20,
        window: int = 5,
        p: float = 1.0,
        q: float = 1.0,
        num_negatives: int = 5,
        epochs: int = 2,
        lr: float = 0.025,
        seed=None,
        precision: str = "float64",
        num_workers: int = 1,
    ):
        self.dim = dim
        self.num_walks = num_walks
        self.walk_length = walk_length
        self.window = window
        self.p = p
        self.q = q
        self.num_negatives = num_negatives
        self.epochs = epochs
        self.lr = lr
        self.precision = get_precision(precision).name
        # num_workers >= 2 trains SGNS Hogwild-style over shared tables
        # (nondeterministic; see repro.parallel.hogwild); 1 stays serial.
        self.num_workers = num_workers
        self._rng = ensure_rng(seed)
        self.graph: TemporalGraph | None = None
        self._model: SkipGramNS | None = None

    def _corpus(self, graph: TemporalGraph) -> list[list[int]]:
        walker = Node2VecWalker(graph, p=self.p, q=self.q)
        return walker.corpus(self.num_walks, self.walk_length, self._rng)

    def _new_model(self, graph: TemporalGraph) -> SkipGramNS:
        return SkipGramNS(
            graph.num_nodes,
            dim=self.dim,
            num_negatives=self.num_negatives,
            lr=self.lr,
            noise_weights=degree_noise_weights(graph.degrees()),
            seed=self._rng,
            precision=self.precision,
        )

    def fit(self, graph: TemporalGraph, callbacks=()) -> "Node2Vec":
        self.graph = graph
        sentences = self._corpus(graph)
        self._model = self._new_model(graph)
        self.loss_history = self._model.train_corpus(
            sentences,
            window=self.window,
            epochs=self.epochs,
            callbacks=callbacks,
            name=self.name,
            num_workers=self.num_workers,
        )
        return self

    def _stream_corpus(self, graph: TemporalGraph, fresh: np.ndarray) -> list[list[int]]:
        """Walks restarted from every node the fresh edges touched."""
        touched = np.unique(np.concatenate([graph.src[fresh], graph.dst[fresh]]))
        engine = BatchedWalkEngine(graph, p=self.p, q=self.q)
        starts = np.repeat(touched, self.num_walks)
        walks = engine.node2vec(starts, self.walk_length, self._rng)
        return [w.nodes for w in walks if len(w) > 1]

    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        if self._model is None:
            raise RuntimeError("call fit() before partial_fit()")
        self._model.grow(
            graph.num_nodes, noise_weights=degree_noise_weights(graph.degrees())
        )
        sentences = self._stream_corpus(graph, fresh_edge_ids)
        if not sentences:
            return
        self.loss_history.extend(
            self._model.train_corpus(
                sentences,
                window=self.window,
                epochs=epochs if epochs is not None else 1,
                name=self.name,
            )
        )

    def embeddings(self) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("call fit() before embeddings()")
        return self._model.embeddings()

    # -- checkpointing (protocol v2) -----------------------------------
    def _config_dict(self) -> dict:
        return {
            "dim": self.dim,
            "num_walks": self.num_walks,
            "walk_length": self.walk_length,
            "window": self.window,
            "p": self.p,
            "q": self.q,
            "num_negatives": self.num_negatives,
            "epochs": self.epochs,
            "lr": self.lr,
            "precision": self.precision,
            "num_workers": self.num_workers,
        }

class DeepWalk(Node2Vec):
    """DeepWalk: uniform walks + SGNS (node2vec with ``p = q = 1``)."""

    name = "DeepWalk"

    def __init__(self, **kwargs):
        kwargs.pop("p", None)
        kwargs.pop("q", None)
        super().__init__(p=1.0, q=1.0, **kwargs)

    def _corpus(self, graph: TemporalGraph) -> list[list[int]]:
        walker = UniformWalker(graph)
        sentences: list[list[int]] = []
        order = np.arange(graph.num_nodes)
        for _ in range(self.num_walks):
            self._rng.shuffle(order)
            for v in order:
                walk = walker.walk(int(v), self.walk_length, self._rng)
                if len(walk) > 1:
                    sentences.append(walk.nodes)
        return sentences

    def _stream_corpus(self, graph: TemporalGraph, fresh: np.ndarray) -> list[list[int]]:
        touched = np.unique(np.concatenate([graph.src[fresh], graph.dst[fresh]]))
        engine = BatchedWalkEngine(graph)
        starts = np.repeat(touched, self.num_walks)
        walks = engine.uniform(starts, self.walk_length, self._rng)
        return [w.nodes for w in walks if len(w) > 1]

    def _config_dict(self) -> dict:
        config = super()._config_dict()
        config.pop("p")  # DeepWalk's constructor pins p = q = 1
        config.pop("q")
        return config
