"""Static random walks: DeepWalk (uniform) and node2vec (2nd-order, Eq. of [1]).

These power the NODE2VEC baseline and the EHNA-RW ablation (which swaps the
temporal walk for a plain static walk).  The node2vec walker caches an alias
table per traversed ``(prev, cur)`` state, so repeated visits sample in O(1).
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import AliasTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.walks.base import Walk


class UniformWalker:
    """First-order uniform random walk over distinct static neighbors.

    Also serves as EHNA's GraphSAGE-style fallback neighborhood sampler for
    nodes without historical interactions (Section IV.D).
    """

    def __init__(self, graph: TemporalGraph):
        self.graph = graph
        self._nbrs = [graph.neighbors(v) for v in range(graph.num_nodes)]

    def walk(self, start: int, length: int, rng=None) -> Walk:
        """Sample one walk of at most ``length`` steps."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        nodes = [int(start)]
        for _ in range(length):
            nbrs = self._nbrs[nodes[-1]]
            if nbrs.size == 0:
                break
            nodes.append(int(nbrs[rng.integers(nbrs.size)]))
        return Walk(nodes=nodes)

    def walks(self, start: int, num_walks: int, length: int, rng=None) -> list[Walk]:
        """Sample ``num_walks`` independent walks from ``start``."""
        rng = ensure_rng(rng)
        return [self.walk(start, length, rng) for _ in range(num_walks)]


class Node2VecWalker:
    """Second-order biased walks of Grover & Leskovec [1].

    Transition weight from state ``(prev -> cur)`` to neighbor ``w``::

        1/p  if w == prev        (return)
        1    if w ~ prev         (distance 1)
        1/q  otherwise           (distance 2)

    multiplied by the static edge weight (number of temporal events for a
    multigraph, so repeat interactions count).
    """

    def __init__(self, graph: TemporalGraph, p: float = 1.0, q: float = 1.0):
        check_positive("p", p)
        check_positive("q", q)
        self.graph = graph
        self.p = p
        self.q = q
        # Distinct-neighbor adjacency with multiplicity as weight.
        self._nbrs: list[np.ndarray] = []
        self._w: list[np.ndarray] = []
        for v in range(graph.num_nodes):
            inc, _, _ = graph.incident(v)
            nbrs, counts = np.unique(inc, return_counts=True)
            self._nbrs.append(nbrs)
            self._w.append(counts.astype(np.float64))
        self._nbr_sets = [set(n.tolist()) for n in self._nbrs]
        self._alias_cache: dict[tuple[int, int], AliasTable] = {}
        self._first_alias: dict[int, AliasTable] = {}

    def _first_step(self, cur: int, rng) -> int | None:
        nbrs = self._nbrs[cur]
        if nbrs.size == 0:
            return None
        table = self._first_alias.get(cur)
        if table is None:
            table = AliasTable(self._w[cur])
            self._first_alias[cur] = table
        return int(nbrs[table.sample(rng)])

    def _next_step(self, prev: int, cur: int, rng) -> int | None:
        nbrs = self._nbrs[cur]
        if nbrs.size == 0:
            return None
        key = (prev, cur)
        table = self._alias_cache.get(key)
        if table is None:
            bias = np.empty(nbrs.size, dtype=np.float64)
            prev_nbrs = self._nbr_sets[prev]
            for i, w in enumerate(nbrs):
                if w == prev:
                    bias[i] = 1.0 / self.p
                elif int(w) in prev_nbrs:
                    bias[i] = 1.0
                else:
                    bias[i] = 1.0 / self.q
            table = AliasTable(bias * self._w[cur])
            self._alias_cache[key] = table
        return int(nbrs[table.sample(rng)])

    def walk(self, start: int, length: int, rng=None) -> Walk:
        """Sample one node2vec walk of at most ``length`` steps."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        nodes = [int(start)]
        nxt = self._first_step(nodes[0], rng)
        if nxt is None:
            return Walk(nodes=nodes)
        nodes.append(nxt)
        while len(nodes) < length + 1:
            nxt = self._next_step(nodes[-2], nodes[-1], rng)
            if nxt is None:
                break
            nodes.append(nxt)
        return Walk(nodes=nodes)

    def corpus(self, num_walks: int, length: int, rng=None) -> list[list[int]]:
        """``num_walks`` walks per node in shuffled order (the usual corpus)."""
        rng = ensure_rng(rng)
        sentences: list[list[int]] = []
        order = np.arange(self.graph.num_nodes)
        for _ in range(num_walks):
            rng.shuffle(order)
            for v in order:
                w = self.walk(int(v), length, rng)
                if len(w) > 1:
                    sentences.append(w.nodes)
        return sentences
