"""Static random walks: DeepWalk (uniform) and node2vec (2nd-order, Eq. of [1]).

These power the NODE2VEC baseline and the EHNA-RW ablation (which swaps the
temporal walk for a plain static walk).  Both walkers delegate stepping to the
vectorized :class:`~repro.walks.engine.BatchedWalkEngine`: single-walk calls
run a batch of one (bitwise identical to the ``walk_sequential`` reference
loops under the same RNG state), and ``corpus`` generation advances a whole
round of start nodes in lockstep.  The node2vec family memoizes per-state
transition tables — packed first-order alias tables for every node built in
one vectorized pass, plus per-``(prev, cur)`` tables built on first traversal
— so repeated visits sample in O(1).
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine


class UniformWalker:
    """First-order uniform random walk over distinct static neighbors.

    Also serves as EHNA's GraphSAGE-style fallback neighborhood sampler for
    nodes without historical interactions (Section IV.D).
    """

    def __init__(self, graph: TemporalGraph, engine: BatchedWalkEngine | None = None):
        self.graph = graph
        self.engine = engine if engine is not None else BatchedWalkEngine(graph)

    def walk(self, start: int, length: int, rng=None) -> Walk:
        """Sample one walk of at most ``length`` steps (engine batch of one)."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        return self.engine.uniform(np.array([start]), length, rng)[0]

    def walk_sequential(self, start: int, length: int, rng=None) -> Walk:
        """The pre-engine per-node loop (reference implementation)."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        graph = self.graph
        nodes = [int(start)]
        for _ in range(length):
            nbrs = graph.neighbors(nodes[-1])
            if nbrs.size == 0:
                break
            nodes.append(int(nbrs[rng.integers(nbrs.size)]))
        return Walk(nodes=nodes)

    def walks(self, start: int, num_walks: int, length: int, rng=None) -> list[Walk]:
        """Sample ``num_walks`` independent walks from ``start``, in lockstep."""
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        starts = np.full(num_walks, start, dtype=np.int64)
        return self.engine.uniform(starts, length, rng)


class Node2VecWalker:
    """Second-order biased walks of Grover & Leskovec [1].

    Transition weight from state ``(prev -> cur)`` to neighbor ``w``::

        1/p  if w == prev        (return)
        1    if w ~ prev         (distance 1)
        1/q  otherwise           (distance 2)

    multiplied by the static edge weight (number of temporal events for a
    multigraph, so repeat interactions count).
    """

    def __init__(
        self,
        graph: TemporalGraph,
        p: float = 1.0,
        q: float = 1.0,
        engine: BatchedWalkEngine | None = None,
    ):
        check_positive("p", p)
        check_positive("q", q)
        self.graph = graph
        self.p = p
        self.q = q
        if engine is None:
            engine = BatchedWalkEngine(graph, p=p, q=q)
        elif (engine.p, engine.q) != (float(p), float(q)):
            # A mismatched engine would silently break the bitwise contract
            # between walk() (engine parameters) and walk_sequential()
            # (walker parameters).
            raise ValueError(
                f"injected engine's (p, q)=({engine.p}, {engine.q}) differ "
                f"from the walker's ({p}, {q})"
            )
        self.engine = engine

    @property
    def _alias_cache(self) -> dict:
        """The engine's memoized ``(prev, cur)`` transition tables."""
        return self.engine._pair_cache

    def walk(self, start: int, length: int, rng=None) -> Walk:
        """Sample one node2vec walk of at most ``length`` steps."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        return self.engine.node2vec(np.array([start]), length, rng)[0]

    def walk_sequential(self, start: int, length: int, rng=None) -> Walk:
        """The pre-engine per-node loop (reference implementation).

        Shares the engine's memoized alias tables, so it differs from
        :meth:`walk` only in stepping one walk at a time.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        eng = self.engine
        dindptr, dnbr, _ = self.graph.distinct_csr()
        nodes = [int(start)]
        n = dindptr[start + 1] - dindptr[start]
        if n == 0:
            return Walk(nodes=nodes)
        local = int(eng._first_order_tables().sample(np.array([start]), rng)[0])
        nodes.append(int(dnbr[dindptr[start] + local]))
        while len(nodes) < length + 1:
            prev, cur = nodes[-2], nodes[-1]
            n = int(dindptr[cur + 1] - dindptr[cur])
            if n == 0:
                break
            prob, alias = eng.pair_table(prev, cur)
            i = int(rng.integers(n))
            if rng.random() >= prob[i]:
                i = int(alias[i])
            nodes.append(int(dnbr[dindptr[cur] + i]))
        return Walk(nodes=nodes)

    def corpus(self, num_walks: int, length: int, rng=None) -> list[list[int]]:
        """``num_walks`` walks per node in shuffled order (the usual corpus).

        Every round advances one walk per node in a single lockstep batch.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        sentences: list[list[int]] = []
        order = np.arange(self.graph.num_nodes, dtype=np.int64)
        for _ in range(num_walks):
            rng.shuffle(order)
            for w in self.engine.node2vec(order, length, rng):
                if len(w) > 1:
                    sentences.append(w.nodes)
        return sentences
