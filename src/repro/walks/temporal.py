"""The paper's temporal random walk (Section IV.A, Eq. 1-2).

To analyze the formation of a target edge ``(x, y)`` at time ``t(x,y)``, a
walk starts at ``x`` (or ``y``) and moves *backwards through history*: every
traversed edge must be strictly older than ``t(x,y)``, and timestamps must be
non-increasing along the walk (the ``β = 0`` case of Eq. 2), which makes every
visited node *relevant* per Definition 2 — it can reach the target through a
time-respecting path.

Transition weights combine two factors:

- the decay kernel of Eq. 1, ``K = w_(v,w) · exp(-decay · (t(x,y) - t_(v,w)))``
  computed on the [0, 1]-normalized time scale (see DESIGN.md) so recent
  interactions dominate;
- the node2vec-style bias ``β(u, w)`` of Eq. 2 with return parameter ``p``
  and in-out parameter ``q``, steering the walk between BFS-like and
  DFS-like exploration.

Walks may revisit nodes (the paper allows duplicates to fight sparsity) and
terminate early when no historical edge remains.

Sampling is delegated to the vectorized
:class:`~repro.walks.engine.BatchedWalkEngine`: :meth:`TemporalWalker.walk`
runs a batch of one, :meth:`TemporalWalker.walks` advances all ``k`` walks of
a target in lockstep.  The pre-engine per-node loop survives as
:meth:`TemporalWalker.walk_sequential` — it is the reference the engine is
bitwise-checked against at batch size 1, and the baseline the walk-engine
benchmark measures speedups over.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine


class TemporalWalker:
    """Samples historical-neighborhood walks for target edges.

    Parameters
    ----------
    graph:
        The temporal network.
    p:
        Return parameter — small ``p`` keeps the walk near the target
        (Section V.H observes the optimum at ``log2 p = -1`` on Yelp).
    q:
        In-out parameter — large ``q`` biases towards BFS-like, local moves.
    decay:
        Rate of the exponential time-decay kernel on the normalized time
        scale; 0 disables temporal preference (ablation EHNA-RW pairs this
        with ignoring the historical constraint).
    engine:
        Optional shared :class:`BatchedWalkEngine`; one is built when omitted.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        p: float = 1.0,
        q: float = 1.0,
        decay: float = 1.0,
        engine: BatchedWalkEngine | None = None,
    ):
        check_positive("p", p)
        check_positive("q", q)
        check_non_negative("decay", decay)
        self.graph = graph
        self.p = p
        self.q = q
        self.decay = decay
        if engine is None:
            engine = BatchedWalkEngine(graph, p=p, q=q, decay=decay)
        elif (engine.p, engine.q, engine.decay) != (float(p), float(q), float(decay)):
            # A mismatched engine would silently break the bitwise contract
            # between walk() (engine parameters) and walk_sequential()
            # (walker parameters).
            raise ValueError(
                "injected engine's (p, q, decay)="
                f"({engine.p}, {engine.q}, {engine.decay}) differ from the "
                f"walker's ({p}, {q}, {decay})"
            )
        self.engine = engine
        self._times01 = graph.times01()

    # ------------------------------------------------------------------
    def _kernel(self, t_context01: float, edge_ids: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Eq. 1 on the normalized time scale."""
        dt = t_context01 - self._times01[edge_ids]
        return weights * np.exp(-self.decay * dt)

    def _beta(self, prev: int, candidates: np.ndarray) -> np.ndarray:
        """Eq. 2 search bias for each candidate next node (vectorized)."""
        nbrs = self.graph.neighbors(prev)
        pos = np.searchsorted(nbrs, candidates)
        pos = np.minimum(pos, nbrs.size - 1) if nbrs.size else pos
        adjacent = (
            nbrs[pos] == candidates if nbrs.size else np.zeros(candidates.size, bool)
        )
        beta = np.where(adjacent, 1.0, 1.0 / self.q)
        beta[candidates == prev] = 1.0 / self.p
        return beta

    # ------------------------------------------------------------------
    def walk(
        self,
        start: int,
        t_context: float,
        length: int,
        rng=None,
        include_context: bool = False,
    ) -> Walk:
        """Sample one walk of at most ``length`` steps for a target at ``t_context``.

        The walk can terminate early when the current node has no incident
        edge older than both the target edge and the previously traversed
        edge (no remaining relevant nodes).

        ``include_context=False`` (training) keeps the first hop *strictly*
        before ``t_context`` so the edge being analyzed never leaks into its
        own historical neighborhood.  The final per-node aggregation pass
        (Section IV.D, "with its most recent edge") passes ``True`` so the
        node's latest interaction is part of its neighborhood.

        Delegates to the batched engine with a batch of one, which consumes
        the RNG stream exactly like :meth:`walk_sequential`.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        return self.engine.temporal(
            np.array([start]), np.array([t_context]), length, rng, include_context
        )[0]

    def walk_sequential(
        self,
        start: int,
        t_context: float,
        length: int,
        rng=None,
        include_context: bool = False,
    ) -> Walk:
        """The pre-engine per-node loop (reference implementation).

        Semantics match :meth:`walk` bit for bit under the same RNG state;
        kept as the bitwise ground truth for the engine's batch-size-1
        contract and as the benchmark baseline.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        graph = self.graph
        t_context01 = graph.scale_time(t_context)

        nodes = [int(start)]
        edge_times: list[float] = []
        prev: int | None = None
        t_last = t_context
        inclusive = include_context

        for _ in range(length):
            cur = nodes[-1]
            nbrs, _times, eids = graph.events_before(cur, t_last, inclusive=inclusive)
            if nbrs.size == 0:
                break
            weights = self._kernel(t_context01, eids, graph.weight[eids])
            if prev is not None:
                weights = weights * self._beta(prev, nbrs)
            cdf = np.cumsum(weights)
            total = cdf[-1]
            if total <= 0 or not np.isfinite(total):
                break
            pick = int(np.searchsorted(cdf, rng.random() * total, side="right"))
            pick = min(pick, nbrs.size - 1)
            prev = cur
            nodes.append(int(nbrs[pick]))
            edge_times.append(float(graph.time[eids[pick]]))
            t_last = float(graph.time[eids[pick]])
            inclusive = True  # later hops: non-increasing times (Eq. 2, case 4)
        return Walk(nodes=nodes, edge_times=edge_times)

    def walks(
        self,
        start: int,
        t_context: float,
        num_walks: int,
        length: int,
        rng=None,
        include_context: bool = False,
    ) -> list[Walk]:
        """Sample ``num_walks`` independent walks (the paper's ``k``).

        All ``k`` walks advance together in one lockstep batch.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        starts = np.full(num_walks, start, dtype=np.int64)
        anchors = np.full(num_walks, t_context, dtype=np.float64)
        return self.engine.temporal(
            starts, anchors, length, rng, include_context=include_context
        )
