"""Walk records shared by all walk engines.

Two result containers live here:

- :class:`Walk` — one walk as plain Python ``int`` node ids and ``float``
  edge times.  Both the per-node ``walk_sequential`` reference loops and the
  vectorized :class:`~repro.walks.engine.BatchedWalkEngine` materialize
  these, so downstream consumers (aggregation batching, skip-gram corpora)
  are agnostic to which path produced a walk and results can be compared
  with ``==`` across paths.
- :class:`WalkBatch` — a whole batch of walks as padded ``(W, T)`` arrays,
  ready for the aggregator.  Produced either by
  :func:`~repro.core.aggregation.batch_walks` (the reference path, from
  ``Walk`` lists) or directly by the engine's array-native fast path
  (``temporal_walk_batch`` / ``uniform_walk_batch``), which never
  materializes per-walk Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Walk:
    """One random walk.

    Attributes
    ----------
    nodes:
        Visited node ids, in visit order (length ``L >= 1``).
    edge_times:
        Raw timestamps of the traversed edges (length ``L - 1``);
        ``edge_times[i]`` is the time of the edge ``nodes[i] -> nodes[i+1]``.
        Empty for static walks.
    """

    nodes: list[int]
    edge_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) == 0:
            raise ValueError("a walk must visit at least one node")
        if self.edge_times and len(self.edge_times) != len(self.nodes) - 1:
            raise ValueError("edge_times must have length len(nodes) - 1")

    def __len__(self) -> int:
        return len(self.nodes)

    def node_time_sums(self, scale=None) -> np.ndarray:
        """Per-position sum of timestamps of walk edges incident to that position.

        This is the ``Σ_{(u,v) ∈ r} t_(u,v)`` quantity of Eq. 3/4: walk edge
        ``i`` (connecting positions ``i`` and ``i + 1``) contributes its
        timestamp to both endpoint *positions*, so the returned array has one
        entry per visited position (length ``len(nodes)``), not per distinct
        node — when a walk revisits a node, each visit keeps its own sum, and
        the per-node accumulation of the paper's "interaction frequency"
        happens downstream in the aggregation batching.

        ``scale`` maps raw times onto ``[0, 1]`` before summing (pass
        ``graph.scale_time``); ``None`` sums raw timestamps.  Static walks
        (no edge times) return all zeros.  The output is independent of
        whether the walk came from a sequential walker or a batched engine —
        only ``nodes``/``edge_times`` matter.
        """
        sums = np.zeros(len(self.nodes), dtype=np.float64)
        for i, t in enumerate(self.edge_times):
            value = scale(t) if scale is not None else t
            sums[i] += value
            sums[i + 1] += value
        return sums


@dataclass
class WalkBatch:
    """Padded walk arrays ready for the aggregator.

    ``ids``/``valid``/``time_sums`` all have shape ``(W, T)`` where ``W`` is
    the total number of walks in the batch and ``T`` the longest walk; ``k``
    walks per target, so ``W = B * k``.  Padding slots hold id 0, validity 0
    and time-sum 0 regardless of which producer built the batch, so the two
    construction paths (``batch_walks`` over ``Walk`` lists, or the engine's
    array-native ``*_walk_batch`` fast path) yield bitwise-equal arrays for
    the same walks.

    Dtypes follow the precision policy of the producer: the default layout
    is ``int64`` ids with ``float64`` valid/time-sums, while the fast
    (``float32``) mode emits ``float32`` floats and — on graphs whose id
    space fits ``int32`` — narrowed ids, halving the batch's memory
    (:meth:`nbytes`).  The selection helpers below preserve whatever dtypes
    the producer chose.
    """

    ids: np.ndarray
    valid: np.ndarray
    time_sums: np.ndarray
    k: int

    @property
    def num_walks(self) -> int:
        return self.ids.shape[0]

    @property
    def max_len(self) -> int:
        return self.ids.shape[1]

    @property
    def nbytes(self) -> int:
        """Memory footprint of the padded arrays, in bytes."""
        return self.ids.nbytes + self.valid.nbytes + self.time_sums.nbytes

    def row_lengths(self) -> np.ndarray:
        """Unpadded length of every walk row, ``(W,)``."""
        return self.valid.sum(axis=1).astype(np.int64)

    def take_targets(self, target_idx) -> "WalkBatch":
        """The sub-batch holding the ``k`` walks of each selected target.

        ``target_idx`` indexes *targets* (row groups of ``k``), in the order
        the result should keep.  Rows are re-trimmed to the longest surviving
        walk, matching what ``batch_walks`` would pad the subset to.
        """
        target_idx = np.asarray(target_idx, dtype=np.int64)
        rows = (
            target_idx[:, None] * self.k + np.arange(self.k, dtype=np.int64)
        ).ravel()
        valid = self.valid[rows]
        max_len = max(int(valid.sum(axis=1).max(initial=0)), 1)
        return WalkBatch(
            ids=self.ids[rows, :max_len],
            valid=valid[:, :max_len],
            time_sums=self.time_sums[rows, :max_len],
            k=self.k,
        )

    def merged(self) -> "WalkBatch":
        """Each target's ``k`` walks concatenated into one row (``k=1``).

        The single-level layout used by EHNA-SL: walk rows are spliced in
        walk order with their padding dropped, so per-walk time-sums (already
        computed) never leak across walk boundaries — the array-native
        equivalent of ``batch_walks(..., merge=True)``.
        """
        w, t = self.ids.shape
        b = w // self.k
        lens = self.row_lengths()
        totals = lens.reshape(b, self.k).sum(axis=1)
        merged_len = int(totals.max(initial=0))
        src = np.flatnonzero(self.valid.ravel())  # row-major: walk, position
        row = np.repeat(np.arange(b, dtype=np.int64), totals)
        starts = np.zeros(b, dtype=np.int64)
        np.cumsum(totals[:-1], out=starts[1:])
        col = np.arange(src.size, dtype=np.int64) - np.repeat(starts, totals)
        # Preserve the producer's dtypes (narrowed ids / policy-real floats).
        ids = np.zeros((b, merged_len), dtype=self.ids.dtype)
        valid = np.zeros((b, merged_len), dtype=self.valid.dtype)
        sums = np.zeros((b, merged_len), dtype=self.time_sums.dtype)
        ids[row, col] = self.ids.ravel()[src]
        valid[row, col] = 1.0
        sums[row, col] = self.time_sums.ravel()[src]
        return WalkBatch(ids=ids, valid=valid, time_sums=sums, k=1)


def concat_walk_batches(batches) -> WalkBatch:
    """Stack per-shard :class:`WalkBatch` es back into one batch.

    The reassembly half of sharded walk generation: each shard produced the
    walks of a contiguous run of targets, padded to *its own* longest walk.
    Rows are re-padded to the global maximum (id 0 / valid 0 / sum 0 — the
    producers' padding convention, so a walk's arrays are bitwise-identical
    whether it was padded by its shard or here) and concatenated in shard
    order, which is target order.  All shards must agree on ``k`` and on
    the producer's dtype choices.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("concat_walk_batches needs at least one batch")
    first = batches[0]
    for b in batches[1:]:
        if b.k != first.k:
            raise ValueError(f"mismatched walks-per-target: {b.k} != {first.k}")
        if (
            b.ids.dtype != first.ids.dtype
            or b.valid.dtype != first.valid.dtype
            or b.time_sums.dtype != first.time_sums.dtype
        ):
            raise ValueError("mismatched array dtypes across shards")
    if len(batches) == 1:
        return first
    max_len = max(b.max_len for b in batches)
    total = sum(b.num_walks for b in batches)
    ids = np.zeros((total, max_len), dtype=first.ids.dtype)
    valid = np.zeros((total, max_len), dtype=first.valid.dtype)
    sums = np.zeros((total, max_len), dtype=first.time_sums.dtype)
    row = 0
    for b in batches:
        ids[row : row + b.num_walks, : b.max_len] = b.ids
        valid[row : row + b.num_walks, : b.max_len] = b.valid
        sums[row : row + b.num_walks, : b.max_len] = b.time_sums
        row += b.num_walks
    return WalkBatch(ids=ids, valid=valid, time_sums=sums, k=first.k)
