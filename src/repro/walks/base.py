"""Walk record shared by all walk engines."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Walk:
    """One random walk.

    Attributes
    ----------
    nodes:
        Visited node ids, in visit order (length ``L >= 1``).
    edge_times:
        Raw timestamps of the traversed edges (length ``L - 1``);
        ``edge_times[i]`` is the time of the edge ``nodes[i] -> nodes[i+1]``.
        Empty for static walks.
    """

    nodes: list[int]
    edge_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) == 0:
            raise ValueError("a walk must visit at least one node")
        if self.edge_times and len(self.edge_times) != len(self.nodes) - 1:
            raise ValueError("edge_times must have length len(nodes) - 1")

    def __len__(self) -> int:
        return len(self.nodes)

    def node_time_sums(self, scale=None) -> np.ndarray:
        """Per-position sum of timestamps of walk edges incident to that node.

        This is the ``Σ_{(u,v) in r} t_(u,v)`` quantity of Eq. 3/4: each walk
        edge contributes its timestamp to both endpoints, and repeat visits
        accumulate (the paper's "interaction frequency").  ``scale`` maps raw
        times onto ``[0, 1]`` (pass ``graph.scale_time``); static walks (no
        edge times) return zeros.
        """
        sums = np.zeros(len(self.nodes), dtype=np.float64)
        for i, t in enumerate(self.edge_times):
            value = scale(t) if scale is not None else t
            sums[i] += value
            sums[i + 1] += value
        return sums
