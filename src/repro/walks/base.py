"""Walk record shared by all walk engines.

Both the per-node ``walk_sequential`` reference loops and the vectorized
:class:`~repro.walks.engine.BatchedWalkEngine` materialize their results as
:class:`Walk` instances with plain Python ``int`` node ids and ``float`` edge
times, so downstream consumers (aggregation batching, skip-gram corpora) are
agnostic to which path produced a walk and results can be compared with
``==`` across paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Walk:
    """One random walk.

    Attributes
    ----------
    nodes:
        Visited node ids, in visit order (length ``L >= 1``).
    edge_times:
        Raw timestamps of the traversed edges (length ``L - 1``);
        ``edge_times[i]`` is the time of the edge ``nodes[i] -> nodes[i+1]``.
        Empty for static walks.
    """

    nodes: list[int]
    edge_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.nodes) == 0:
            raise ValueError("a walk must visit at least one node")
        if self.edge_times and len(self.edge_times) != len(self.nodes) - 1:
            raise ValueError("edge_times must have length len(nodes) - 1")

    def __len__(self) -> int:
        return len(self.nodes)

    def node_time_sums(self, scale=None) -> np.ndarray:
        """Per-position sum of timestamps of walk edges incident to that position.

        This is the ``Σ_{(u,v) ∈ r} t_(u,v)`` quantity of Eq. 3/4: walk edge
        ``i`` (connecting positions ``i`` and ``i + 1``) contributes its
        timestamp to both endpoint *positions*, so the returned array has one
        entry per visited position (length ``len(nodes)``), not per distinct
        node — when a walk revisits a node, each visit keeps its own sum, and
        the per-node accumulation of the paper's "interaction frequency"
        happens downstream in the aggregation batching.

        ``scale`` maps raw times onto ``[0, 1]`` before summing (pass
        ``graph.scale_time``); ``None`` sums raw timestamps.  Static walks
        (no edge times) return all zeros.  The output is independent of
        whether the walk came from a sequential walker or a batched engine —
        only ``nodes``/``edge_times`` matter.
        """
        sums = np.zeros(len(self.nodes), dtype=np.float64)
        for i, t in enumerate(self.edge_times):
            value = scale(t) if scale is not None else t
            sums[i] += value
            sums[i + 1] += value
        return sums
