"""Vectorized batched walk engine.

The per-node walkers in this package (:class:`~repro.walks.temporal.TemporalWalker`,
:class:`~repro.walks.static.UniformWalker`, :class:`~repro.walks.static.Node2VecWalker`,
:class:`~repro.walks.ctdne.CTDNEWalker`) advance one walk at a time, paying
Python-interpreter overhead for every hop.  :class:`BatchedWalkEngine` instead
advances *all* walks of a batch in lockstep: each step is a handful of NumPy
operations over flat CSR arrays from
:meth:`~repro.graph.temporal_graph.TemporalGraph.incidence_csr`, regardless of
the batch size —

- the candidate events of every active walk are fetched with one ragged
  gather over the flat incidence arrays;
- the historical cut (``time <= t_last``) is a vectorized per-segment binary
  search, ``O(log deg)`` lockstep iterations for the whole batch;
- Eq. 1 decay kernels and Eq. 2 node2vec biases are evaluated element-wise on
  the flattened candidate set;
- transitions are sampled with one cumulative-sum + ``searchsorted`` (temporal
  walks) or one :class:`~repro.utils.alias.PackedAliasTables` draw (node2vec),
  consuming the shared RNG stream in walk order.

**Batch-size-1 contract.** With a batch of one walk, the engine consumes the
RNG stream draw-for-draw like the per-node reference implementations
(``walk_sequential`` on each walker), so the produced walks are *bitwise
identical* under the same seed.  ``tests/walks/test_engine.py`` pins this
property for all four walk families.

**Walk cache.** An LRU cache keyed by ``(kind, node, time-bucket, …)``
optionally memoizes whole walk sets so repeated ``fit()`` epochs (which replay
the same target edges) and the uniform fallback sampler reuse work instead of
resampling.  ``time_buckets=0`` keys on exact anchor times — reuse then never
mixes neighborhoods across anchors, which keeps the historical constraint of
Definition 2 intact.

**Array-native batching.** ``temporal_walk_batch`` / ``uniform_walk_batch``
skip ``Walk`` materialization entirely: the same lockstep loops (same RNG
draws) pad their raw buffers straight into aggregator-ready
:class:`~repro.walks.base.WalkBatch` arrays, bitwise-equal to running the
``Walk`` path through ``batch_walks``.  This is the training fast path of
the fused aggregation pipeline (see docs/architecture.md).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import PackedAliasTables, build_alias_tables
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive
from repro.walks.base import Walk, WalkBatch

_I64 = np.int64


class WalkCache:
    """A small LRU cache for walk sets, with hit/miss counters."""

    def __init__(self, maxsize: int) -> None:
        check_positive("maxsize", maxsize)
        self.maxsize = int(maxsize)
        self._store: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key):
        """Return the cached value (refreshing recency) or ``None``."""
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert ``key``, evicting the least recently used entry if full."""
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0


def _ragged_gather(starts: np.ndarray, stops: np.ndarray):
    """Flat indices covering ``[starts[i], stops[i])`` for every segment.

    Returns ``(flat, lens, offsets)`` where ``flat`` concatenates the ranges,
    ``lens`` are the per-segment lengths and ``offsets`` the CSR boundaries of
    the concatenation (``offsets[i]:offsets[i+1]`` is segment ``i``).
    """
    lens = stops - starts
    offsets = np.zeros(lens.size + 1, dtype=_I64)
    np.cumsum(lens, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=_I64), lens, offsets
    flat = np.repeat(starts - offsets[:-1], lens) + np.arange(total, dtype=_I64)
    return flat, lens, offsets


class BatchedWalkEngine:
    """Lockstep walk generation for batches of start nodes.

    Parameters
    ----------
    graph:
        The temporal network.
    p, q:
        node2vec return / in-out parameters shared by the temporal (Eq. 2)
        and node2vec walk families.
    decay:
        Eq. 1 exponential time-decay rate on the [0, 1] time scale.
    cache_size:
        Capacity (in walk *sets*) of the LRU walk cache; 0 disables caching.
    real_dtype:
        Floating dtype of the :class:`WalkBatch` arrays the array-native fast
        path emits (``valid``/``time_sums``) — the precision policy's real
        dtype.  Node-id buffers follow the *graph's* ``index_dtype`` (int32
        on graphs whose id space fits), so fast-mode walk batches shrink to
        about half the reference mode's bytes.  Timestamps and sampling
        weights always stay ``float64`` internally: walk *selection* is
        precision-independent, only the emitted batch narrows.
    time_buckets:
        Resolution of the cache key's time component.  0 keys on the exact
        anchor timestamp (reuse only across identical anchors — always safe);
        ``k > 0`` quantizes anchors into ``k`` buckets on the [0, 1] scale,
        trading temporal fidelity for more hits.
    candidate_cap:
        Cap on a node's per-hop candidate set in the temporal family; 0
        (default) keeps the exact, uncapped behavior bitwise-unchanged.
        With ``cap > 0``, a hop out of a hub gathers only that node's
        ``cap`` *most recent* historical events instead of its entire
        history, turning the per-hop cost from O(degree) into O(cap).

        **Sampling note.**  This truncates Eq. 1's candidate distribution:
        the dropped events are the *oldest* ones, whose weights
        ``w · exp(-decay · dt)`` are the smallest under the exponential
        decay, so for any ``decay > 0`` the removed probability mass decays
        exponentially in the hub's history length and the capped
        distribution is a close renormalization of the exact one.  With
        ``decay = 0`` (uniform-in-history) the cap changes semantics to
        "the ``cap`` most recent events" — choose it deliberately there.
        Walks on capped engines are *not* bitwise-comparable to uncapped
        ones on graphs containing nodes above the cap.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        p: float = 1.0,
        q: float = 1.0,
        decay: float = 1.0,
        cache_size: int = 0,
        time_buckets: int = 0,
        real_dtype=np.float64,
        candidate_cap: int = 0,
    ) -> None:
        check_positive("p", p)
        check_positive("q", q)
        check_non_negative("decay", decay)
        check_non_negative("cache_size", cache_size)
        check_non_negative("time_buckets", time_buckets)
        check_non_negative("candidate_cap", candidate_cap)
        self.graph = graph
        self._real = np.dtype(real_dtype)
        self._idx = graph.index_dtype
        self.p = float(p)
        self.q = float(q)
        self.decay = float(decay)
        self.candidate_cap = int(candidate_cap)
        indptr, nbr, times, weights, eids = graph.incidence_csr()
        self._indptr = indptr
        self._inc_nbr = nbr
        self._inc_time = times
        self._inc_weight = weights
        self._inc_t01 = graph.times01()[eids]
        dindptr, dnbr, dmult = graph.distinct_csr()
        self._dindptr = dindptr
        self._dnbr = dnbr
        self._dmult = dmult
        self._ddeg = np.diff(dindptr)
        # Encoded (owner, neighbor) pairs of the distinct CSR.  The CSR is
        # sorted by owner then neighbor, so this flat key array is globally
        # sorted and adjacency tests become one searchsorted for any batch.
        owners = np.repeat(np.arange(graph.num_nodes, dtype=_I64), self._ddeg)
        self._pair_keys = owners * graph.num_nodes + dnbr
        self._first_tables: PackedAliasTables | None = None
        self._pair_cache: dict = {}
        self.cache = WalkCache(cache_size) if cache_size > 0 else None
        self.time_buckets = int(time_buckets)

    # ------------------------------------------------------------------
    # vectorized binary searches over the flat CSR arrays
    # ------------------------------------------------------------------
    def _search_time(self, lo, hi, t, inclusive) -> np.ndarray:
        """Per-segment ``searchsorted`` on the incidence time column.

        For every walk ``i`` returns the first index in ``[lo[i], hi[i])``
        whose event time exceeds ``t[i]`` (``inclusive``) or reaches it
        (``not inclusive``) — i.e. ``side='right'`` / ``side='left'`` of
        :func:`numpy.searchsorted`, batched over segments.
        """
        lo = lo.astype(_I64, copy=True)
        hi = hi.astype(_I64, copy=True)
        act = np.flatnonzero(lo < hi)
        while act.size:
            mid = (lo[act] + hi[act]) >> 1
            tm = self._inc_time[mid]
            right = np.where(inclusive[act], tm <= t[act], tm < t[act])
            lo[act[right]] = mid[right] + 1
            hi[act[~right]] = mid[~right]
            act = act[lo[act] < hi[act]]
        return lo

    def _adjacent(self, prev, cand) -> np.ndarray:
        """Whether ``cand[i]`` is a distinct neighbor of ``prev[i]`` (vectorized).

        One binary search over the globally sorted encoded pair keys answers
        the whole batch.
        """
        # Encoded keys must be computed in int64: narrowed int32 ids would
        # otherwise overflow at num_nodes**2 under NumPy's value-preserving
        # promotion rules.
        keys = prev.astype(_I64, copy=False) * np.int64(self.graph.num_nodes) + cand
        pos = np.searchsorted(self._pair_keys, keys)
        pos = np.minimum(pos, self._pair_keys.size - 1)
        return self._pair_keys[pos] == keys

    # ------------------------------------------------------------------
    # walk materialization
    # ------------------------------------------------------------------
    @staticmethod
    def _emit(nodes_buf, times_buf, lengths, with_times: bool) -> list[Walk]:
        walks = []
        for i in range(nodes_buf.shape[0]):
            n = int(lengths[i])
            nodes = nodes_buf[i, :n].tolist()
            if with_times:
                walks.append(
                    Walk(nodes=nodes, edge_times=times_buf[i, : n - 1].tolist())
                )
            else:
                walks.append(Walk(nodes=nodes))
        return walks

    # ------------------------------------------------------------------
    # temporal walks (EHNA, Section IV.A)
    # ------------------------------------------------------------------
    def temporal(
        self, starts, anchors, length: int, rng=None, include_context: bool = False
    ) -> list[Walk]:
        """Advance one historical walk per ``(starts[i], anchors[i])`` pair.

        The lockstep equivalent of ``TemporalWalker.walk_sequential`` —
        strictly-historical first hop (unless ``include_context``),
        non-increasing edge times, Eq. 1 decay kernel and Eq. 2 bias.  Walks
        terminate individually when they run out of relevant history; the
        survivors keep stepping.
        """
        return self._emit(
            *self._temporal_raw(starts, anchors, length, rng, include_context),
            with_times=True,
        )

    def _temporal_raw(
        self, starts, anchors, length: int, rng=None, include_context: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The temporal lockstep loop on raw buffers.

        Returns ``(nodes_buf, times_buf, lengths)``; entries beyond each
        walk's length are uninitialized.  Shared by the ``Walk``-emitting
        path and the array-native :meth:`temporal_walk_batch` fast path, so
        both consume the RNG stream identically.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        starts = np.asarray(starts, dtype=_I64)
        anchors = np.asarray(anchors, dtype=np.float64)
        b = starts.size
        nodes_buf = np.empty((b, length + 1), dtype=self._idx)
        times_buf = np.empty((b, max(length, 1)), dtype=np.float64)
        nodes_buf[:, 0] = starts
        lengths = np.ones(b, dtype=_I64)

        t_ctx01 = self.graph.scale_times(anchors)
        cur = starts.copy()
        prev = np.full(b, -1, dtype=_I64)
        t_last = anchors.copy()
        inclusive = np.full(b, bool(include_context), dtype=bool)
        active = np.arange(b, dtype=_I64)

        for _ in range(length):
            if active.size == 0:
                break
            c = cur[active]
            lo = self._indptr[c]
            cut = self._search_time(lo, self._indptr[c + 1], t_last[active], inclusive[active])
            has = cut > lo
            active = active[has]
            if active.size == 0:
                break
            start = lo[has]
            if self.candidate_cap:
                # Hub windowing: gather only the ``candidate_cap`` most
                # recent historical events instead of a hub's whole history.
                # The incidence rows are time-sorted, so the window is the
                # tail of ``[lo, cut)`` — the events Eq. 1's exponential
                # decay weights highest; the truncated head carries the
                # smallest weights, so the sampling bias is tiny (see the
                # class docstring's sampling note).
                start = np.maximum(start, cut[has] - self.candidate_cap)
            flat, lens, offs = _ragged_gather(start, cut[has])
            cand_nbr = self._inc_nbr[flat]
            walk_of = np.repeat(np.arange(active.size, dtype=_I64), lens)

            # Eq. 1 kernel on the [0, 1] time scale.
            dt = t_ctx01[active][walk_of] - self._inc_t01[flat]
            wts = self._inc_weight[flat] * np.exp(-self.decay * dt)

            # Eq. 2 search bias, for walks that already have a previous node.
            has_prev = prev[active][walk_of] >= 0
            if has_prev.any():
                pv = prev[active][walk_of][has_prev]
                cd = cand_nbr[has_prev]
                beta = np.where(self._adjacent(pv, cd), 1.0, 1.0 / self.q)
                beta[cd == pv] = 1.0 / self.p
                wts[has_prev] = wts[has_prev] * beta

            # Per-segment CDF sampling: the global cumulative sum is
            # monotone, so one searchsorted serves every walk.  Segment
            # totals need care: differencing the global cumsum cancels
            # catastrophically when one walk's weights are tiny next to the
            # accumulated prefix of its batch neighbors, spuriously
            # terminating it — so multi-segment batches total each segment
            # independently with reduceat.  A lone active walk keeps the
            # cumsum total (the subtraction of prefix 0.0 is exact), which
            # makes every batch-size-1 call reduce to the reference per-node
            # computation bit for bit — reduceat's pairwise summation would
            # not.  Within-segment picks read the global cumsum either way;
            # quantization there only biases *which* valid candidate wins in
            # extreme (>15 orders of magnitude) mixed batches.
            cdf = np.cumsum(wts)
            seg_lo = offs[:-1]
            seg_hi = offs[1:]
            prefix = np.where(seg_lo > 0, cdf[np.maximum(seg_lo - 1, 0)], 0.0)
            if seg_lo.size == 1:
                total = cdf[seg_hi - 1]
            else:
                total = np.add.reduceat(wts, seg_lo)
            ok = (total > 0) & np.isfinite(total)
            active = active[ok]
            if active.size == 0:
                break
            keep = np.flatnonzero(ok)
            u = rng.random(active.size)
            target = prefix[keep] + u * total[keep]
            pick = np.searchsorted(cdf, target, side="right")
            pick = np.clip(pick, seg_lo[keep], seg_hi[keep] - 1)

            nxt = cand_nbr[pick]
            etime = self._inc_time[flat[pick]]
            prev[active] = cur[active]
            cur[active] = nxt
            nodes_buf[active, lengths[active]] = nxt
            times_buf[active, lengths[active] - 1] = etime
            lengths[active] += 1
            t_last[active] = etime
            inclusive[active] = True  # later hops: non-increasing times
        return nodes_buf, times_buf, lengths

    # ------------------------------------------------------------------
    # uniform walks (DeepWalk / GraphSAGE-style fallback)
    # ------------------------------------------------------------------
    def uniform(self, starts, length: int, rng=None) -> list[Walk]:
        """First-order uniform walks over distinct neighbors, in lockstep."""
        nodes_buf, _, lengths = self._uniform_raw(starts, length, rng)
        return self._emit(nodes_buf, None, lengths, with_times=False)

    def _uniform_raw(
        self, starts, length: int, rng=None
    ) -> tuple[np.ndarray, None, np.ndarray]:
        """The uniform lockstep loop on raw buffers (see :meth:`_temporal_raw`)."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        starts = np.asarray(starts, dtype=_I64)
        b = starts.size
        nodes_buf = np.empty((b, length + 1), dtype=self._idx)
        nodes_buf[:, 0] = starts
        lengths = np.ones(b, dtype=_I64)
        cur = starts.copy()
        active = np.arange(b, dtype=_I64)

        for _ in range(length):
            if active.size == 0:
                break
            deg = self._ddeg[cur[active]]
            active = active[deg > 0]
            if active.size == 0:
                break
            c = cur[active]
            pick = rng.integers(0, self._ddeg[c])
            nxt = self._dnbr[self._dindptr[c] + pick]
            cur[active] = nxt
            nodes_buf[active, lengths[active]] = nxt
            lengths[active] += 1
        return nodes_buf, None, lengths

    # ------------------------------------------------------------------
    # array-native walk batching (the aggregator fast path)
    # ------------------------------------------------------------------
    def _pack(
        self,
        nodes_buf: np.ndarray,
        times_buf: np.ndarray | None,
        lengths: np.ndarray,
        k: int,
        chronological: bool,
    ) -> WalkBatch:
        """Pad raw lockstep buffers into a :class:`WalkBatch`, vectorized.

        Bitwise-equivalent to emitting ``Walk`` objects and running them
        through ``batch_walks``: same [0, 1] time scaling, same per-position
        time-sum addition order (edge ``i-1`` accumulated before edge ``i``),
        same in-place reversal for ``chronological`` batches, same zero
        padding.
        """
        n_rows = nodes_buf.shape[0]
        max_len = int(lengths.max(initial=0))
        pos = np.arange(max_len, dtype=_I64)
        valid = pos < lengths[:, None]  # (W, T) bool
        ids = np.where(valid, nodes_buf[:, :max_len], 0)
        # Time-sum accumulation stays float64 (bitwise-equal to the Walk
        # reference for the default policy); only the emitted array narrows.
        sums = np.zeros((n_rows, max_len), dtype=np.float64)
        if times_buf is not None and max_len > 1:
            edge_valid = pos[: max_len - 1] < (lengths - 1)[:, None]
            scaled = np.zeros((n_rows, max_len - 1), dtype=np.float64)
            raw = times_buf[:, : max_len - 1]
            scaled[edge_valid] = self.graph.scale_times(raw[edge_valid])
            # sums[i] = scaled[i-1] + scaled[i], left edge accumulated first
            # (the addition order of Walk.node_time_sums).
            sums[:, 1:] = scaled
            sums[:, : max_len - 1] += scaled
        if chronological:
            idx = np.where(valid, lengths[:, None] - 1 - pos, pos)
            rows = np.arange(n_rows, dtype=_I64)[:, None]
            ids = ids[rows, idx]
            sums = sums[rows, idx]
        return WalkBatch(
            ids=ids,
            valid=valid.astype(self._real),
            time_sums=sums.astype(self._real, copy=False),
            k=k,
        )

    def temporal_walk_batch(
        self,
        nodes,
        anchors,
        num_walks: int,
        length: int,
        rng=None,
        include_context: bool = False,
        chronological: bool = True,
    ) -> WalkBatch:
        """``num_walks`` temporal walks per ``(node, anchor)`` pair as arrays.

        The array-native fast path of :meth:`temporal_walk_sets` +
        ``batch_walks``: the same lockstep loop fills the same raw buffers
        with the same RNG draws, but the result is padded straight into a
        :class:`WalkBatch` — no per-walk ``Walk`` objects, no Python
        re-padding loop.  Bypasses the LRU walk cache (it stores ``Walk``
        sets); callers that want cache reuse take the ``Walk`` path.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        nodes = np.asarray(nodes, dtype=_I64)
        anchors = np.asarray(anchors, dtype=np.float64)
        starts = np.repeat(nodes, num_walks)
        anch = np.repeat(anchors, num_walks)
        bufs = self._temporal_raw(starts, anch, length, rng, include_context)
        return self._pack(*bufs, k=num_walks, chronological=chronological)

    def uniform_walk_batch(
        self,
        nodes,
        num_walks: int,
        length: int,
        rng=None,
        chronological: bool = True,
    ) -> WalkBatch:
        """``num_walks`` uniform walks per node as a :class:`WalkBatch`.

        Array-native fast path of :meth:`uniform_walk_sets` (see
        :meth:`temporal_walk_batch`); static walks carry no edge times, so
        ``time_sums`` is all zeros.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        nodes = np.asarray(nodes, dtype=_I64)
        starts = np.repeat(nodes, num_walks)
        bufs = self._uniform_raw(starts, length, rng)
        return self._pack(*bufs, k=num_walks, chronological=chronological)

    # ------------------------------------------------------------------
    # node2vec walks (second-order, alias-sampled)
    # ------------------------------------------------------------------
    def _first_order_tables(self) -> PackedAliasTables:
        """Alias tables of every node's multiplicity-weighted neighbor pick."""
        if self._first_tables is None:
            self._first_tables = PackedAliasTables(self._dmult, self._dindptr)
        return self._first_tables

    def pair_table(self, prev: int, cur: int):
        """The ``(prev -> cur)`` second-order transition table (memoized).

        Returns ``(prob, alias)`` arrays over ``cur``'s distinct neighbors,
        weighted by Eq. 2 bias times event multiplicity.
        """
        key = (prev, cur)
        entry = self._pair_cache.get(key)
        if entry is None:
            lo, hi = self._dindptr[cur], self._dindptr[cur + 1]
            nbrs = self._dnbr[lo:hi]
            adj = self._adjacent(np.full(nbrs.size, prev, dtype=_I64), nbrs)
            bias = np.where(adj, 1.0, 1.0 / self.q)
            bias[nbrs == prev] = 1.0 / self.p
            weights = bias * self._dmult[lo:hi]
            entry = build_alias_tables(weights, np.array([0, nbrs.size]))
            self._pair_cache[key] = entry
        return entry

    def node2vec(self, starts, length: int, rng=None) -> list[Walk]:
        """Second-order node2vec walks in lockstep.

        The first hop samples every walk's packed first-order table with one
        vectorized draw; later hops sample the memoized ``(prev, cur)`` alias
        tables with one bounded-integer batch plus one coin batch per step.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        starts = np.asarray(starts, dtype=_I64)
        b = starts.size
        nodes_buf = np.empty((b, length + 1), dtype=self._idx)
        nodes_buf[:, 0] = starts
        lengths = np.ones(b, dtype=_I64)
        cur = starts.copy()
        prev = np.full(b, -1, dtype=_I64)
        active = np.arange(b, dtype=_I64)

        # First hop: multiplicity-weighted neighbor pick.
        active = active[self._ddeg[starts] > 0]
        if active.size:
            local = self._first_order_tables().sample(starts[active], rng)
            nxt = self._dnbr[self._dindptr[starts[active]] + local]
            prev[active] = starts[active]
            cur[active] = nxt
            nodes_buf[active, 1] = nxt
            lengths[active] = 2

        for _ in range(length - 1):
            if active.size == 0:
                break
            deg = self._ddeg[cur[active]]
            active = active[deg > 0]
            if active.size == 0:
                break
            c = cur[active]
            tables = [self.pair_table(int(p_), int(c_)) for p_, c_ in zip(prev[active], c)]
            idx = rng.integers(0, self._ddeg[c])
            coin = rng.random(active.size)
            local = np.empty(active.size, dtype=_I64)
            for j, (prob, alias) in enumerate(tables):
                i = int(idx[j])
                local[j] = i if coin[j] < prob[i] else int(alias[i])
            nxt = self._dnbr[self._dindptr[c] + local]
            prev[active] = c
            cur[active] = nxt
            nodes_buf[active, lengths[active]] = nxt
            lengths[active] += 1
        return self._emit(nodes_buf, None, lengths, with_times=False)

    # ------------------------------------------------------------------
    # CTDNE walks (forward-in-time, uniform)
    # ------------------------------------------------------------------
    def ctdne(self, edge_ids, length: int, rng=None) -> list[Walk]:
        """Time-respecting forward walks from the given start edges.

        Each walk orients its start edge with one coin flip, then repeatedly
        picks uniformly among the strictly-newer incident events — the
        lockstep version of ``CTDNEWalker.walk_sequential``.
        """
        check_positive("length", length)
        rng = ensure_rng(rng)
        edge_ids = np.asarray(edge_ids, dtype=_I64)
        graph = self.graph
        b = edge_ids.size
        u = graph.src[edge_ids].astype(_I64)
        v = graph.dst[edge_ids].astype(_I64)
        t = graph.time[edge_ids].astype(np.float64)
        flip = rng.random(b) < 0.5
        first = np.where(flip, v, u)
        second = np.where(flip, u, v)

        nodes_buf = np.empty((b, length + 1), dtype=self._idx)
        times_buf = np.empty((b, max(length, 1)), dtype=np.float64)
        nodes_buf[:, 0] = first
        nodes_buf[:, 1] = second
        times_buf[:, 0] = t
        lengths = np.full(b, 2, dtype=_I64)
        cur = second.copy()
        t_cur = t.copy()
        active = np.arange(b, dtype=_I64)
        strictly_after = np.ones(b, dtype=bool)  # searchsorted side='right'

        for _ in range(length - 1):
            if active.size == 0:
                break
            c = cur[active]
            hi = self._indptr[c + 1]
            cut = self._search_time(
                self._indptr[c], hi, t_cur[active], strictly_after[active]
            )
            count = hi - cut
            has = count > 0
            active = active[has]
            if active.size == 0:
                break
            cut = cut[has]
            pick = rng.integers(0, count[has])
            sel = cut + pick
            nxt = self._inc_nbr[sel]
            etime = self._inc_time[sel]
            cur[active] = nxt
            t_cur[active] = etime
            nodes_buf[active, lengths[active]] = nxt
            times_buf[active, lengths[active] - 1] = etime
            lengths[active] += 1
        return self._emit(nodes_buf, times_buf, lengths, with_times=True)

    # ------------------------------------------------------------------
    # cache-aware walk-set APIs (what EHNA.fit calls)
    # ------------------------------------------------------------------
    def _time_key(self, t: float):
        if self.time_buckets <= 0:
            return float(t)
        return int(self.graph.scale_time(float(t)) * self.time_buckets)

    def temporal_walk_sets(
        self,
        nodes,
        anchors,
        num_walks: int,
        length: int,
        rng=None,
        include_context: bool = False,
        use_cache: bool = True,
    ) -> list[list[Walk]]:
        """``num_walks`` temporal walks per ``(node, anchor)`` pair, batched.

        All cache misses are advanced together in one lockstep batch of
        ``misses * num_walks`` walks; hits return the memoized walk set
        without consuming any randomness.  ``use_cache=False`` bypasses the
        LRU entirely (neither reads nor writes) — inference paths use this
        so serving answers never depend on training-cache warmth and never
        pollute entries training will consume.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        nodes = np.asarray(nodes, dtype=_I64)
        anchors = np.asarray(anchors, dtype=np.float64)
        results: list = [None] * nodes.size
        cached = self.cache is not None and use_cache
        miss = []
        if cached:
            keys = [
                ("temporal", int(v), self._time_key(t), num_walks, length, include_context)
                for v, t in zip(nodes, anchors)
            ]
            for i, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is None:
                    miss.append(i)
                else:
                    results[i] = hit
        else:
            miss = list(range(nodes.size))
        if miss:
            midx = np.asarray(miss, dtype=_I64)
            starts = np.repeat(nodes[midx], num_walks)
            anch = np.repeat(anchors[midx], num_walks)
            walks = self.temporal(starts, anch, length, rng, include_context)
            for j, i in enumerate(miss):
                ws = walks[j * num_walks : (j + 1) * num_walks]
                results[i] = ws
                if cached:
                    self.cache.put(keys[i], ws)
        return results

    def uniform_walk_sets(
        self, nodes, num_walks: int, length: int, rng=None, use_cache: bool = True
    ) -> list[list[Walk]]:
        """``num_walks`` uniform walks per node, batched and cache-aware.

        ``use_cache=False`` bypasses the LRU entirely (see
        :meth:`temporal_walk_sets`); note the uniform cache key carries no
        anchor, so sharing it between training and inference would make
        serving answers depend on cache warmth.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        nodes = np.asarray(nodes, dtype=_I64)
        results: list = [None] * nodes.size
        cached = self.cache is not None and use_cache
        miss = []
        if cached:
            keys = [("uniform", int(v), num_walks, length) for v in nodes]
            for i, key in enumerate(keys):
                hit = self.cache.get(key)
                if hit is None:
                    miss.append(i)
                else:
                    results[i] = hit
        else:
            miss = list(range(nodes.size))
        if miss:
            midx = np.asarray(miss, dtype=_I64)
            starts = np.repeat(nodes[midx], num_walks)
            walks = self.uniform(starts, length, rng)
            for j, i in enumerate(miss):
                ws = walks[j * num_walks : (j + 1) * num_walks]
                results[i] = ws
                if cached:
                    self.cache.put(keys[i], ws)
        return results
