"""CTDNE's time-respecting walks (Nguyen et al. [12]).

A walk begins at an edge chosen uniformly at random (the paper's experiments
use uniform initial edge selection, Section V.C) and then only traverses
edges with *strictly increasing* timestamps, so each walk is one-directional
in time — the defining constraint of continuous-time dynamic network
embedding.  (Strict increase also prevents degenerate bouncing on the edge
just traversed, which non-strict ordering would allow on tied timestamps.)
Node selection at each step is uniform over the valid continuations.

Stepping is delegated to the vectorized
:class:`~repro.walks.engine.BatchedWalkEngine`: single-walk calls run a batch
of one (bitwise identical to :meth:`CTDNEWalker.walk_from_edge_sequential`
under the same RNG state) and ``corpus`` advances all start edges of a round
in lockstep.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive
from repro.walks.base import Walk
from repro.walks.engine import BatchedWalkEngine


class CTDNEWalker:
    """Uniform temporal walks that never move backwards in time."""

    def __init__(self, graph: TemporalGraph, engine: BatchedWalkEngine | None = None):
        self.graph = graph
        self.engine = engine if engine is not None else BatchedWalkEngine(graph)

    def walk_from_edge(self, edge_id: int, length: int, rng=None) -> Walk:
        """Extend a time-respecting walk forward from the given starting edge."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        return self.engine.ctdne(np.array([edge_id]), length, rng)[0]

    def walk_from_edge_sequential(self, edge_id: int, length: int, rng=None) -> Walk:
        """The pre-engine per-walk loop (reference implementation)."""
        check_positive("length", length)
        rng = ensure_rng(rng)
        graph = self.graph
        u = int(graph.src[edge_id])
        v = int(graph.dst[edge_id])
        t = float(graph.time[edge_id])
        # The edge is undirected: orient it uniformly.
        if rng.random() < 0.5:
            u, v = v, u
        nodes = [u, v]
        edge_times = [t]
        while len(nodes) < length + 1:
            nbrs, times, _eids = self.graph.incident(nodes[-1])
            cut = np.searchsorted(times, t, side="right")
            valid = nbrs[cut:]
            valid_t = times[cut:]
            if valid.size == 0:
                break
            pick = int(rng.integers(valid.size))
            nodes.append(int(valid[pick]))
            t = float(valid_t[pick])
            edge_times.append(t)
        return Walk(nodes=nodes, edge_times=edge_times)

    def corpus(self, num_walks: int, length: int, rng=None) -> list[list[int]]:
        """Sample ``num_walks`` walks from uniformly chosen initial edges.

        The start edges are drawn up front and the walks advance in one
        lockstep batch.
        """
        check_positive("num_walks", num_walks)
        rng = ensure_rng(rng)
        edges = rng.integers(self.graph.num_edges, size=num_walks)
        return [
            w.nodes
            for w in self.engine.ctdne(edges, length, rng)
            if len(w) > 1
        ]
