"""Random-walk engines: temporal (EHNA), node2vec, CTDNE, uniform.

All four per-node walkers are thin wrappers over the shared
:class:`~repro.walks.engine.BatchedWalkEngine`, which advances whole batches
of walks in lockstep with vectorized NumPy gathers (and is bitwise identical
to the per-node ``*_sequential`` reference loops at batch size 1).
"""

from repro.walks.base import Walk, WalkBatch, concat_walk_batches
from repro.walks.ctdne import CTDNEWalker
from repro.walks.engine import BatchedWalkEngine, WalkCache
from repro.walks.static import Node2VecWalker, UniformWalker
from repro.walks.temporal import TemporalWalker

__all__ = [
    "Walk",
    "WalkBatch",
    "concat_walk_batches",
    "BatchedWalkEngine",
    "WalkCache",
    "TemporalWalker",
    "Node2VecWalker",
    "UniformWalker",
    "CTDNEWalker",
]
