"""Random-walk engines: temporal (EHNA), node2vec, CTDNE, uniform."""

from repro.walks.base import Walk
from repro.walks.ctdne import CTDNEWalker
from repro.walks.static import Node2VecWalker, UniformWalker
from repro.walks.temporal import TemporalWalker

__all__ = [
    "Walk",
    "TemporalWalker",
    "Node2VecWalker",
    "UniformWalker",
    "CTDNEWalker",
]
