"""Dataset statistics, as reported in Table I of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal_graph import TemporalGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of a temporal network (Table I plus extras)."""

    num_nodes: int
    num_temporal_edges: int
    num_static_edges: int
    time_min: float
    time_max: float
    mean_degree: float
    max_degree: int
    isolated_nodes: int

    def as_row(self) -> dict:
        """Row in the shape of Table I (plus diagnostics)."""
        return {
            "# nodes": self.num_nodes,
            "# temporal edges": self.num_temporal_edges,
            "# static edges": self.num_static_edges,
            "time span": (self.time_min, self.time_max),
            "mean degree": round(self.mean_degree, 3),
            "max degree": self.max_degree,
            "isolated nodes": self.isolated_nodes,
        }


def graph_statistics(graph: TemporalGraph) -> GraphStatistics:
    """Compute the Table-I statistics for ``graph``."""
    deg = graph.degrees()
    lo = np.minimum(graph.src, graph.dst)
    hi = np.maximum(graph.src, graph.dst)
    static_edges = np.unique(np.stack([lo, hi], axis=1), axis=0).shape[0]
    tmin, tmax = graph.time_span
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_temporal_edges=graph.num_edges,
        num_static_edges=int(static_edges),
        time_min=tmin,
        time_max=tmax,
        mean_degree=float(deg.mean()),
        max_degree=int(deg.max()),
        isolated_nodes=int(np.sum(deg == 0)),
    )
