"""Temporal-graph substrate: data structure, IO, ingestion and statistics."""

from repro.graph.io import ingest_edge_list, load_edge_list, save_edge_list
from repro.graph.stats import GraphStatistics, graph_statistics
from repro.graph.temporal_graph import EdgeEvent, TemporalGraph

__all__ = [
    "TemporalGraph",
    "EdgeEvent",
    "load_edge_list",
    "save_edge_list",
    "ingest_edge_list",
    "GraphStatistics",
    "graph_statistics",
]
