"""The temporal-network data structure (Definition 1 of the paper).

A :class:`TemporalGraph` is an undirected multigraph whose every edge carries
a timestamp and a weight.  The layout is a time-sorted edge table plus a
per-node, time-sorted incidence index, so the queries the algorithms need are
all cheap:

- ``events_before(v, t)``: the historical interactions of ``v`` strictly (or
  non-strictly) before ``t`` — one ``searchsorted`` on the per-node time
  column.  This powers the temporal random walk (Section IV.A) and HTNE's
  neighborhood-formation sequences.
- ``edges_until(t)`` / ``snapshot(t)``: the graph as of time ``t``, used by
  the link-prediction protocol (train on the oldest 80% of edges).
- chronological edge iteration, used to replay edge formations during EHNA
  training.

Timestamps may be arbitrary floats (years, epoch seconds).  ``times01`` gives
the monotone rescaling to ``[0, 1]`` used inside decay kernels and attention
(see DESIGN.md, substitution table).

**Streaming extension.**  ``extend`` returns a brand-new graph (one full
stable merge + CSR rebuild per call) — correct but O(m log m) per arriving
micro-batch.  The amortized path is ``extend_in_place``: arriving events land
in an append buffer in O(batch), and the merge/rebuild runs once per
**compaction** — triggered every ``compact_every`` buffered events, by an
explicit ``compact()``, or transparently on the first read of any derived
structure.  Readers therefore always observe the fully merged graph
(``pending_events`` tells how many events are currently buffered), and a
compacted stream is bitwise identical to a from-scratch ``from_edges`` build
of the same events.  ``take_fresh`` hands the not-yet-absorbed event ids to
``EmbeddingMethod.partial_fit(None)``; ``pin_time_scale`` freezes the
``times01`` mapping so a growing stream head cannot silently re-scale the
history a trained model was fitted on.

**Storage backends.**  The base event columns live behind the
:class:`~repro.storage.GraphStorage` seam: ``from_edges`` (and every
derived graph — snapshots, splits, extensions) wraps in-memory arrays in an
:class:`~repro.storage.ArrayStorage`, while :meth:`from_storage` builds a
graph over any backend — in particular a columnar on-disk
:class:`~repro.storage.MemmapStorage`, whose lazily memory-mapped columns
feed the very same vectorized query/CSR/walk code without ever residing in
memory at once.  Derived structures (incidence CSR, distinct CSR, pair
index) are always in-memory regardless of backend, and *mutation
materializes*: a compaction of buffered arrivals rebinds the graph to a
fresh ``ArrayStorage`` holding the merged table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.dtypes import index_dtype_for
from repro.storage.base import ArrayStorage, GraphStorage, validate_event_columns
from repro.utils.validation import check_fraction


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped interaction, as yielded by chronological iteration."""

    u: int
    v: int
    time: float
    weight: float
    edge_id: int


class TemporalGraph:
    """Undirected temporal multigraph with O(log deg) historical queries.

    Construct via :meth:`from_edges`; the constructor itself expects already
    validated, time-sorted arrays and is considered internal.
    """

    def __init__(self, num_nodes, src, dst, time, weight):
        """Wrap already validated, time-sorted edge arrays (internal)."""
        self._init_from_store(
            int(num_nodes),
            ArrayStorage(src, dst, time, weight, num_nodes=int(num_nodes)),
        )

    def _init_from_store(self, num_nodes: int, store: GraphStorage) -> None:
        """Bind a storage backend and build the derived structures."""
        self._n = num_nodes
        self._store = store
        self._pending: list[tuple] = []  # buffered (src, dst, time, weight)
        self._pending_count = 0
        self._unabsorbed = np.empty(0, dtype=np.int64)  # compacted, unclaimed
        self._compactions = 0
        self._scale = None  # pinned (lo, hi) of the times01 mapping, or None
        self._build_incidence()
        self._pair_keys = None  # lazy: sorted unique min*n+max pair keys
        self._times01 = None  # lazy: times rescaled to [0, 1]
        self._inc_weight = None  # lazy: per-incidence-slot edge weights
        self._distinct = None  # lazy: distinct-neighbor CSR

    # -- base columns, delegated to the storage backend ----------------
    # Every derived structure and query reads the event table through these
    # four properties, which is what makes the graph backend-agnostic: an
    # ArrayStorage hands back resident arrays, a MemmapStorage hands back
    # lazily opened read-only maps, and the numpy code downstream is
    # identical either way.
    @property
    def _src(self) -> np.ndarray:
        return self._store.column("src")

    @property
    def _dst(self) -> np.ndarray:
        return self._store.column("dst")

    @property
    def _time(self) -> np.ndarray:
        return self._store.column("time")

    @property
    def _weight(self) -> np.ndarray:
        return self._store.column("weight")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_edge_arrays(src, dst, time, weight):
        """Cast and check parallel edge arrays; returns the casted tuple.

        Shared by :meth:`from_edges` and :meth:`extend`, and delegated to
        :func:`repro.storage.validate_event_columns` — the same gate the
        memmap ingestion writer uses, so an event is accepted or rejected
        identically no matter which door it entered through.  Empty arrays
        are allowed here (``extend`` accepts a no-op batch); ``from_edges``
        rejects them separately.
        """
        return validate_event_columns(src, dst, time, weight)

    @classmethod
    def from_edges(cls, src, dst, time, weight=None, num_nodes=None) -> "TemporalGraph":
        """Build a graph from parallel edge arrays.

        Edges are stably sorted by timestamp.  Self-loops are rejected;
        parallel edges (repeat interactions) are kept — they are meaningful
        temporal events (e.g. repeat collaborations in DBLP).
        """
        src, dst, time, weight = cls._validate_edge_arrays(src, dst, time, weight)
        if src.size == 0:
            raise ValueError("a temporal graph needs at least one edge")

        max_node = int(max(src.max(), dst.max()))
        if num_nodes is None:
            num_nodes = max_node + 1
        elif num_nodes <= max_node:
            raise ValueError(
                f"num_nodes={num_nodes} too small for max node id {max_node}"
            )

        order = np.argsort(time, kind="stable")
        return cls(num_nodes, src[order], dst[order], time[order], weight[order])

    @classmethod
    def from_storage(
        cls, storage: GraphStorage, num_nodes=None, validate: bool = False
    ) -> "TemporalGraph":
        """Build a graph over an existing storage backend.

        The storage's columns must already be time-sorted and validated —
        true by construction for any store a
        :class:`~repro.storage.MemmapStorageWriter` finalized, which is why
        the default trusts the manifest.  ``validate=True`` re-runs the full
        column validation plus a sortedness scan (one pass over the mapped
        columns) for stores of unknown provenance.  ``num_nodes`` overrides
        the storage's recorded id space to reserve headroom.

        Unlike :meth:`from_edges`, no copy or re-sort happens here: the
        graph reads the backend's columns in place, so a memmap-backed
        graph's event table stays on disk.
        """
        if storage.num_events == 0:
            raise ValueError("a temporal graph needs at least one edge")
        n = storage.num_nodes if num_nodes is None else int(num_nodes)
        if validate:
            src, dst, time, _ = validate_event_columns(
                storage.src, storage.dst, storage.time, storage.weight
            )
            if np.any(np.diff(time) < 0):
                raise ValueError("storage columns are not time-sorted")
            max_node = int(max(src.max(), dst.max()))
            if n <= max_node:
                raise ValueError(
                    f"num_nodes={n} too small for max node id {max_node}"
                )
        graph = cls.__new__(cls)
        graph._init_from_store(n, storage)
        return graph

    # ------------------------------------------------------------------
    # shared-memory twins (the repro.parallel substrate)
    # ------------------------------------------------------------------
    def to_shared(self, name: str | None = None) -> "TemporalGraph":
        """A twin of this graph backed by one shared-memory segment.

        Forces every lazy derived structure (incidence CSR, distinct CSR,
        pair index, scaled times) and packs it next to the event columns in
        a :class:`~repro.storage.SharedMemoryStorage` segment, then returns
        a new graph whose arrays are read-only views into that segment.
        The receiver is untouched.  Worker processes attach zero-copy with
        :meth:`from_handle` via the twin's :attr:`shared_handle`; a pinned
        time scale travels in the handle.  The creating process owns the
        segment — it is unlinked when the twin's storage is closed or
        garbage collected.
        """
        from repro.storage.shared import SharedMemoryStorage

        self._ensure_compacted()
        indptr, nbr, times, weights, eids = self.incidence_csr()
        dindptr, dnbr, dmult = self.distinct_csr()
        columns = {
            "src": self._src,
            "dst": self._dst,
            "time": self._time,
            "weight": self._weight,
        }
        derived = {
            "inc_offsets": indptr,
            "inc_nbr": nbr,
            "inc_time": times,
            "inc_weight": weights,
            "inc_eid": eids,
            "degree": self._degree,
            "dindptr": dindptr,
            "dnbr": dnbr,
            "dmult": dmult,
            "times01": self.times01(),
            "pair_keys": self._pair_index(),
        }
        store = SharedMemoryStorage.from_graph_arrays(
            columns, derived, num_nodes=self._n, time_scale=self._scale, name=name
        )
        twin = TemporalGraph.__new__(TemporalGraph)
        twin._init_from_shared(store)
        return twin

    @classmethod
    def from_handle(cls, handle) -> "TemporalGraph":
        """Attach to another process's shared graph — zero copy, zero rebuild.

        ``handle`` is a :class:`~repro.storage.PackHandle` from
        :attr:`shared_handle` (picklable, a few hundred bytes).  Every array
        — event columns *and* the derived CSR indexes — is mapped read-only
        from the owner's segment, so attaching costs no per-event work at
        all; this is what makes worker-pool startup independent of graph
        size.
        """
        from repro.storage.shared import SharedMemoryStorage

        graph = cls.__new__(cls)
        graph._init_from_shared(SharedMemoryStorage.attach(handle))
        return graph

    def _init_from_shared(self, store) -> None:
        """Bind a shared store, wiring derived structures straight to its
        views instead of rebuilding them (the :meth:`_init_from_store`
        counterpart for segments that already carry the indexes)."""
        self._n = store.num_nodes
        self._store = store
        self._pending = []
        self._pending_count = 0
        self._unabsorbed = np.empty(0, dtype=np.int64)
        self._compactions = 0
        self._scale = store.time_scale
        self._inc_offsets = store.array("inc_offsets")
        self._inc_nbr = store.array("inc_nbr")
        self._inc_eid = store.array("inc_eid")
        self._inc_time = store.array("inc_time")
        self._degree = store.array("degree")
        self._index_dtype = self._inc_offsets.dtype
        self._distinct = (
            store.array("dindptr"),
            store.array("dnbr"),
            store.array("dmult"),
        )
        self._pair_keys = store.array("pair_keys")
        self._times01 = store.array("times01")
        self._inc_weight = store.array("inc_weight")

    @property
    def shared_handle(self):
        """The picklable attach token of a shared-memory-backed graph.

        Workers pass it to :meth:`from_handle`.  Raises ``ValueError`` for
        other backends — call :meth:`to_shared` first.
        """
        self._ensure_compacted()
        if self._store.backend != "shared":
            raise ValueError(
                "graph is not backed by shared memory; call to_shared() first"
            )
        return self._store.handle

    def extend(
        self, src, dst, time, weight=None, num_nodes=None
    ) -> tuple["TemporalGraph", np.ndarray]:
        """A new graph with the given events appended; the original is untouched.

        This is the streaming path behind ``EmbeddingMethod.partial_fit``:
        arriving interactions are merged into the time-sorted edge table (a
        stable sort keeps existing ties in their original order and places
        equal-time arrivals after them) and the CSR incidence index is
        rebuilt.  New node ids beyond the current id space grow the graph;
        ``num_nodes`` can reserve extra headroom explicitly.

        Returns ``(new_graph, fresh_edge_ids)`` where ``fresh_edge_ids``
        indexes the appended events *in the new graph's edge-id space* (ids
        of older events may shift when arrivals carry historical
        timestamps).  An empty batch returns ``(self, empty)``.
        """
        self._ensure_compacted()
        src, dst, time, weight = self._validate_edge_arrays(src, dst, time, weight)
        if src.size == 0:
            return self, np.empty(0, dtype=np.int64)

        n = self._grown_node_count(src, dst, num_nodes)
        all_src = np.concatenate([self._src, src])
        all_dst = np.concatenate([self._dst, dst])
        all_time = np.concatenate([self._time, time])
        all_weight = np.concatenate([self._weight, weight])
        order = np.argsort(all_time, kind="stable")
        fresh = np.flatnonzero(order >= self._src.size)
        graph = TemporalGraph(
            n, all_src[order], all_dst[order], all_time[order], all_weight[order]
        )
        graph._scale = self._scale  # a pinned time scale survives extension
        return graph, fresh

    def _grown_node_count(self, src, dst, num_nodes) -> int:
        """Node count after admitting ``src``/``dst`` (shared extend logic)."""
        max_node = int(max(src.max(), dst.max()))
        n = max(self._n, max_node + 1)
        if num_nodes is not None:
            if num_nodes <= max_node:
                raise ValueError(
                    f"num_nodes={num_nodes} too small for max node id {max_node}"
                )
            n = max(n, int(num_nodes))
        return n

    # ------------------------------------------------------------------
    # streaming extension (amortized in-place path)
    # ------------------------------------------------------------------
    def extend_in_place(
        self, src, dst, time, weight=None, num_nodes=None, compact_every=None
    ) -> "TemporalGraph":
        """Append events to this graph's buffer in O(batch); returns self.

        The amortized counterpart of :meth:`extend`: events are validated
        and stored in an append buffer, and the stable merge + CSR rebuild
        that :meth:`extend` pays on *every* call runs once per compaction —
        when ``compact_every`` buffered events accumulate, on an explicit
        :meth:`compact`, or transparently on the first read of any derived
        structure.  ``num_nodes`` reserves id headroom exactly as in
        :meth:`extend`; new node ids grow the graph immediately (node ids
        are stable — growth never renumbers existing nodes).

        Unlike :meth:`extend` this **mutates** the receiver, which is why
        :func:`repro.datasets.load` hands out :meth:`copy` snapshots of its
        cache entries.  Use it when the graph is an owned, live object — the
        streaming ingest path (`repro.stream.OnlineService`) — not on graphs
        shared with other readers.
        """
        src, dst, time, weight = self._validate_edge_arrays(src, dst, time, weight)
        if src.size == 0:
            return self
        self._n = self._grown_node_count(src, dst, num_nodes)
        self._pending.append((src, dst, time, weight))
        self._pending_count += src.size
        if compact_every is not None and self._pending_count >= int(compact_every):
            self.compact()
        return self

    @property
    def pending_events(self) -> int:
        """Number of buffered events awaiting compaction."""
        return self._pending_count

    @property
    def compactions(self) -> int:
        """How many buffer compactions this graph has performed."""
        return self._compactions

    def compact(self) -> np.ndarray:
        """Merge every buffered event into the sorted edge table.

        One stable merge covers all pending events regardless of how many
        ``extend_in_place`` calls buffered them — that is the amortization.
        Returns the edge ids of the just-merged events *in the new id
        space* (empty when nothing was pending); ids of older events may
        shift when arrivals carry historical timestamps.  After compaction
        the graph is bitwise identical to a from-scratch build of the same
        event set.
        """
        if not self._pending:
            return np.empty(0, dtype=np.int64)
        base_m = self._src.size
        all_src = np.concatenate([self._src] + [p[0] for p in self._pending])
        all_dst = np.concatenate([self._dst] + [p[1] for p in self._pending])
        all_time = np.concatenate([self._time] + [p[2] for p in self._pending])
        all_weight = np.concatenate([self._weight] + [p[3] for p in self._pending])
        self._pending.clear()
        self._pending_count = 0
        order = np.argsort(all_time, kind="stable")
        # Positions in the merged order: new_pos[old_position] = new id.
        new_pos = np.empty(order.size, dtype=np.int64)
        new_pos[order] = np.arange(order.size, dtype=np.int64)
        # Mutation materializes: whatever backend held the old table (an
        # on-disk store included), the merged table is a fresh in-memory
        # ArrayStorage.  Rebinding (never writing into the old columns)
        # keeps copy() snapshots and read-only memmaps intact.
        self._store = ArrayStorage(
            all_src[order],
            all_dst[order],
            all_time[order],
            all_weight[order],
            num_nodes=self._n,
        )
        self._build_incidence()
        # Rebind (never mutate) the lazy structures: copies made by copy()
        # keep observing the pre-compaction arrays.
        self._pair_keys = None
        self._times01 = None
        self._inc_weight = None
        self._distinct = None
        fresh = np.sort(new_pos[base_m:])
        # Ids handed out by earlier compactions but not yet claimed by
        # take_fresh() shift with the merge; remap them into the new space.
        self._unabsorbed = np.sort(
            np.concatenate([new_pos[self._unabsorbed], fresh])
        )
        self._compactions += 1
        return fresh

    def restore_fresh_tail(self, count: int) -> "TemporalGraph":
        """Re-mark the newest ``count`` events as not yet absorbed.

        The crash-recovery hook behind
        :meth:`repro.stream.OnlineService.recover`: a recovered graph is
        rebuilt from checkpoint arrays, which lose the in-memory
        "ingested but unabsorbed" bookkeeping — but the online-service
        ingest path only ever appends at the stream head, so the
        unabsorbed events are exactly the newest ``count`` rows of the
        time-sorted table.  Overwrites (never extends) the unclaimed set;
        returns self.
        """
        self._ensure_compacted()
        count = int(count)
        if count < 0 or count > self._src.size:
            raise ValueError(
                f"cannot mark {count} fresh events on a graph with "
                f"{self._src.size} events"
            )
        self._unabsorbed = np.arange(
            self._src.size - count, self._src.size, dtype=np.int64
        )
        return self

    def take_fresh(self) -> np.ndarray:
        """Claim the event ids appended since the last ``take_fresh``.

        Compacts first, so the returned ids index the current edge table.
        This is the hand-off `EmbeddingMethod.partial_fit(None)` uses to
        train on buffered arrivals exactly once: ids survive intermediate
        compactions (they are remapped each merge) and are cleared once
        claimed.
        """
        self._ensure_compacted()
        fresh, self._unabsorbed = self._unabsorbed, np.empty(0, dtype=np.int64)
        return fresh

    def _ensure_compacted(self) -> None:
        """Readers call this first: buffered events must be visible."""
        if self._pending:
            self.compact()

    def copy(self) -> "TemporalGraph":
        """A snapshot sharing this graph's (immutable) arrays in O(1).

        Compaction *rebinds* arrays rather than writing into them, so the
        copy and the original can diverge freely afterwards: extending one
        in place never changes what the other observes.  This is what makes
        copy-on-hit cheap enough for the ``datasets.load`` memoization.
        """
        self._ensure_compacted()
        twin = TemporalGraph.__new__(TemporalGraph)
        twin.__dict__.update(self.__dict__)
        twin._pending = []
        twin._pending_count = 0
        twin._unabsorbed = self._unabsorbed.copy()
        return twin

    # ------------------------------------------------------------------
    # time-scale pinning
    # ------------------------------------------------------------------
    def pin_time_scale(self, lo: float | None = None, hi: float | None = None):
        """Freeze the :meth:`times01` mapping at the given (default current) span.

        Without a pin, ``times01``/``scale_time`` rescale against the *live*
        ``time_span`` — so every later-than-head arrival silently shifts the
        scaled timestamps of the whole history, perturbing the decay-kernel
        inputs a trained model was fitted on.  Pinning fixes ``(lo, hi)``
        once (events beyond ``hi`` map monotonically above 1.0) and survives
        :meth:`extend` / :meth:`extend_in_place` / :meth:`copy`; snapshots
        and splits keep the legacy behavior of scaling to their own span.
        Returns self.
        """
        if lo is None or hi is None:
            span = self.time_span
            lo = span[0] if lo is None else float(lo)
            hi = span[1] if hi is None else float(hi)
        if not (np.isfinite(lo) and np.isfinite(hi)) or hi < lo:
            raise ValueError(f"invalid pinned time scale [{lo!r}, {hi!r}]")
        self._scale = (float(lo), float(hi))
        self._times01 = None
        return self

    @property
    def time_scale(self) -> tuple[float, float] | None:
        """The pinned ``times01`` span, or None when scaling tracks the data."""
        return self._scale

    def _scale_span(self) -> tuple[float, float]:
        """(lo, hi) the 01-scaling maps from: the pin, else the data span."""
        return self._scale if self._scale is not None else self.time_span

    def _build_incidence(self) -> None:
        """Per-node incidence lists sorted by time (CSR layout).

        Each edge contributes two incidence slots (one per endpoint).  A
        stable sort by owning node preserves the global time order inside
        every node's slice, so the whole index is built with vectorized
        NumPy ops — no per-edge Python loop.

        Index arrays narrow to ``int32`` whenever every value they hold
        (incidence offsets up to ``2 * num_edges``, node ids up to
        ``num_nodes``, edge ids up to ``num_edges``) fits — the overflow
        guard is :func:`repro.nn.dtypes.index_dtype_for`, the precision
        policy's shared index-width rule — halving the index memory of the
        CSR the batched walk engine gathers from.  Narrowing is exact: an
        ``int32`` id is the same id, so walks, queries and every float
        result are unchanged; graphs beyond ~10⁹ incidence slots keep
        ``int64``.
        """
        n, m = self._n, self._src.size
        idx = index_dtype_for(max(2 * m, n + 1))
        self._index_dtype = idx
        owner = np.empty(2 * m, dtype=idx)
        nbr = np.empty(2 * m, dtype=idx)
        owner[0::2] = self._src
        owner[1::2] = self._dst
        nbr[0::2] = self._dst
        nbr[1::2] = self._src
        eid = np.repeat(np.arange(m, dtype=idx), 2)
        order = np.argsort(owner, kind="stable")
        counts = np.bincount(owner, minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self._inc_offsets = offsets.astype(idx, copy=False)
        self._inc_nbr = nbr[order]
        self._inc_eid = eid[order]
        self._inc_time = self._time[self._inc_eid]
        self._degree = counts.astype(idx, copy=False)

    def _build_distinct(self) -> None:
        """Distinct-neighbor CSR: sorted unique neighbors with multiplicities."""
        n = self._n
        idx = self._index_dtype
        owner = np.repeat(np.arange(n, dtype=idx), self._degree)
        order = np.lexsort((self._inc_nbr, owner))
        s_owner = owner[order]
        s_nbr = self._inc_nbr[order]
        first = np.ones(s_nbr.size, dtype=bool)
        if s_nbr.size:
            first[1:] = (s_nbr[1:] != s_nbr[:-1]) | (s_owner[1:] != s_owner[:-1])
        starts = np.flatnonzero(first)
        dnbr = s_nbr[starts]
        mult = np.diff(np.append(starts, s_nbr.size)).astype(np.float64)
        dcounts = np.bincount(s_owner[starts], minlength=n)
        dindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(dcounts, out=dindptr[1:])
        self._distinct = (dindptr.astype(idx, copy=False), dnbr, mult)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (ids are ``0..num_nodes-1``)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of temporal edge events, buffered arrivals included."""
        return self._src.size + self._pending_count

    @property
    def src(self) -> np.ndarray:
        """Edge sources, time-sorted (read-only view)."""
        self._ensure_compacted()
        return self._src

    @property
    def dst(self) -> np.ndarray:
        """Edge destinations, time-sorted (read-only view)."""
        self._ensure_compacted()
        return self._dst

    @property
    def time(self) -> np.ndarray:
        """Edge timestamps, non-decreasing (read-only view)."""
        self._ensure_compacted()
        return self._time

    @property
    def weight(self) -> np.ndarray:
        """Edge weights (read-only view)."""
        self._ensure_compacted()
        return self._weight

    @property
    def time_span(self) -> tuple[float, float]:
        """(earliest, latest) timestamp."""
        self._ensure_compacted()
        return float(self._time[0]), float(self._time[-1])

    @property
    def storage(self) -> GraphStorage:
        """The backend holding the base event columns (compacted view)."""
        self._ensure_compacted()
        return self._store

    @property
    def storage_backend(self) -> str:
        """Short backend label: ``"memory"``, ``"memmap"`` or ``"shared"``."""
        return self._store.backend

    @property
    def index_dtype(self) -> np.dtype:
        """Dtype of the derived index structures (CSR offsets, ids).

        ``int32`` when the id/offset space fits (see :meth:`_build_incidence`
        for the overflow guard), ``int64`` otherwise.  The walk engine sizes
        its node-id buffers with this, so narrowing propagates through walk
        batches automatically.
        """
        self._ensure_compacted()  # buffered growth may widen the id space
        return self._index_dtype

    @property
    def nbytes(self) -> int:
        """Memory footprint of the graph's arrays, in bytes.

        Counts the edge table (``src``/``dst``/``time``/``weight``) as the
        storage backend accounts it — resident arrays for the in-memory
        backend, *mapped columns only* for a memmap store (whose bytes are
        disk-backed and paged on demand) — plus the incidence CSR and every
        lazily built structure that has actually been materialized (distinct
        CSR, pair index, scaled times, incidence weights).  This is what the
        ``int32`` index narrowing shrinks — the figure is surfaced in
        ``repr`` so the effect is observable.
        """
        self._ensure_compacted()
        total = (
            self._store.nbytes
            + self._inc_offsets.nbytes
            + self._inc_nbr.nbytes
            + self._inc_eid.nbytes
            + self._inc_time.nbytes
            + self._degree.nbytes
        )
        if self._distinct is not None:
            total += sum(arr.nbytes for arr in self._distinct)
        for lazy in (self._pair_keys, self._times01, self._inc_weight):
            if lazy is not None:
                total += lazy.nbytes
        return total

    def degrees(self) -> np.ndarray:
        """Temporal degree of every node (# incident edge events)."""
        self._ensure_compacted()
        return self._degree.copy()

    def distinct_neighbor_counts(self) -> np.ndarray:
        """Number of distinct neighbors of every node (static degree)."""
        dindptr, _, _ = self.distinct_csr()
        return np.diff(dindptr)

    def times01(self) -> np.ndarray:
        """Edge timestamps rescaled monotonically to ``[0, 1]``.

        A constant-time graph maps everything to 0.  The scaling is cached.
        Under :meth:`pin_time_scale` the mapping uses the pinned span, so
        events past the pinned head scale monotonically above 1.
        """
        self._ensure_compacted()
        if self._times01 is None:
            lo, hi = self._scale_span()
            span = hi - lo
            if span == 0:
                self._times01 = np.zeros_like(self._time)
            else:
                self._times01 = (self._time - lo) / span
        return self._times01

    def scale_time(self, t: float) -> float:
        """Map one raw timestamp onto the :meth:`times01` scale."""
        lo, hi = self._scale_span()
        span = hi - lo
        if span == 0:
            return 0.0
        return (float(t) - lo) / span

    def scale_times(self, t) -> np.ndarray:
        """Vectorized :meth:`scale_time`: map an array of raw timestamps.

        Element-for-element identical to calling :meth:`scale_time` on each
        entry (same subtraction/division order), which the batched walk
        engine relies on for bitwise reproducibility.
        """
        t = np.asarray(t, dtype=np.float64)
        lo, hi = self._scale_span()
        span = hi - lo
        if span == 0:
            return np.zeros_like(t)
        return (t - lo) / span

    # ------------------------------------------------------------------
    # incidence queries
    # ------------------------------------------------------------------
    def incident(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All incident events of ``v`` as ``(neighbors, times, edge_ids)``.

        Arrays are time-sorted views; callers must not mutate them.
        """
        self._ensure_compacted()
        lo, hi = self._inc_offsets[v], self._inc_offsets[v + 1]
        return self._inc_nbr[lo:hi], self._inc_time[lo:hi], self._inc_eid[lo:hi]

    def incidence_csr(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat CSR view of the whole incidence index.

        Returns ``(indptr, neighbors, times, weights, edge_ids)`` where node
        ``v``'s incident events occupy the slice ``indptr[v]:indptr[v+1]`` of
        the four flat arrays, sorted by time.  This is the gather substrate of
        the batched walk engine: one fancy-indexing operation fetches the
        candidate sets of every walk in a batch.  All arrays are shared,
        read-only views — callers must not mutate them.
        """
        self._ensure_compacted()
        if self._inc_weight is None:
            self._inc_weight = self._weight[self._inc_eid]
        return (
            self._inc_offsets,
            self._inc_nbr,
            self._inc_time,
            self._inc_weight,
            self._inc_eid,
        )

    def distinct_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR of sorted distinct neighbors with event multiplicities.

        Returns ``(indptr, neighbors, multiplicity)``: node ``v``'s distinct
        neighbors, ascending, live in ``neighbors[indptr[v]:indptr[v+1]]``,
        and ``multiplicity`` counts the temporal events behind each distinct
        pair (the static edge weight node2vec uses).  Built lazily in one
        vectorized pass; arrays are shared, read-only views.
        """
        self._ensure_compacted()
        if self._distinct is None:
            self._build_distinct()
        return self._distinct

    def events_before(
        self, v: int, t: float, inclusive: bool = True
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Incident events of ``v`` with ``time <= t`` (or ``< t``).

        Returns ``(neighbors, times, edge_ids)`` time-sorted.  This is the
        "historical interactions" query of Definition 2.
        """
        self._ensure_compacted()
        lo, hi = self._inc_offsets[v], self._inc_offsets[v + 1]
        side = "right" if inclusive else "left"
        cut = lo + np.searchsorted(self._inc_time[lo:hi], t, side=side)
        return self._inc_nbr[lo:cut], self._inc_time[lo:cut], self._inc_eid[lo:cut]

    def neighbors(self, v: int) -> np.ndarray:
        """Distinct neighbors of ``v`` over the whole timeline (sorted view)."""
        dindptr, dnbr, _ = self.distinct_csr()
        return dnbr[dindptr[v] : dindptr[v + 1]]

    def last_event_time(self, v: int) -> float | None:
        """Timestamp of the most recent interaction of ``v`` (None if isolated)."""
        self._ensure_compacted()
        lo, hi = self._inc_offsets[v], self._inc_offsets[v + 1]
        if hi == lo:
            return None
        return float(self._inc_time[hi - 1])

    def last_event_times(self, nodes=None) -> np.ndarray:
        """Vectorized :meth:`last_event_time` over ``nodes`` (all when None).

        Returns a float array aligned with ``nodes``; isolated nodes get
        ``NaN`` (the array encoding of the scalar method's ``None``).  One
        gather over the incidence index instead of a per-node Python loop.
        """
        self._ensure_compacted()
        if nodes is None:
            nodes = np.arange(self._n, dtype=np.int64)
        else:
            nodes = np.asarray(nodes, dtype=np.int64)
        lo = self._inc_offsets[nodes]
        hi = self._inc_offsets[nodes + 1]
        out = np.full(nodes.shape, np.nan, dtype=np.float64)
        has = hi > lo
        out[has] = self._inc_time[hi[has] - 1]
        return out

    def _pair_index(self) -> np.ndarray:
        """Sorted unique canonical pair keys (``min * num_nodes + max``)."""
        self._ensure_compacted()
        if self._pair_keys is None:
            lo = np.minimum(self._src, self._dst)
            hi = np.maximum(self._src, self._dst)
            self._pair_keys = np.unique(lo * np.int64(self._n) + hi)
        return self._pair_keys

    def has_edge(self, u: int, v: int) -> bool:
        """Whether any event ever connected ``u`` and ``v``."""
        keys = self._pair_index()
        a, b = (u, v) if u < v else (v, u)
        key = a * self._n + b
        idx = int(np.searchsorted(keys, key))
        return idx < keys.size and keys[idx] == key

    def has_edges(self, u, v) -> np.ndarray:
        """Vectorized :meth:`has_edge` over parallel node arrays.

        Returns a boolean array: ``out[i]`` is whether any event ever
        connected ``u[i]`` and ``v[i]``.  Membership is one ``searchsorted``
        against the shared sorted pair-key index, so checking a batch of
        pairs costs O(batch × log distinct-pairs) instead of a per-pair
        Python loop.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("u and v must have the same shape")
        keys = self._pair_index()
        key = np.minimum(u, v) * np.int64(self._n) + np.maximum(u, v)
        idx = np.searchsorted(keys, key)
        inside = idx < keys.size
        out = np.zeros(u.shape, dtype=bool)
        out[inside] = keys[idx[inside]] == key[inside]
        return out

    # ------------------------------------------------------------------
    # temporal slicing
    # ------------------------------------------------------------------
    def edges_until(self, t: float, inclusive: bool = True) -> np.ndarray:
        """Edge-id array of all events with ``time <= t`` (or ``< t``)."""
        self._ensure_compacted()
        side = "right" if inclusive else "left"
        cut = np.searchsorted(self._time, t, side=side)
        return np.arange(cut, dtype=np.int64)

    def snapshot(self, t: float, inclusive: bool = True) -> "TemporalGraph":
        """The network as of time ``t`` (same node-id space)."""
        ids = self.edges_until(t, inclusive=inclusive)
        if ids.size == 0:
            raise ValueError(f"snapshot at t={t} would contain no edges")
        return TemporalGraph(
            self._n,
            self._src[ids],
            self._dst[ids],
            self._time[ids],
            self._weight[ids],
        )

    def split_recent(self, fraction: float) -> tuple["TemporalGraph", np.ndarray]:
        """Hold out the most recent ``fraction`` of edges (link-prediction protocol).

        Returns ``(train_graph, held_out_edge_ids)`` where the train graph
        keeps the same node-id space.  Ties in time are broken by edge order,
        matching "remove 20% of the most recent edges" in Section V.E.
        """
        check_fraction("fraction", fraction)
        self._ensure_compacted()
        m = self.num_edges
        n_hold = int(round(m * fraction))
        n_hold = min(max(n_hold, 1), m - 1)
        keep = np.arange(m - n_hold, dtype=np.int64)
        hold = np.arange(m - n_hold, m, dtype=np.int64)
        train = TemporalGraph(
            self._n,
            self._src[keep],
            self._dst[keep],
            self._time[keep],
            self._weight[keep],
        )
        return train, hold

    def edge_tuples(self, edge_ids=None) -> list[tuple[int, int, float]]:
        """Materialize ``(u, v, t)`` tuples for the given edge ids (all if None)."""
        self._ensure_compacted()
        if edge_ids is None:
            edge_ids = range(self.num_edges)
        return [
            (int(self._src[e]), int(self._dst[e]), float(self._time[e]))
            for e in edge_ids
        ]

    def iter_chronological(self):
        """Yield :class:`EdgeEvent` in non-decreasing time order."""
        self._ensure_compacted()
        for e in range(self.num_edges):
            yield EdgeEvent(
                u=int(self._src[e]),
                v=int(self._dst[e]),
                time=float(self._time[e]),
                weight=float(self._weight[e]),
                edge_id=e,
            )

    def __repr__(self) -> str:
        lo, hi = self.time_span
        return (
            f"TemporalGraph(nodes={self._n}, events={self.num_edges}, "
            f"time=[{lo:g}, {hi:g}], mem={_format_bytes(self.nbytes)})"
        )


def _format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (``1.5KB``, ``3.2MB``, ...)."""
    size = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024.0 or unit == "GB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024.0
    return f"{size:.1f}GB"
