"""Edge-list IO for temporal graphs.

The on-disk text format is the one used by the public datasets the paper
evaluates on (Digg, Yelp, Tmall, DBLP): one interaction per line,
whitespace- or comma-separated ``src dst timestamp [weight]``, ``#``-prefixed
comments.  Node ids in files may be arbitrary integers or strings; they are
relabelled to a dense ``0..n-1`` range and the mapping is returned.

Parsing is **chunked**: lines are consumed in bounded blocks and converted
to numpy columns per block, so memory holds one chunk of Python objects plus
the (distinct-label-bounded) interning dict — never a Python list per row of
the whole file.  Two sinks share the parser:

- :func:`load_edge_list` accumulates chunk columns and builds an in-memory
  :class:`~repro.graph.temporal_graph.TemporalGraph`;
- :func:`ingest_edge_list` streams each chunk straight into a columnar
  on-disk :class:`~repro.storage.MemmapStorage` (unsorted files are sorted
  once at finalize), so a multi-million-event CSV never materializes.

Round-tripping is exact: :func:`save_edge_list` writes timestamps/weights
with ``repr`` (shortest float64-round-trip form) and can embed the label
table (``# label <id> <name>`` header lines, which also preserve isolated
nodes and the id assignment), and :func:`load_edge_list` restores it — so
``load(save(g))`` reproduces the edge columns bitwise, the node labels, and
``num_nodes``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.storage.memmap import MemmapStorage, MemmapStorageWriter

#: Lines parsed per chunk — bounds the per-chunk Python object population.
DEFAULT_CHUNK_LINES = 65_536

#: Header prefix for embedded label-table lines (still a ``#`` comment, so
#: files stay readable by any other edge-list consumer).
_LABEL_PREFIX = "# label "


def _parse_chunks(path: Path, labels: dict[str, int], chunk_lines: int):
    """Yield ``(src, dst, time, weight)`` numpy column chunks from ``path``.

    ``labels`` is the live interning dict (label -> dense id), shared across
    chunks and mutated in place; it may arrive pre-seeded (an embedded label
    table, or a caller-supplied mapping for exact round-trips).  Malformed
    lines raise with their ``path:line`` location.
    """
    src: list[int] = []
    dst: list[int] = []
    time: list[float] = []
    weight: list[float] = []

    def flush():
        chunk = (
            np.array(src, dtype=np.int64),
            np.array(dst, dtype=np.int64),
            np.array(time, dtype=np.float64),
            np.array(weight, dtype=np.float64),
        )
        src.clear()
        dst.clear()
        time.clear()
        weight.clear()
        return chunk

    with path.open() as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                if line.startswith(_LABEL_PREFIX):
                    _read_label_line(line, labels, path, line_no)
                continue
            parts = line.replace(",", " ").split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_no}: expected 'src dst time [weight]', got {raw!r}"
                )
            u = labels.setdefault(parts[0], len(labels))
            v = labels.setdefault(parts[1], len(labels))
            src.append(u)
            dst.append(v)
            time.append(float(parts[2]))
            weight.append(float(parts[3]) if len(parts) == 4 else 1.0)
            if len(src) >= chunk_lines:
                yield flush()
    if src:
        yield flush()


def _read_label_line(
    line: str, labels: dict[str, int], path: Path, line_no: int
) -> None:
    """Absorb one ``# label <id> <name>`` header line into ``labels``."""
    fields = line[len(_LABEL_PREFIX) :].split()
    if len(fields) != 2 or not fields[0].isdigit():
        raise ValueError(
            f"{path}:{line_no}: malformed label line (want '# label <id> <name>')"
        )
    node_id, name = int(fields[0]), fields[1]
    known = labels.get(name)
    if known is not None and known != node_id:
        raise ValueError(
            f"{path}:{line_no}: label {name!r} redefined from id {known} to "
            f"{node_id}"
        )
    labels[name] = node_id


def _num_nodes_from(labels: dict[str, int], *maxima: int) -> int:
    """Node count covering every interned id and every observed edge id."""
    top = max(maxima, default=-1)
    if labels:
        top = max(top, max(labels.values()))
    return top + 1


def load_edge_list(
    path, labels: dict[str, int] | None = None, chunk_lines: int = DEFAULT_CHUNK_LINES
) -> tuple[TemporalGraph, dict[str, int]]:
    """Load a temporal graph from an edge-list file.

    Returns ``(graph, label_to_id)`` where ``label_to_id`` maps the original
    node labels (as strings) to the dense ids used by the graph.  A
    ``labels`` mapping — or ``# label`` header lines written by
    :func:`save_edge_list` — pre-seeds the interning, which fixes the id
    assignment (and via out-of-edge ids, ``num_nodes``) for exact
    round-trips; otherwise ids are assigned by first appearance.
    """
    path = Path(path)
    labels = dict(labels) if labels else {}
    chunks = list(_parse_chunks(path, labels, chunk_lines))
    if not chunks:
        raise ValueError(f"{path} contains no edges")
    src, dst, time, weight = (
        np.concatenate([c[i] for c in chunks]) for i in range(4)
    )
    graph = TemporalGraph.from_edges(
        src,
        dst,
        time,
        weight,
        num_nodes=_num_nodes_from(labels, int(src.max()), int(dst.max())),
    )
    return graph, labels


def ingest_edge_list(
    path,
    store_dir,
    labels: dict[str, int] | None = None,
    chunk_lines: int = DEFAULT_CHUNK_LINES,
    meta: dict | None = None,
) -> tuple[MemmapStorage, dict[str, int]]:
    """Stream an edge-list file into a columnar on-disk event store.

    The chunked counterpart of :func:`load_edge_list` for files too large to
    hold as arrays: each parsed chunk goes straight to a
    :class:`~repro.storage.MemmapStorageWriter` (out-of-order timestamps are
    handled by the writer's finalize-time stable sort), and the returned
    store feeds :meth:`TemporalGraph.from_storage
    <repro.graph.temporal_graph.TemporalGraph.from_storage>` without ever
    materializing the event table in memory.  Returns ``(storage,
    label_to_id)``.
    """
    path = Path(path)
    labels = dict(labels) if labels else {}
    meta = {"source": str(path), **(meta or {})}
    writer = MemmapStorageWriter(store_dir, meta=meta)
    for src, dst, time, weight in _parse_chunks(path, labels, chunk_lines):
        writer.append(src, dst, time, weight)
    if writer.num_events == 0:
        raise ValueError(f"{path} contains no edges")
    return writer.finalize(), labels


def save_edge_list(
    graph: TemporalGraph,
    path,
    include_weight: bool = True,
    labels: dict[str, int] | None = None,
    chunk_events: int = DEFAULT_CHUNK_LINES,
) -> None:
    """Write ``graph`` as a ``src dst time [weight]`` edge list.

    Timestamps and weights are written in ``repr`` form — the shortest
    string that parses back to the identical float64 — so a save/load cycle
    reproduces the edge columns bitwise.  With ``labels`` (a label -> id
    mapping, e.g. the one :func:`load_edge_list` returned), edges carry the
    original labels and a ``# label`` header records the full table, making
    the round trip exact for ids and ``num_nodes`` too (isolated nodes
    included); without it, nodes are written by numeric id.  Output streams
    in ``chunk_events`` blocks.
    """
    path = Path(path)
    name_of = None
    if labels:
        name_of = {}
        for name, node_id in labels.items():
            if node_id in name_of:
                raise ValueError(
                    f"labels map two names ({name_of[node_id]!r}, {name!r}) "
                    f"to id {node_id}"
                )
            if " " in name or "\t" in name:
                raise ValueError(f"node label {name!r} contains whitespace")
            name_of[node_id] = name
    src, dst, time, weight = graph.src, graph.dst, graph.time, graph.weight
    with path.open("w") as fh:
        fh.write("# src dst time" + (" weight" if include_weight else "") + "\n")
        if name_of is not None:
            for node_id in sorted(name_of):
                fh.write(f"{_LABEL_PREFIX}{node_id} {name_of[node_id]}\n")
        for lo in range(0, graph.num_edges, int(chunk_events)):
            hi = lo + int(chunk_events)
            rows = zip(
                src[lo:hi].tolist(),
                dst[lo:hi].tolist(),
                time[lo:hi].tolist(),
                weight[lo:hi].tolist(),
            )
            if include_weight:
                lines = (
                    f"{_name(u, name_of)} {_name(v, name_of)} {t!r} {w!r}"
                    for u, v, t, w in rows
                )
            else:
                lines = (
                    f"{_name(u, name_of)} {_name(v, name_of)} {t!r}"
                    for u, v, t, _ in rows
                )
            fh.write("\n".join(lines) + "\n")


def _name(node_id: int, name_of: dict[int, str] | None) -> str:
    """The label to write for ``node_id`` (its numeric id when unlabelled)."""
    if name_of is None:
        return str(node_id)
    return name_of.get(node_id, str(node_id))
