"""Edge-list IO for temporal graphs.

The on-disk format is the one used by the public datasets the paper evaluates
on (Digg, Yelp, Tmall, DBLP): one interaction per line, whitespace- or
comma-separated ``src dst timestamp [weight]``, ``#``-prefixed comments.
Node ids in files may be arbitrary integers or strings; they are relabelled
to a dense ``0..n-1`` range and the mapping is returned.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.temporal_graph import TemporalGraph


def load_edge_list(path) -> tuple[TemporalGraph, dict[str, int]]:
    """Load a temporal graph from an edge-list file.

    Returns ``(graph, label_to_id)`` where ``label_to_id`` maps the original
    node labels (as strings) to the dense ids used by the graph.
    """
    path = Path(path)
    labels: dict[str, int] = {}
    src, dst, time, weight = [], [], [], []

    def node_id(label: str) -> int:
        if label not in labels:
            labels[label] = len(labels)
        return labels[label]

    with path.open() as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.replace(",", " ").split()
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_no}: expected 'src dst time [weight]', got {raw!r}"
                )
            u, v = node_id(parts[0]), node_id(parts[1])
            src.append(u)
            dst.append(v)
            time.append(float(parts[2]))
            weight.append(float(parts[3]) if len(parts) == 4 else 1.0)

    if not src:
        raise ValueError(f"{path} contains no edges")
    graph = TemporalGraph.from_edges(
        np.array(src), np.array(dst), np.array(time), np.array(weight)
    )
    return graph, labels


def save_edge_list(graph: TemporalGraph, path, include_weight: bool = True) -> None:
    """Write ``graph`` as a ``src dst time [weight]`` edge list."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write("# src dst time" + (" weight" if include_weight else "") + "\n")
        for ev in graph.iter_chronological():
            if include_weight:
                fh.write(f"{ev.u} {ev.v} {ev.time:.10g} {ev.weight:.10g}\n")
            else:
                fh.write(f"{ev.u} {ev.v} {ev.time:.10g}\n")
