"""Synthetic temporal-network generators standing in for the paper's datasets.

The paper evaluates on four public datasets (Table I): DBLP (co-authorship),
Digg (friendship), Tmall (user-item purchases) and Yelp (user-business
reviews).  The raw dumps are not available offline, so each generator below
reproduces the *structural and temporal properties the algorithms interact
with* (see DESIGN.md):

- skewed (preferential-attachment) degree distributions;
- temporal locality — recently active nodes form the next edges, so
  historical neighborhoods predict future links (the signal EHNA exploits);
- repeat interactions (parallel temporal edges);
- bipartiteness for Tmall/Yelp, which motivates the paper's *bidirectional*
  negative sampling (Eq. 7);
- a purchase burst for Tmall ("Double 11" is a single shopping day).

Sizes default to laptop scale and every generator takes explicit counts, so
harnesses can scale experiments up or down.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.storage.memmap import MemmapStorage, MemmapStorageWriter
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive


def _compact(src, dst, time, weight=None) -> TemporalGraph:
    """Relabel node ids densely and build the graph."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    used, inverse = np.unique(np.concatenate([src, dst]), return_inverse=True)
    relabeled = inverse.reshape(2, -1)
    return TemporalGraph.from_edges(
        relabeled[0],
        relabeled[1],
        np.asarray(time, dtype=np.float64),
        weight,
        num_nodes=used.size,
    )


def community_labels(
    graph: TemporalGraph,
    num_communities: int = 4,
    seed=None,
) -> np.ndarray:
    """Community labels for every node of ``graph`` (seeded graph Voronoi).

    The generators above encode community structure implicitly — triadic
    closure, friend-of-a-recent-friend targeting, co-purchase neighborhoods —
    so the label side of the node-classification task is recovered from the
    produced structure rather than drawn alongside it (which would perturb
    the RNG stream and change the graphs behind the published tables).

    The partition grows balanced regions: the ``num_communities``
    highest-degree nodes anchor one label each (greedily skipping neighbors
    of already-chosen anchors so the seeds spread out), then the smallest
    community repeatedly claims one more unlabeled node adjacent to its
    current members — so a single hub cannot flood the whole graph, and
    sizes stay as even as connectivity allows.  The construction is fully
    deterministic given the graph; ``seed`` only randomizes the labels of
    nodes in components containing no anchor.  Returns an int64 array of
    length ``num_nodes`` with values in ``[0, num_communities)``.
    """
    check_positive("num_communities", num_communities)
    rng = ensure_rng(seed)
    n = graph.num_nodes
    k = min(int(num_communities), n)
    dindptr, dnbr, _ = graph.distinct_csr()
    degree = np.diff(dindptr)

    labels = np.full(n, -1, dtype=np.int64)
    anchors: list[int] = []
    by_degree = np.argsort(-degree, kind="stable")
    for v in by_degree:  # prefer mutually non-adjacent anchors
        if len(anchors) == k:
            break
        nbrs = dnbr[dindptr[v] : dindptr[v + 1]]
        if nbrs.size and np.any(labels[nbrs] >= 0):
            continue
        labels[v] = len(anchors)
        anchors.append(int(v))
    for v in by_degree:  # dense graphs: fill from the top regardless
        if len(anchors) == k:
            break
        if labels[v] < 0:
            labels[v] = len(anchors)
            anchors.append(int(v))

    queues: list[deque[int]] = [deque([a]) for a in anchors]
    sizes = [1] * len(anchors)
    scan = dindptr[:-1].copy()  # next incidence slot to inspect, per node
    while True:
        live = [c for c in range(len(anchors)) if queues[c]]
        if not live:
            break
        c = min(live, key=lambda i: (sizes[i], i))
        grown = False
        while queues[c] and not grown:
            v = queues[c][0]
            while scan[v] < dindptr[v + 1]:
                u = int(dnbr[scan[v]])
                scan[v] += 1
                if labels[u] < 0:
                    labels[u] = c
                    sizes[c] += 1
                    queues[c].append(u)
                    grown = True
                    break
            if not grown:
                queues[c].popleft()  # v has no unlabeled neighbors left

    orphans = labels < 0
    if np.any(orphans):
        labels[orphans] = rng.integers(k, size=int(orphans.sum()))
    return labels


def generate_scaled_events(
    store_dir,
    num_events: int = 1_000_000,
    num_nodes: int = 100_000,
    chunk_events: int = 250_000,
    popularity_exponent: float = 0.8,
    mean_interarrival: float = 1.0,
    seed=None,
    meta: dict | None = None,
) -> MemmapStorage:
    """Emit a scale-test event log straight into an on-disk columnar store.

    The laptop-scale generators above model the *signal* the algorithms
    exploit and pay a Python loop per event for it — unusable at millions of
    events.  This generator models only the *shape* that matters for scale
    testing (skewed popularity, strictly increasing timestamps, repeat
    interactions) and is fully vectorized: events are drawn and written in
    ``chunk_events`` blocks through a
    :class:`~repro.storage.MemmapStorageWriter`, so peak memory is one chunk
    of columns regardless of ``num_events`` and no Python object is ever
    materialized per event.

    Endpoints follow a Zipf-like popularity ``(1+rank)^-popularity_exponent``
    (hubs emerge, parallel edges recur); inter-arrival times are exponential
    with ``mean_interarrival``, so chunks arrive globally time-sorted and
    finalize never re-sorts.  Returns the finalized
    :class:`~repro.storage.MemmapStorage`; build the graph with
    ``TemporalGraph.from_storage``.
    """
    check_positive("num_events", num_events)
    check_positive("num_nodes", num_nodes - 1)  # need >= 2 nodes for edges
    check_positive("chunk_events", chunk_events)
    check_positive("mean_interarrival", mean_interarrival)
    rng = ensure_rng(seed)

    popularity = (1.0 + np.arange(num_nodes)) ** (-float(popularity_exponent))
    cdf = np.cumsum(popularity)
    cdf /= cdf[-1]

    writer = MemmapStorageWriter(
        store_dir,
        num_nodes=int(num_nodes),
        meta={
            "generator": "scaled_events",
            "num_events": int(num_events),
            "num_nodes": int(num_nodes),
            "popularity_exponent": float(popularity_exponent),
            **(meta or {}),
        },
    )
    t_offset = 0.0
    remaining = int(num_events)
    while remaining > 0:
        block = min(int(chunk_events), remaining)
        src = np.searchsorted(cdf, rng.random(block)).astype(np.int64)
        dst = np.searchsorted(cdf, rng.random(block)).astype(np.int64)
        loops = src == dst
        dst[loops] = (dst[loops] + 1) % num_nodes  # src == dst+1 is impossible here
        time = t_offset + np.cumsum(rng.exponential(mean_interarrival, size=block))
        t_offset = float(time[-1])
        writer.append(src, dst, time)
        remaining -= block
    return writer.finalize()


def temporal_preferential_attachment(
    num_nodes: int = 200,
    edges_per_node: int = 4,
    recency_bias: float = 2.0,
    seed=None,
) -> TemporalGraph:
    """Growing network where new nodes attach to high-degree, recent nodes.

    Node ``v`` arrives at time ``v`` and draws ``edges_per_node`` targets with
    probability proportional to ``(degree + 1) * exp(recency_bias * a)`` where
    ``a`` is the target's last-activity time rescaled to [0, 1].  With
    ``recency_bias=0`` this degenerates to classic preferential attachment.
    """
    check_positive("num_nodes", num_nodes - 1)
    check_positive("edges_per_node", edges_per_node)
    rng = ensure_rng(seed)
    degree = np.zeros(num_nodes, dtype=np.float64)
    last_active = np.zeros(num_nodes, dtype=np.float64)
    src, dst, time = [], [], []

    for v in range(1, num_nodes):
        pool = v  # nodes 0..v-1 already exist
        scale = max(v - 1, 1)
        w = (degree[:pool] + 1.0) * np.exp(
            recency_bias * last_active[:pool] / scale
        )
        k = min(edges_per_node, pool)
        targets = rng.choice(pool, size=k, replace=False, p=w / w.sum())
        for i, u in enumerate(targets):
            t = v + i / (k + 1.0)
            src.append(v)
            dst.append(int(u))
            time.append(t)
            degree[v] += 1
            degree[u] += 1
            last_active[v] = t
            last_active[u] = t
    return _compact(src, dst, time)


def temporal_sbm(
    num_nodes: int = 200,
    num_communities: int = 4,
    num_edges: int = 1500,
    p_in: float = 0.85,
    seed=None,
) -> TemporalGraph:
    """Stochastic-block-model-like temporal graph with drifting communities.

    Each edge event picks a source uniformly, then a target inside the
    source's community with probability ``p_in`` (else any community).
    Timestamps are uniform, so community structure is stable in time — a
    useful control where temporal methods hold no advantage.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("num_edges", num_edges)
    check_fraction("p_in", p_in, inclusive=False)
    rng = ensure_rng(seed)
    community = rng.integers(num_communities, size=num_nodes)
    members = [np.flatnonzero(community == c) for c in range(num_communities)]
    src, dst, time = [], [], []
    times = np.sort(rng.random(num_edges))
    for t in times:
        u = int(rng.integers(num_nodes))
        if rng.random() < p_in and members[community[u]].size > 1:
            v = int(rng.choice(members[community[u]]))
        else:
            v = int(rng.integers(num_nodes))
        if u == v:
            v = (v + 1) % num_nodes
        src.append(u)
        dst.append(v)
        time.append(float(t))
    return _compact(src, dst, time)


def dblp_like(
    num_authors: int = 300,
    num_papers: int = 600,
    year_range: tuple[int, int] = (1955, 2017),
    mean_team_size: float = 2.6,
    new_author_rate: float = 0.35,
    closure_prob: float = 0.5,
    seed=None,
) -> TemporalGraph:
    """Growing co-authorship network (DBLP stand-in).

    Papers are generated in chronological order with publication volume
    growing over time (research output accelerates).  Each paper's team mixes
    veterans — chosen by collaboration count — new authors, and *triadic
    closure* picks (collaborators of collaborators), which is exactly the
    mechanism the paper's Figure 2 narrative describes.  Co-authors receive a
    clique of edges stamped with the paper year, so repeat collaborations
    appear as parallel edges.
    """
    check_positive("num_authors", num_authors)
    check_positive("num_papers", num_papers)
    rng = ensure_rng(seed)
    y0, y1 = year_range
    if y1 <= y0:
        raise ValueError("year_range must be increasing")

    # Accelerating publication volume: year of paper i ~ y0 + span * sqrt(u).
    years = y0 + (y1 - y0) * np.sqrt(np.sort(rng.random(num_papers)))

    collab_count = np.zeros(num_authors, dtype=np.float64)
    collaborators: list[set[int]] = [set() for _ in range(num_authors)]
    active: list[int] = [0, 1]  # founding authors
    next_author = 2
    src, dst, time = [], [], []

    for year in years:
        team_size = max(2, 1 + rng.poisson(mean_team_size - 1))
        team: list[int] = []
        # Anchor author: veteran weighted by collaboration record.
        weights = collab_count[active] + 1.0
        anchor = int(rng.choice(active, p=weights / weights.sum()))
        team.append(anchor)
        while len(team) < team_size:
            if next_author < num_authors and rng.random() < new_author_rate:
                team.append(next_author)
                active.append(next_author)
                next_author += 1
                continue
            if rng.random() < closure_prob and collaborators[anchor]:
                # Triadic closure: collaborator-of-collaborator of the anchor.
                mid = int(rng.choice(sorted(collaborators[anchor])))
                pool = collaborators[mid] - set(team)
                if pool:
                    team.append(int(rng.choice(sorted(pool))))
                    continue
            weights = collab_count[active] + 1.0
            pick = int(rng.choice(active, p=weights / weights.sum()))
            if pick not in team:
                team.append(pick)
        # Clique among the team, jittered within the year for ordering.
        stamp = float(year) + rng.random() * 0.5
        for i in range(len(team)):
            for j in range(i + 1, len(team)):
                a, b = team[i], team[j]
                src.append(a)
                dst.append(b)
                time.append(stamp)
                collab_count[a] += 1
                collab_count[b] += 1
                collaborators[a].add(b)
                collaborators[b].add(a)
    return _compact(src, dst, time)


def digg_like(
    num_users: int = 400,
    num_edges: int = 3000,
    time_range: tuple[float, float] = (2004.0, 2009.0),
    recency_halflife: float = 0.5,
    exploration: float = 0.35,
    seed=None,
) -> TemporalGraph:
    """Social friendship network (Digg stand-in).

    Users arrive over the timeline; the *initiator* of each friendship is
    chosen with weight ``(degree + 1) * 2^(-(now - last_active)/halflife)``
    (popular and recently active users act), and the *target* is found by a
    two-step walk over the initiator's **recent** friendships — a
    friend-of-a-recent-friend, exactly the historical-neighborhood mechanism
    the paper's Figure 2 describes.  With probability ``exploration`` the
    target is instead uniform (casual befriending), keeping the long tail of
    users attached.  This makes future links genuinely predictable from
    historical neighborhoods — the signal temporal methods exploit.
    """
    check_positive("num_users", num_users)
    check_positive("num_edges", num_edges)
    check_fraction("exploration", exploration, inclusive=True)
    rng = ensure_rng(seed)
    t0, t1 = time_range
    if t1 <= t0:
        raise ValueError("time_range must be increasing")

    times = np.sort(t0 + (t1 - t0) * rng.random(num_edges))
    # User u becomes visible at arrival[u]; arrivals front-loaded.
    arrival = t0 + (t1 - t0) * np.sort(rng.random(num_users) ** 2)
    arrival[:2] = t0
    degree = np.zeros(num_users, dtype=np.float64)
    last_active = np.full(num_users, t0, dtype=np.float64)
    # Recent friends, most recent last (bounded memory per user).
    recent: list[list[int]] = [[] for _ in range(num_users)]
    src, dst, time = [], [], []

    def remember(u: int, v: int) -> None:
        recent[u].append(v)
        if len(recent[u]) > 10:
            recent[u].pop(0)

    for t in times:
        pool = int(np.searchsorted(arrival, t, side="right"))
        pool = max(pool, 2)
        w = (degree[:pool] + 1.0) * np.exp2(
            -(t - last_active[:pool]) / recency_halflife
        )
        u = int(rng.choice(pool, p=w / w.sum()))

        v = -1
        if rng.random() >= exploration and recent[u]:
            # Friend-of-a-recent-friend, biased to the most recent contacts.
            mid = recent[u][-1 - int(rng.integers(min(3, len(recent[u]))))]
            if recent[mid]:
                v = recent[mid][-1 - int(rng.integers(min(3, len(recent[mid]))))]
        if v < 0 or v == u or v >= pool:
            v = int(rng.integers(pool))
        if u == v:
            v = (v + 1) % pool
        src.append(u)
        dst.append(v)
        time.append(float(t))
        degree[u] += 1
        degree[v] += 1
        last_active[u] = t
        last_active[v] = t
        remember(u, v)
        remember(v, u)
    return _compact(src, dst, time)


def tmall_like(
    num_users: int = 300,
    num_items: int = 120,
    num_purchases: int = 3000,
    burst_fraction: float = 0.4,
    zipf_exponent: float = 1.1,
    seed=None,
) -> TemporalGraph:
    """Bipartite user-item purchase network (Tmall "Double 11" stand-in).

    Users occupy ids ``0..num_users-1`` and items the remaining ids.  Item
    popularity is Zipf-distributed; ``burst_fraction`` of all purchases land
    on the final "shopping-festival" day, mirroring the Double-11 sales data
    the paper uses.  Repeat purchases produce parallel edges.
    """
    check_positive("num_users", num_users)
    check_positive("num_items", num_items)
    check_positive("num_purchases", num_purchases)
    check_fraction("burst_fraction", burst_fraction, inclusive=True)
    rng = ensure_rng(seed)

    item_pop = (1.0 + np.arange(num_items)) ** (-zipf_exponent)
    item_pop /= item_pop.sum()
    user_act = rng.lognormal(mean=0.0, sigma=1.0, size=num_users)
    user_act /= user_act.sum()

    n_burst = int(round(num_purchases * burst_fraction))
    n_normal = num_purchases - n_burst
    # 365-day year; the festival is the last day.
    t_normal = rng.random(n_normal) * 364.0
    t_burst = 364.0 + rng.random(n_burst)
    times = np.sort(np.concatenate([t_normal, t_burst]))

    users = rng.choice(num_users, size=num_purchases, p=user_act)
    # Items follow co-purchase neighborhoods: with probability 0.55 a user
    # buys what a *recent* buyer of their own recent item bought (the
    # collaborative signal recommender data exhibits); otherwise popularity.
    recent_user_items: list[list[int]] = [[] for _ in range(num_users)]
    recent_item_users: list[list[int]] = [[] for _ in range(num_items)]
    src, dst, time = [], [], []
    for u, t in zip(users, times):
        u = int(u)
        item = -1
        if recent_user_items[u] and rng.random() < 0.55:
            anchor = recent_user_items[u][-1]
            buyers = recent_item_users[anchor]
            if buyers:
                peer = buyers[-1 - int(rng.integers(min(3, len(buyers))))]
                if recent_user_items[peer]:
                    item = recent_user_items[peer][-1]
        if item < 0:
            item = int(rng.choice(num_items, p=item_pop))
        src.append(u)
        dst.append(num_users + item)
        time.append(float(t))
        recent_user_items[u].append(item)
        if len(recent_user_items[u]) > 8:
            recent_user_items[u].pop(0)
        recent_item_users[item].append(u)
        if len(recent_item_users[item]) > 8:
            recent_item_users[item].pop(0)
    return _compact(src, dst, time)


def yelp_like(
    num_users: int = 300,
    num_businesses: int = 150,
    num_reviews: int = 3000,
    repeat_prob: float = 0.3,
    zipf_exponent: float = 0.9,
    seed=None,
) -> TemporalGraph:
    """Bipartite user-business review network (Yelp stand-in).

    Each review either revisits a business the user already reviewed
    (``repeat_prob``) or discovers one by popularity.  Review volume grows
    over the timeline, as in the Yelp challenge data.
    """
    check_positive("num_users", num_users)
    check_positive("num_businesses", num_businesses)
    check_positive("num_reviews", num_reviews)
    check_fraction("repeat_prob", repeat_prob, inclusive=True)
    rng = ensure_rng(seed)

    pop = (1.0 + np.arange(num_businesses)) ** (-zipf_exponent)
    pop /= pop.sum()
    visited: list[list[int]] = [[] for _ in range(num_users)]
    recent_reviewers: list[list[int]] = [[] for _ in range(num_businesses)]
    # Growing volume: timestamps concentrated toward the end of the window.
    times = np.sort(rng.random(num_reviews) ** 0.5) * 3650.0  # ~10 years in days

    src, dst, time = [], [], []
    for t in times:
        u = int(rng.integers(num_users))
        b = -1
        if visited[u] and rng.random() < repeat_prob:
            b = int(rng.choice(visited[u]))
        elif visited[u] and rng.random() < 0.5:
            # Word of mouth: try a place that a recent co-reviewer (someone
            # who reviewed one of u's businesses lately) also reviewed.
            anchor = visited[u][-1]
            peers = recent_reviewers[anchor]
            if peers:
                peer = peers[-1 - int(rng.integers(min(3, len(peers))))]
                if visited[peer]:
                    b = visited[peer][-1]
        if b < 0:
            b = int(rng.choice(num_businesses, p=pop))
        if b not in visited[u]:
            visited[u].append(b)
        src.append(u)
        dst.append(num_users + b)
        time.append(float(t))
        recent_reviewers[b].append(u)
        if len(recent_reviewers[b]) > 8:
            recent_reviewers[b].pop(0)
    return _compact(src, dst, time)
