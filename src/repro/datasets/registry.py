"""Named dataset registry used by the experiment harnesses.

``load("digg")`` etc. return the synthetic stand-ins for the paper's four
datasets at a chosen ``scale`` (1.0 = the laptop-scale defaults documented in
DESIGN.md).  The registry keeps the benchmark drivers declarative: every
table/figure harness iterates ``PAPER_DATASETS`` just as Section V iterates
Digg / Yelp / Tmall / DBLP, and the task Runner resolves grid cells through
``load`` by name.  ``load(name, labels=True)`` additionally returns community
labels for the node-classification task.

``load(name, storage=dir)`` resolves the same dataset through the columnar
on-disk backend: the first call generates and writes a
:class:`~repro.storage.MemmapStorage` under ``dir`` (with provenance
recorded in the manifest), later calls re-open it, and the returned graph
reads its event columns from the memory-mapped store.

Generation is memoized: repeated ``load`` calls with the same
``(name, scale, seed, labels, storage backend)`` — the signature every
Runner/benchmark grid cell resolves through — return the cached graph
instead of regenerating it.  The backend is part of the key (``"memory"``
vs the resolved memmap path), so a memmap-backed request can never be
served a cloned in-memory graph or vice versa.
Only *deterministic* requests cache (an integer seed); ``seed=None`` or a
live ``Generator`` ask for fresh randomness and always regenerate.  Every
``load`` hands out an O(1) :meth:`TemporalGraph.copy` of the cached pristine
object (underlying arrays shared, mutable streaming state independent), so a
caller growing its graph via ``extend_in_place``/``partial_fit`` can never
poison what the next caller receives.  ``load_cache_info`` /
``load_cache_clear`` expose and reset the LRU.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.datasets.generators import (
    community_labels,
    dblp_like,
    digg_like,
    tmall_like,
    yelp_like,
)
from repro.graph.temporal_graph import TemporalGraph
from repro.storage.memmap import MemmapStorage, is_store_dir
from repro.utils.validation import check_positive

#: Dataset names in the order the paper reports them (Table I).
PAPER_DATASETS = ("digg", "yelp", "tmall", "dblp")


class UnknownDatasetError(KeyError, ValueError):
    """An unregistered dataset name was requested.

    Subclasses both ``KeyError`` (the registry is a lookup) and
    ``ValueError`` (the name is an invalid argument), so either historical
    ``except`` clause catches it.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


def available() -> tuple[str, ...]:
    """The dataset names :func:`load` accepts, in paper (Table I) order."""
    return PAPER_DATASETS


#: Capacity of the generation cache, in (name, scale, seed, labels) entries —
#: small on purpose: a Runner grid touches a handful of datasets, and one
#: laptop-scale graph is a few hundred KB.
LOAD_CACHE_SIZE = 8

_load_cache: OrderedDict = OrderedDict()
_load_stats = {"hits": 0, "misses": 0}


def load_cache_info() -> dict:
    """Cache counters: ``{"hits", "misses", "size", "maxsize"}``."""
    return {
        "hits": _load_stats["hits"],
        "misses": _load_stats["misses"],
        "size": len(_load_cache),
        "maxsize": LOAD_CACHE_SIZE,
    }


def load_cache_clear() -> None:
    """Drop every cached dataset and reset the counters."""
    _load_cache.clear()
    _load_stats["hits"] = 0
    _load_stats["misses"] = 0


def load(
    name: str,
    scale: float = 1.0,
    seed=None,
    labels: bool = False,
    storage=None,
    shared: bool = False,
):
    """Generate the named dataset at ``scale`` times its default size.

    Parameters
    ----------
    name:
        One of :func:`available` (case-insensitive).
    scale:
        Multiplier on node/edge counts; 1.0 gives ~3k temporal edges.
    seed:
        Seed or generator for reproducibility.
    labels:
        When true, return ``(graph, labels)`` where ``labels`` is the
        community assignment from
        :func:`~repro.datasets.generators.community_labels` (derived from
        the generated structure, so the graph is bitwise identical to the
        ``labels=False`` one at the same seed).
    storage:
        ``None`` (default) keeps the graph in memory.  A directory path
        resolves through the columnar memmap backend instead: an existing
        event store there is re-opened (after checking its manifest
        provenance against ``name``/``scale``/``seed``), otherwise the
        dataset is generated once and written as a store.  Either way the
        returned graph is ``MemmapStorage``-backed, bitwise identical to
        the in-memory one at the same signature.
    shared:
        When true, the generated graph is converted with ``to_shared()``:
        the returned graph is ``SharedMemoryStorage``-backed, ready to hand
        to :mod:`repro.parallel` workers.  The backend is part of the cache
        key (like the memmap path), so a shared request is never served a
        memory-backed cache hit or vice versa.  Cache-served clones share
        one segment: the entry's storage stays open while cached, and the
        segment is unlinked once the entry is evicted and the last clone
        is garbage collected — don't ``close()`` a clone's storage while
        other clones are in use.

    Raises
    ------
    UnknownDatasetError
        If ``name`` is not registered; the message lists valid names.
    """
    check_positive("scale", scale)
    key = name.lower()
    store_dir = None if storage is None else Path(storage)

    # Deterministic requests (integer seeds) memoize on the full signature,
    # so repeated Runner/benchmark grid cells stop re-generating graphs.
    # The storage backend is part of the key: a memmap-backed request must
    # never be served the cloned in-memory graph (or vice versa).
    cache_key = None
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        backend_key = (
            ("memory",) if store_dir is None else ("memmap", str(store_dir.resolve()))
        )
        if shared:
            backend_key = backend_key + ("shared",)
        cache_key = (key, float(scale), int(seed), bool(labels), backend_key)
        hit = _load_cache.get(cache_key)
        if hit is not None:
            _load_cache.move_to_end(cache_key)
            _load_stats["hits"] += 1
            return _clone(hit)

    if store_dir is not None:
        graph = _load_memmap(key, name, scale, seed, store_dir)
    else:
        graph = _generate(key, name, scale, seed)
    if shared:
        graph = graph.to_shared()
    result = graph if not labels else (graph, community_labels(graph, seed=seed))
    if cache_key is not None:
        # Count the miss only for successful generations, so a bad dataset
        # name never skews the hit-rate diagnostics.
        _load_stats["misses"] += 1
        _load_cache[cache_key] = result  # new keys append in LRU order
        while len(_load_cache) > LOAD_CACHE_SIZE:
            _load_cache.popitem(last=False)
        # The cache keeps the pristine object; callers get a copy they are
        # free to grow in place (the first caller included).
        return _clone(result)
    return result


def _generate(key: str, name: str, scale: float, seed) -> TemporalGraph:
    """Dispatch ``key`` to its generator — the single name->graph mapping
    both the in-memory and the memmap-backed paths resolve through."""

    def s(value: int, minimum: int = 8) -> int:
        return max(int(round(value * scale)), minimum)

    if key == "digg":
        return digg_like(num_users=s(400), num_edges=s(3000), seed=seed)
    if key == "yelp":
        return yelp_like(
            num_users=s(300), num_businesses=s(150), num_reviews=s(3000), seed=seed
        )
    if key == "tmall":
        return tmall_like(
            num_users=s(300), num_items=s(120), num_purchases=s(3000), seed=seed
        )
    if key == "dblp":
        return dblp_like(num_authors=s(300), num_papers=s(600), seed=seed)
    raise UnknownDatasetError(
        f"unknown dataset {name!r}; expected one of {list(available())}"
    )


def _load_memmap(
    key: str, name: str, scale: float, seed, store_dir: Path
) -> TemporalGraph:
    """Open (or generate-and-write) the columnar store for a dataset request.

    The manifest records the generating signature; re-opening a store whose
    provenance disagrees with the request raises instead of silently serving
    a different dataset.
    """
    deterministic = isinstance(seed, (int, np.integer)) and not isinstance(seed, bool)
    provenance = {
        "dataset": key,
        "scale": float(scale),
        # Only integer seeds are reproducible signatures; a live Generator
        # (or None) records as null, marking the store's contents as
        # not regenerable from its manifest.
        "seed": int(seed) if deterministic else None,
    }
    if is_store_dir(store_dir):
        store = MemmapStorage(store_dir)
        recorded = {k: store.meta.get(k) for k in provenance}
        if recorded != provenance:
            raise ValueError(
                f"event store at {store_dir} was written for {recorded}, "
                f"which does not match the requested {provenance}; point "
                "storage= at a fresh directory or delete the stale store"
            )
    else:
        if key not in PAPER_DATASETS:
            # Fail on the bad name before creating an on-disk store for it.
            raise UnknownDatasetError(
                f"unknown dataset {name!r}; expected one of {list(available())}"
            )
        graph = _generate(key, name, scale, seed)
        store = MemmapStorage.write(
            store_dir,
            graph.src,
            graph.dst,
            graph.time,
            graph.weight,
            num_nodes=graph.num_nodes,
            meta=provenance,
        )
    return TemporalGraph.from_storage(store)


def _clone(result):
    """A caller-owned view of a cached entry: graphs copy (O(1), arrays
    shared), label arrays copy so in-place edits can't reach the cache."""
    if isinstance(result, tuple):
        graph, node_labels = result
        return graph.copy(), node_labels.copy()
    return result.copy()
