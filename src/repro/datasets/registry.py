"""Named dataset registry used by the experiment harnesses.

``load("digg")`` etc. return the synthetic stand-ins for the paper's four
datasets at a chosen ``scale`` (1.0 = the laptop-scale defaults documented in
DESIGN.md).  The registry keeps the benchmark drivers declarative: every
table/figure harness iterates ``PAPER_DATASETS`` just as Section V iterates
Digg / Yelp / Tmall / DBLP.
"""

from __future__ import annotations

from repro.datasets.generators import dblp_like, digg_like, tmall_like, yelp_like
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.validation import check_positive

#: Dataset names in the order the paper reports them (Table I).
PAPER_DATASETS = ("digg", "yelp", "tmall", "dblp")


def load(name: str, scale: float = 1.0, seed=None) -> TemporalGraph:
    """Generate the named dataset at ``scale`` times its default size.

    Parameters
    ----------
    name:
        One of ``digg``, ``yelp``, ``tmall``, ``dblp`` (case-insensitive).
    scale:
        Multiplier on node/edge counts; 1.0 gives ~3k temporal edges.
    seed:
        Seed or generator for reproducibility.
    """
    check_positive("scale", scale)

    def s(value: int, minimum: int = 8) -> int:
        return max(int(round(value * scale)), minimum)

    key = name.lower()
    if key == "digg":
        return digg_like(num_users=s(400), num_edges=s(3000), seed=seed)
    if key == "yelp":
        return yelp_like(
            num_users=s(300), num_businesses=s(150), num_reviews=s(3000), seed=seed
        )
    if key == "tmall":
        return tmall_like(
            num_users=s(300), num_items=s(120), num_purchases=s(3000), seed=seed
        )
    if key == "dblp":
        return dblp_like(num_authors=s(300), num_papers=s(600), seed=seed)
    raise KeyError(f"unknown dataset {name!r}; expected one of {PAPER_DATASETS}")
