"""Synthetic temporal-network datasets mirroring the paper's Table I corpora."""

from repro.datasets.generators import (
    community_labels,
    dblp_like,
    digg_like,
    temporal_preferential_attachment,
    temporal_sbm,
    tmall_like,
    yelp_like,
)
from repro.datasets.registry import (
    PAPER_DATASETS,
    UnknownDatasetError,
    available,
    load,
    load_cache_clear,
    load_cache_info,
)

__all__ = [
    "community_labels",
    "dblp_like",
    "digg_like",
    "tmall_like",
    "yelp_like",
    "temporal_preferential_attachment",
    "temporal_sbm",
    "PAPER_DATASETS",
    "UnknownDatasetError",
    "available",
    "load",
    "load_cache_info",
    "load_cache_clear",
]
