"""EHNA — Temporal Network Representation Learning via Historical
Neighborhoods Aggregation (ICDE 2020) — full reproduction.

Public API tour:

- :class:`repro.base.EmbeddingMethod` — the v2 method protocol every model
  speaks: ``fit`` / ``encode(nodes, at=times)`` / ``partial_fit(edges)`` /
  ``save``/``load`` checkpointing;
- :class:`repro.graph.TemporalGraph` — the timestamped-network substrate;
- :mod:`repro.datasets` — synthetic stand-ins for the paper's four datasets;
- :class:`repro.core.EHNA` — the paper's model (plus Table VII ablations);
- :mod:`repro.baselines` — Node2Vec, DeepWalk, CTDNE, LINE, HTNE;
- :mod:`repro.eval` — network reconstruction and link prediction harnesses;
- :mod:`repro.tasks` — the task API v2: declarative evaluation tasks, the
  caching grid :class:`~repro.tasks.Runner`, structured
  :class:`~repro.tasks.ResultTable` results, and the ``python -m
  repro.tasks`` CLI;
- :mod:`repro.experiments` — paper-shaped drivers for every table and
  figure (thin adapters over the task Runner);
- :mod:`repro.nn` — the from-scratch numpy autograd/LSTM substrate.
"""

from repro.base import EmbeddingMethod
from repro.core import EHNA, EHNAConfig
from repro.graph import TemporalGraph

__version__ = "1.0.0"

__all__ = ["TemporalGraph", "EHNA", "EHNAConfig", "EmbeddingMethod", "__version__"]
