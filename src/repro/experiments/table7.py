"""Table VII — ablation study (EHNA vs EHNA-NA / EHNA-RW / EHNA-SL).

Link-prediction F1 under the Weighted-L2 operator, per dataset, exactly as
the paper reports (Section V.F notes Weighted-L2 is shown for space).
"""

from __future__ import annotations

from repro.core.variants import ABLATION_VARIANTS
from repro.datasets import PAPER_DATASETS, load
from repro.eval.link_prediction import evaluate_operator, prepare_link_prediction
from repro.utils.rng import ensure_rng


def run_table7(
    datasets=PAPER_DATASETS,
    scale: float = 0.25,
    dim: int = 32,
    epochs: int = 3,
    seed: int = 0,
    repeats: int = 5,
) -> dict[str, dict[str, float]]:
    """Regenerate Table VII: ``{variant: {dataset: weighted-L2 F1}}``."""
    results: dict[str, dict[str, float]] = {v: {} for v in ABLATION_VARIANTS}
    for ds in datasets:
        graph = load(ds, scale=scale, seed=seed)
        rng = ensure_rng(seed)
        data = prepare_link_prediction(graph, fraction=0.2, rng=rng)
        for variant, factory in ABLATION_VARIANTS.items():
            model = factory(seed=seed, dim=dim, epochs=epochs)
            model.fit(data.train_graph)
            metrics = evaluate_operator(
                model.embeddings(), data, "Weighted-L2", repeats=repeats, rng=rng
            )
            results[variant][ds] = metrics["f1"]
    return results


def format_table7(results: dict[str, dict[str, float]]) -> str:
    """Render the variant x dataset F1 grid."""
    datasets = list(next(iter(results.values())))
    lines = ["-- Table VII: ablation (F1, Weighted-L2) --"]
    lines.append(f"{'Variant':10s}" + "".join(f"{d:>10s}" for d in datasets))
    for variant, row in results.items():
        lines.append(f"{variant:10s}" + "".join(f"{row[d]:>10.4f}" for d in datasets))
    return "\n".join(lines)
