"""Table VII — ablation study (EHNA vs EHNA-NA / EHNA-RW / EHNA-SL).

Link-prediction F1 under the Weighted-L2 operator, per dataset, exactly as
the paper reports (Section V.F notes Weighted-L2 is shown for space).  A
thin adapter over the task Runner: one single-operator
:class:`~repro.tasks.link_prediction.LinkPredictionTask` grid per dataset
(the legacy driver reseeded its generator per dataset, so the adapter runs
one shared-stream Runner per dataset to keep the published numbers).
"""

from __future__ import annotations

from repro.core.variants import ABLATION_VARIANTS
from repro.datasets import PAPER_DATASETS
from repro.tasks import LinkPredictionTask, Runner


def run_table7(
    datasets=PAPER_DATASETS,
    scale: float = 0.25,
    dim: int = 32,
    epochs: int = 3,
    seed: int = 0,
    repeats: int = 5,
    rng_mode: str = "shared",
) -> dict[str, dict[str, float]]:
    """Regenerate Table VII: ``{variant: {dataset: weighted-L2 F1}}``."""
    factories = {
        name: (lambda make=make: make(seed=seed, dim=dim, epochs=epochs))
        for name, make in ABLATION_VARIANTS.items()
    }
    task = LinkPredictionTask(
        fraction=0.2, operators=("Weighted-L2",), repeats=repeats
    )
    results: dict[str, dict[str, float]] = {v: {} for v in ABLATION_VARIANTS}
    for ds in datasets:
        table = Runner(
            [ds], factories, [task], scale=scale, seed=seed, rng_mode=rng_mode
        ).run()
        for variant in ABLATION_VARIANTS:
            results[variant][ds] = table.cell(ds, variant, task.name).metrics[
                "Weighted-L2/f1"
            ]
    return results


def format_table7(results: dict[str, dict[str, float]]) -> str:
    """Render the variant x dataset F1 grid."""
    datasets = list(next(iter(results.values())))
    lines = ["-- Table VII: ablation (F1, Weighted-L2) --"]
    lines.append(f"{'Variant':10s}" + "".join(f"{d:>10s}" for d in datasets))
    for variant, row in results.items():
        lines.append(f"{variant:10s}" + "".join(f"{row[d]:>10.4f}" for d in datasets))
    return "\n".join(lines)
