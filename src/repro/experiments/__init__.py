"""Experiment drivers — one per table/figure of Section V (see DESIGN.md)."""

from repro.experiments.fig4 import DEFAULT_PS, format_fig4, run_fig4
from repro.experiments.fig5 import DEFAULT_GRIDS, format_fig5, run_fig5
from repro.experiments.link_tables import (
    TABLE_FOR_DATASET,
    format_link_table,
    run_link_table,
)
from repro.experiments.methods import METHOD_ORDER, default_methods
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table7 import format_table7, run_table7
from repro.experiments.table8 import format_table8, run_table8

__all__ = [
    "default_methods",
    "METHOD_ORDER",
    "run_table1",
    "format_table1",
    "run_fig4",
    "format_fig4",
    "DEFAULT_PS",
    "run_link_table",
    "format_link_table",
    "TABLE_FOR_DATASET",
    "run_table7",
    "format_table7",
    "run_table8",
    "format_table8",
    "run_fig5",
    "format_fig5",
    "DEFAULT_GRIDS",
]
