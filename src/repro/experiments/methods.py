"""The method roster of Section V (LINE, Node2Vec, CTDNE, HTNE, EHNA).

``default_methods`` returns zero-argument factories so every experiment can
construct fresh, identically configured models.  Parameters are laptop-scale
versions of Section V.C (see DESIGN.md's scale note); the relative budgets
mirror the paper — e.g. Node2Vec walks are longer than EHNA's, LINE's cost
depends only on its sample count.

Epoch-level progress reporting rides on the shared trainer's callback hook:
``default_methods(verbose=True)`` (or any custom ``callbacks``) attaches to
EHNA's construction-time callbacks, so experiment drivers get loss lines —
or early stopping, or eval probes — without touching the training loop.
"""

from __future__ import annotations

from typing import Callable

from repro.base import EmbeddingMethod
from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.core import EHNA, VerboseCallback

#: Method names in the order the paper's tables list them.
METHOD_ORDER = ("LINE", "Node2Vec", "CTDNE", "HTNE", "EHNA")


def default_methods(
    dim: int = 32,
    seed: int = 0,
    ehna_epochs: int = 3,
    sgns_epochs: int = 2,
    verbose: bool = False,
    callbacks: tuple = (),
) -> dict[str, Callable[[], EmbeddingMethod]]:
    """Factories for the five methods compared throughout Section V.

    ``verbose`` adds per-epoch loss logging to EHNA (the only method whose
    training is slow enough to warrant it); ``callbacks`` appends arbitrary
    :class:`~repro.core.trainer.TrainerCallback` hooks to the same loop.
    """
    ehna_callbacks = tuple(callbacks) + ((VerboseCallback(),) if verbose else ())
    return {
        "LINE": lambda: LINE(dim=dim, samples_per_edge=20, seed=seed),
        "Node2Vec": lambda: Node2Vec(
            dim=dim,
            num_walks=6,
            walk_length=15,
            window=5,
            p=1.0,
            q=1.0,
            epochs=sgns_epochs,
            seed=seed,
        ),
        "CTDNE": lambda: CTDNE(
            dim=dim,
            walks_per_node=6,
            walk_length=15,
            window=5,
            epochs=sgns_epochs,
            seed=seed,
        ),
        "HTNE": lambda: HTNE(dim=dim, epochs=2 * sgns_epochs, seed=seed),
        "EHNA": lambda: EHNA(
            dim=dim, epochs=ehna_epochs, seed=seed, callbacks=ehna_callbacks
        ),
    }
