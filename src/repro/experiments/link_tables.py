"""Tables III-VI — link prediction on Digg / Yelp / Tmall / DBLP.

One driver parameterized by dataset: prepare the temporal holdout, train
every method on the truncated graph, evaluate all four operators, and attach
the paper's error-reduction column (EHNA vs the best baseline per row).
"""

from __future__ import annotations

from repro.datasets import load
from repro.eval.link_prediction import evaluate_all_operators, prepare_link_prediction
from repro.eval.metrics import error_reduction
from repro.experiments.methods import default_methods
from repro.utils.rng import ensure_rng

#: Which paper table corresponds to which dataset.
TABLE_FOR_DATASET = {
    "digg": "Table III",
    "yelp": "Table IV",
    "tmall": "Table V",
    "dblp": "Table VI",
}

METRICS = ("auc", "f1", "precision", "recall")


def run_link_table(
    dataset: str,
    scale: float = 0.3,
    dim: int = 32,
    methods=None,
    seed: int = 0,
    repeats: int = 5,
) -> dict[str, dict[str, dict[str, float]]]:
    """Regenerate one of Tables III-VI.

    Returns ``{operator: {metric: {method: value, "Error Reduction": er}}}``
    where the error reduction compares EHNA against the best baseline, as in
    the paper's last column.
    """
    graph = load(dataset, scale=scale, seed=seed)
    rng = ensure_rng(seed)
    data = prepare_link_prediction(graph, fraction=0.2, rng=rng)
    factories = methods or default_methods(dim=dim, seed=seed)

    per_method: dict[str, dict[str, dict[str, float]]] = {}
    for name, factory in factories.items():
        model = factory().fit(data.train_graph)
        per_method[name] = evaluate_all_operators(
            model.embeddings(), data, repeats=repeats, rng=rng
        )

    table: dict[str, dict[str, dict[str, float]]] = {}
    method_names = list(per_method)
    for operator in next(iter(per_method.values())):
        table[operator] = {}
        for metric in METRICS:
            row = {m: per_method[m][operator][metric] for m in method_names}
            if "EHNA" in row:
                baselines = [v for m, v in row.items() if m != "EHNA"]
                if baselines:
                    row["Error Reduction"] = error_reduction(
                        max(baselines), row["EHNA"]
                    )
            table[operator][metric] = row
    return table


def format_link_table(dataset: str, table: dict) -> str:
    """Render in the paper's operator-block layout."""
    title = TABLE_FOR_DATASET.get(dataset, "Link prediction")
    lines = [f"-- {title} ({dataset}): link prediction --"]
    methods = [m for m in next(iter(table.values()))["auc"] if m != "Error Reduction"]
    header = f"{'Operator':12s} {'Metric':10s}" + "".join(
        f"{m:>10s}" for m in methods
    ) + f"{'ErrRed':>9s}"
    lines.append(header)
    for operator, metrics in table.items():
        for metric, row in metrics.items():
            cells = "".join(f"{row[m]:>10.4f}" for m in methods)
            er = row.get("Error Reduction")
            er_txt = f"{100 * er:>8.1f}%" if er is not None else " " * 9
            lines.append(f"{operator:12s} {metric:10s}{cells}{er_txt}")
    return "\n".join(lines)
