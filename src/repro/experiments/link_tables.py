"""Tables III-VI — link prediction on Digg / Yelp / Tmall / DBLP.

Since the task-API redesign this driver is a thin adapter over the
:class:`~repro.tasks.runner.Runner`: one :class:`LinkPredictionTask` cell
per method, reshaped into the paper's operator-block layout with the
error-reduction column (EHNA vs the best baseline per row).

``rng_mode="shared"`` (the default) threads one generator through the grid
in execution order, reproducing the pre-Runner numbers bitwise at a fixed
seed — with the historical caveat that method N's numbers depend on how
many draws method N-1 consumed.  ``rng_mode="cell"`` gives every grid cell
an isolated child generator instead (the fix), at the cost of changing the
published tables' exact values.
"""

from __future__ import annotations

from repro.eval.metrics import error_reduction
from repro.eval.operators import OPERATORS
from repro.experiments.methods import default_methods
from repro.tasks import LinkPredictionTask, Runner

#: Which paper table corresponds to which dataset.
TABLE_FOR_DATASET = {
    "digg": "Table III",
    "yelp": "Table IV",
    "tmall": "Table V",
    "dblp": "Table VI",
}

METRICS = ("auc", "f1", "precision", "recall")


def run_link_table(
    dataset: str,
    scale: float = 0.3,
    dim: int = 32,
    methods=None,
    seed: int = 0,
    repeats: int = 5,
    rng_mode: str = "shared",
) -> dict[str, dict[str, dict[str, float]]]:
    """Regenerate one of Tables III-VI.

    Returns ``{operator: {metric: {method: value, "Error Reduction": er}}}``
    where the error reduction compares EHNA against the best baseline, as in
    the paper's last column.
    """
    factories = methods or default_methods(dim=dim, seed=seed)
    runner = Runner(
        [dataset],
        factories,
        [LinkPredictionTask(fraction=0.2, repeats=repeats)],
        scale=scale,
        seed=seed,
        rng_mode=rng_mode,
    )
    results = runner.run()

    table: dict[str, dict[str, dict[str, float]]] = {}
    task = LinkPredictionTask.name
    for operator in OPERATORS:
        table[operator] = {}
        for metric in METRICS:
            row = results.row(dataset, task, f"{operator}/{metric}")
            if "EHNA" in row:
                baselines = [v for m, v in row.items() if m != "EHNA"]
                if baselines:
                    row["Error Reduction"] = error_reduction(
                        max(baselines), row["EHNA"]
                    )
            table[operator][metric] = row
    return table


def format_link_table(dataset: str, table: dict) -> str:
    """Render in the paper's operator-block layout."""
    title = TABLE_FOR_DATASET.get(dataset, "Link prediction")
    lines = [f"-- {title} ({dataset}): link prediction --"]
    methods = [m for m in next(iter(table.values()))["auc"] if m != "Error Reduction"]
    header = f"{'Operator':12s} {'Metric':10s}" + "".join(
        f"{m:>10s}" for m in methods
    ) + f"{'ErrRed':>9s}"
    lines.append(header)
    for operator, metrics in table.items():
        for metric, row in metrics.items():
            cells = "".join(f"{row[m]:>10.4f}" for m in methods)
            er = row.get("Error Reduction")
            er_txt = f"{100 * er:>8.1f}%" if er is not None else " " * 9
            lines.append(f"{operator:12s} {metric:10s}{cells}{er_txt}")
    return "\n".join(lines)
