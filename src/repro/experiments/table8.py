"""Table VIII — training time per epoch.

Each method is run for exactly one epoch (one pass over its training unit:
edge formations for EHNA, the walk corpus for Node2Vec/CTDNE, the edge-sample
budget for LINE, formation events for HTNE) and wall-clock time is recorded.
Absolute numbers reflect this pure-Python substrate, but the paper's *shape*
is what matters: HTNE cheapest, LINE flat across datasets (its cost depends
only on the sample budget), EHNA in between — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.core import EHNA
from repro.datasets import PAPER_DATASETS, load
from repro.utils.timers import Timer


def one_epoch_methods(dim: int = 32, seed: int = 0):
    """Single-epoch configurations of every method (fixed LINE budget)."""
    return {
        "Node2Vec": lambda: Node2Vec(dim=dim, epochs=1, seed=seed),
        "CTDNE": lambda: CTDNE(dim=dim, epochs=1, seed=seed),
        # LINE's per-epoch cost is sample-count-bound: the run_table8 driver
        # overwrites samples_per_edge so the *total* budget is fixed across
        # datasets, as in the paper.
        "LINE": lambda: LINE(dim=dim, samples_per_edge=1, seed=seed),
        "HTNE": lambda: HTNE(dim=dim, epochs=1, seed=seed),
        "EHNA": lambda: EHNA(dim=dim, epochs=1, seed=seed),
    }


def run_table8(
    datasets=PAPER_DATASETS,
    scale: float = 0.3,
    dim: int = 32,
    seed: int = 0,
    line_total_samples: int = 50_000,
) -> dict[str, dict[str, float]]:
    """Regenerate Table VIII: ``{method: {dataset: seconds/epoch}}``."""
    results: dict[str, dict[str, float]] = {}
    for ds in datasets:
        graph = load(ds, scale=scale, seed=seed)
        for name, factory in one_epoch_methods(dim=dim, seed=seed).items():
            model = factory()
            if name == "LINE":
                # Same absolute budget per dataset, like the paper.
                model.samples_per_edge = max(line_total_samples // graph.num_edges, 1)
            with Timer() as t:
                model.fit(graph)
            results.setdefault(name, {})[ds] = t.elapsed
    return results


def format_table8(results: dict[str, dict[str, float]]) -> str:
    """Render the method x dataset seconds-per-epoch grid."""
    datasets = list(next(iter(results.values())))
    lines = ["-- Table VIII: avg training time per epoch (s) --"]
    lines.append(f"{'Method':10s}" + "".join(f"{d:>10s}" for d in datasets))
    for method, row in results.items():
        lines.append(f"{method:10s}" + "".join(f"{row[d]:>10.2f}" for d in datasets))
    return "\n".join(lines)
