"""Table VIII — training time per epoch.

Each method is run for exactly one epoch (one pass over its training unit:
edge formations for EHNA, the walk corpus for Node2Vec/CTDNE, the edge-sample
budget for LINE, formation events for HTNE) and wall-clock time is recorded.
A thin adapter over the task Runner: a :class:`~repro.tasks.timing.FitTimingTask`
grid whose "metric" is the Runner's per-cell ``fit_seconds`` capture.
Absolute numbers reflect this pure-Python substrate, but the paper's *shape*
is what matters: HTNE cheapest, LINE flat across datasets (its cost depends
only on the sample budget), EHNA in between — see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.baselines import CTDNE, HTNE, LINE, Node2Vec
from repro.core import EHNA
from repro.datasets import PAPER_DATASETS
from repro.tasks import FitTimingTask, Runner


def one_epoch_methods(dim: int = 32, seed: int = 0, line_total_samples: int = 50_000):
    """Single-epoch configurations of every method (fixed LINE budget).

    The LINE factory takes the training graph (the Runner passes it to
    one-required-argument factories) so the *total* sample budget is fixed
    across datasets, as in the paper.
    """

    def line_factory(graph):
        model = LINE(dim=dim, samples_per_edge=1, seed=seed)
        model.samples_per_edge = max(line_total_samples // graph.num_edges, 1)
        return model

    return {
        "Node2Vec": lambda: Node2Vec(dim=dim, epochs=1, seed=seed),
        "CTDNE": lambda: CTDNE(dim=dim, epochs=1, seed=seed),
        "LINE": line_factory,
        "HTNE": lambda: HTNE(dim=dim, epochs=1, seed=seed),
        "EHNA": lambda: EHNA(dim=dim, epochs=1, seed=seed),
    }


def run_table8(
    datasets=PAPER_DATASETS,
    scale: float = 0.3,
    dim: int = 32,
    seed: int = 0,
    line_total_samples: int = 50_000,
) -> dict[str, dict[str, float]]:
    """Regenerate Table VIII: ``{method: {dataset: seconds/epoch}}``."""
    methods = one_epoch_methods(
        dim=dim, seed=seed, line_total_samples=line_total_samples
    )
    task = FitTimingTask()
    table = Runner(list(datasets), methods, [task], scale=scale, seed=seed).run()
    results: dict[str, dict[str, float]] = {}
    for ds in datasets:
        for name in methods:
            results.setdefault(name, {})[ds] = table.cell(
                ds, name, task.name
            ).fit_seconds
    return results


def format_table8(results: dict[str, dict[str, float]]) -> str:
    """Render the method x dataset seconds-per-epoch grid."""
    datasets = list(next(iter(results.values())))
    lines = ["-- Table VIII: avg training time per epoch (s) --"]
    lines.append(f"{'Method':10s}" + "".join(f"{d:>10s}" for d in datasets))
    for method, row in results.items():
        lines.append(f"{method:10s}" + "".join(f"{row[d]:>10.2f}" for d in datasets))
    return "\n".join(lines)
