"""Figure 5 — parameter sensitivity of EHNA on the Yelp-like dataset.

Sweeps the safety margin ``m``, walk length ``l`` and the walk-bias
parameters ``p``/``q`` (as ``log2`` grids), measuring link-prediction F1
under Weighted-L2 with everything else at its default — the protocol of
Section V.H.

A thin adapter over the task Runner with the *methods axis* carrying the
configuration sweep: every (panel, value) pair becomes one EHNA factory,
evaluated against a single shared single-operator
:class:`~repro.tasks.link_prediction.LinkPredictionTask` — one holdout
preparation for the whole figure, exactly like the legacy driver, which the
shared-RNG mode reproduces bitwise.
"""

from __future__ import annotations

from repro.core import EHNA
from repro.tasks import LinkPredictionTask, Runner

#: The paper's grids (Fig. 5a-d).
DEFAULT_GRIDS = {
    "margin": [1.0, 2.0, 3.0, 4.0, 5.0],
    "walk_length": [1, 5, 10, 15, 20, 25],
    "log2_p": [-2, -1, 0, 1, 2],
    "log2_q": [-2, -1, 0, 1, 2],
}


def _sweep_points(grids: dict) -> list[tuple[str, float, dict]]:
    """(panel, grid value, EHNA overrides) in the legacy sweep order."""
    points: list[tuple[str, float, dict]] = []
    for m in grids["margin"]:
        points.append(("margin", m, {"margin": float(m)}))
    for length in grids["walk_length"]:
        points.append(("walk_length", length, {"walk_length": int(length)}))
    for e in grids["log2_p"]:
        points.append(("log2_p", e, {"p": float(2.0**e)}))
    for e in grids["log2_q"]:
        points.append(("log2_q", e, {"q": float(2.0**e)}))
    return points


def run_fig5(
    dataset: str = "yelp",
    scale: float = 0.2,
    dim: int = 32,
    epochs: int = 2,
    seed: int = 0,
    grids: dict | None = None,
) -> dict[str, dict[float, float]]:
    """Regenerate Fig. 5: ``{panel: {parameter value: F1}}``."""
    grids = {**DEFAULT_GRIDS, **(grids or {})}
    points = _sweep_points(grids)
    methods = {
        f"{panel}={value}": (
            lambda overrides=overrides: EHNA(
                seed=seed, dim=dim, epochs=epochs, **overrides
            )
        )
        for panel, value, overrides in points
    }
    task = LinkPredictionTask(fraction=0.2, operators=("Weighted-L2",), repeats=3)
    table = Runner(
        [dataset], methods, [task], scale=scale, seed=seed, rng_mode="shared"
    ).run()

    results: dict[str, dict[float, float]] = {
        "margin": {}, "walk_length": {}, "log2_p": {}, "log2_q": {}
    }
    for panel, value, _ in points:
        cell = table.cell(dataset, f"{panel}={value}", task.name)
        results[panel][value] = cell.metrics["Weighted-L2/f1"]
    return results


def format_fig5(results: dict[str, dict[float, float]]) -> str:
    """Render the four panels as value/F1 rows."""
    lines = ["-- Fig.5: parameter sensitivity (F1, Weighted-L2) --"]
    for panel, curve in results.items():
        lines.append(f"[{panel}]")
        lines.append("  " + "".join(f"{v:>9g}" for v in curve))
        lines.append("  " + "".join(f"{f1:>9.4f}" for f1 in curve.values()))
    return "\n".join(lines)
