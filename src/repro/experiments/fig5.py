"""Figure 5 — parameter sensitivity of EHNA on the Yelp-like dataset.

Sweeps the safety margin ``m``, walk length ``l`` and the walk-bias
parameters ``p``/``q`` (as ``log2`` grids), measuring link-prediction F1
under Weighted-L2 with everything else at its default — the protocol of
Section V.H.
"""

from __future__ import annotations

from repro.core import EHNA
from repro.datasets import load
from repro.eval.link_prediction import evaluate_operator, prepare_link_prediction
from repro.utils.rng import ensure_rng

#: The paper's grids (Fig. 5a-d).
DEFAULT_GRIDS = {
    "margin": [1.0, 2.0, 3.0, 4.0, 5.0],
    "walk_length": [1, 5, 10, 15, 20, 25],
    "log2_p": [-2, -1, 0, 1, 2],
    "log2_q": [-2, -1, 0, 1, 2],
}


def _f1_for_config(data, rng, seed, **overrides) -> float:
    model = EHNA(seed=seed, **overrides)
    model.fit(data.train_graph)
    metrics = evaluate_operator(
        model.embeddings(), data, "Weighted-L2", repeats=3, rng=rng
    )
    return metrics["f1"]


def run_fig5(
    dataset: str = "yelp",
    scale: float = 0.2,
    dim: int = 32,
    epochs: int = 2,
    seed: int = 0,
    grids: dict | None = None,
) -> dict[str, dict[float, float]]:
    """Regenerate Fig. 5: ``{panel: {parameter value: F1}}``."""
    grids = {**DEFAULT_GRIDS, **(grids or {})}
    graph = load(dataset, scale=scale, seed=seed)
    rng = ensure_rng(seed)
    data = prepare_link_prediction(graph, fraction=0.2, rng=rng)
    base = {"dim": dim, "epochs": epochs}

    results: dict[str, dict[float, float]] = {
        "margin": {}, "walk_length": {}, "log2_p": {}, "log2_q": {}
    }
    for m in grids["margin"]:
        results["margin"][m] = _f1_for_config(data, rng, seed, margin=float(m), **base)
    for l in grids["walk_length"]:
        results["walk_length"][l] = _f1_for_config(
            data, rng, seed, walk_length=int(l), **base
        )
    for e in grids["log2_p"]:
        results["log2_p"][e] = _f1_for_config(data, rng, seed, p=float(2.0**e), **base)
    for e in grids["log2_q"]:
        results["log2_q"][e] = _f1_for_config(data, rng, seed, q=float(2.0**e), **base)
    return results


def format_fig5(results: dict[str, dict[float, float]]) -> str:
    """Render the four panels as value/F1 rows."""
    lines = ["-- Fig.5: parameter sensitivity (F1, Weighted-L2) --"]
    for panel, curve in results.items():
        lines.append(f"[{panel}]")
        lines.append("  " + "".join(f"{v:>9g}" for v in curve))
        lines.append("  " + "".join(f"{f1:>9.4f}" for f1 in curve.values()))
    return "\n".join(lines)
