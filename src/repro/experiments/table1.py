"""Table I — dataset statistics."""

from __future__ import annotations

from repro.datasets import PAPER_DATASETS, load
from repro.graph import graph_statistics


def run_table1(scale: float = 1.0, seed: int = 0) -> dict[str, dict]:
    """Regenerate Table I rows for the synthetic stand-in datasets."""
    rows = {}
    for name in PAPER_DATASETS:
        graph = load(name, scale=scale, seed=seed)
        rows[name] = graph_statistics(graph).as_row()
    return rows


def format_table1(rows: dict[str, dict]) -> str:
    """Render the rows as the paper's two-column table (plus diagnostics)."""
    lines = [f"{'Dataset':10s} {'# nodes':>10s} {'# temporal edges':>18s}"]
    for name, row in rows.items():
        lines.append(
            f"{name:10s} {row['# nodes']:>10,d} {row['# temporal edges']:>18,d}"
        )
    return "\n".join(lines)
