"""Figure 4 — network reconstruction Precision@P curves.

A thin adapter over the task Runner: one
:class:`~repro.tasks.reconstruction.ReconstructionTask` per dataset, every
method trained on the *full* graph (reconstruction probes how well the
embedding preserves observed structure) — and, because the task declares a
full-graph fit key, those trained models are shared with any other
full-graph task in a larger grid.  The paper sweeps P ∈ {10², …, 10⁶} over
10⁴ sampled nodes; the grid here scales with the synthetic graphs.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import PAPER_DATASETS
from repro.experiments.methods import default_methods
from repro.tasks import ReconstructionTask, Runner

#: Laptop-scale cutoff grid (the paper's 1e2..1e6, shrunk with the graphs).
DEFAULT_PS = (100, 300, 1000, 3000, 10000)


def run_fig4(
    datasets=PAPER_DATASETS,
    scale: float = 0.3,
    dim: int = 32,
    ps=DEFAULT_PS,
    methods=None,
    seed: int = 0,
    repeats: int = 3,
) -> dict[str, dict[str, dict[int, float]]]:
    """Regenerate Fig. 4: ``{dataset: {method: {P: precision}}}``."""
    factories = methods or default_methods(dim=dim, seed=seed)
    task = ReconstructionTask(ps=tuple(ps), sample_size=None, repeats=repeats)
    runner = Runner(list(datasets), factories, [task], scale=scale, seed=seed)
    results = runner.run()

    out: dict[str, dict[str, dict[int, float]]] = {}
    for ds in datasets:
        out[ds] = {
            name: {p: results.cell(ds, name, task.name).metrics[f"precision@{p}"]
                   for p in task.ps}
            for name in factories
        }
    return out


def format_fig4(results: dict[str, dict[str, dict[int, float]]]) -> str:
    """Render each dataset's precision curve as rows (one per method)."""
    lines = []
    for ds, per_method in results.items():
        lines.append(f"-- Fig.4 ({ds}): Precision@P --")
        any_method = next(iter(per_method.values()))
        header = "method      " + "".join(f"P={p:<9d}" for p in any_method)
        lines.append(header)
        for name, curve in per_method.items():
            lines.append(
                f"{name:12s}" + "".join(f"{v:<11.4f}" for v in curve.values())
            )
    return "\n".join(lines)


def reconstruction_auc_proxy(curve: dict[int, float]) -> float:
    """Scalar summary of a Precision@P curve (mean over the grid)."""
    return float(np.mean(list(curve.values())))
