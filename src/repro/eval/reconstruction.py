"""Network reconstruction (Section V.D, Figure 4).

Node pairs are ranked by dot-product similarity of their learned embeddings;
``Precision@P`` is the fraction of the top-``P`` ranked pairs that are true
edges.  As in the paper, evaluating all ``|V|(|V|-1)/2`` pairs is avoided by
sampling a node subset, repeating, and averaging.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


def reconstruction_precision(
    embeddings: np.ndarray,
    graph: TemporalGraph,
    ps: list[int],
    sample_size: int | None = None,
    repeats: int = 1,
    rng=None,
) -> dict[int, float]:
    """Average ``Precision@P`` for every ``P`` in ``ps``.

    Parameters
    ----------
    embeddings:
        ``(num_nodes, d)`` learned vectors.
    graph:
        Ground-truth network (an edge exists if any temporal event does).
    ps:
        Cutoffs — the paper sweeps ``10² .. 10⁶``; cutoffs above the number
        of candidate pairs are clipped.
    sample_size:
        Number of nodes sampled per repeat (paper: 10⁴); None = all nodes.
    """
    rng = ensure_rng(rng)
    for p in ps:
        check_positive("P", p)
    if embeddings.shape[0] != graph.num_nodes:
        raise ValueError("embeddings must cover every node of the graph")

    totals = {p: 0.0 for p in ps}
    for _ in range(repeats):
        if sample_size is None or sample_size >= graph.num_nodes:
            nodes = np.arange(graph.num_nodes)
        else:
            nodes = rng.choice(graph.num_nodes, size=sample_size, replace=False)
        scores = embeddings[nodes] @ embeddings[nodes].T
        iu, ju = np.triu_indices(nodes.size, k=1)
        pair_scores = scores[iu, ju]
        order = np.argsort(-pair_scores, kind="stable")
        max_p = min(max(ps), order.size)
        top = order[:max_p]
        hits = np.fromiter(
            (
                graph.has_edge(int(nodes[iu[idx]]), int(nodes[ju[idx]]))
                for idx in top
            ),
            dtype=np.float64,
            count=top.size,
        )
        cum_hits = np.cumsum(hits)
        for p in ps:
            cut = min(p, cum_hits.size)
            totals[p] += cum_hits[cut - 1] / cut
    return {p: totals[p] / repeats for p in ps}
