"""Network reconstruction (Section V.D, Figure 4).

Node pairs are ranked by dot-product similarity of their learned embeddings;
``Precision@P`` is the fraction of the top-``P`` ranked pairs that are true
edges.  As in the paper, evaluating all ``|V|(|V|-1)/2`` pairs is avoided by
sampling a node subset, repeating, and averaging.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


def reconstruction_precision(
    embeddings: np.ndarray,
    graph: TemporalGraph,
    ps: list[int],
    sample_size: int | None = None,
    repeats: int = 1,
    rng=None,
) -> dict[int, float]:
    """Average ``Precision@P`` for every ``P`` in ``ps``.

    Parameters
    ----------
    embeddings:
        ``(num_nodes, d)`` learned vectors.
    graph:
        Ground-truth network (an edge exists if any temporal event does).
    ps:
        Cutoffs — the paper sweeps ``10² .. 10⁶``; cutoffs above the number
        of candidate pairs are clipped.
    sample_size:
        Number of nodes sampled per repeat (paper: 10⁴); None = all nodes.
    """
    rng = ensure_rng(rng)
    for p in ps:
        check_positive("P", p)
    if embeddings.shape[0] != graph.num_nodes:
        raise ValueError("embeddings must cover every node of the graph")

    # With sampling disabled every repeat ranks the same full pair set, so
    # one pass is computed and its (identical) values accumulated `repeats`
    # times — same arithmetic as the naive loop, at 1/repeats the cost.
    sampling = sample_size is not None and sample_size < graph.num_nodes
    totals = {p: 0.0 for p in ps}
    per_pass: dict[int, float] | None = None
    for _ in range(repeats):
        if per_pass is not None:
            for p in ps:
                totals[p] += per_pass[p]
            continue
        if sampling:
            nodes = rng.choice(graph.num_nodes, size=sample_size, replace=False)
        else:
            nodes = np.arange(graph.num_nodes)
        scores = embeddings[nodes] @ embeddings[nodes].T
        iu, ju = np.triu_indices(nodes.size, k=1)
        pair_scores = scores[iu, ju]
        order = np.argsort(-pair_scores, kind="stable")
        max_p = min(max(ps), order.size)
        top = order[:max_p]
        hits = graph.has_edges(nodes[iu[top]], nodes[ju[top]]).astype(np.float64)
        cum_hits = np.cumsum(hits)
        values = {}
        for p in ps:
            cut = min(p, cum_hits.size)
            values[p] = cum_hits[cut - 1] / cut
            totals[p] += values[p]
        if not sampling:
            per_pass = values
    return {p: totals[p] / repeats for p in ps}
