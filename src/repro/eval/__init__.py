"""Evaluation harness: reconstruction, link prediction, metrics, classifier."""

from repro.eval.classifiers import LogisticRegression
from repro.eval.link_prediction import (
    LinkPredictionData,
    evaluate_all_operators,
    evaluate_operator,
    holdout_pairs,
    prepare_link_prediction,
    sample_negative_pairs,
)
from repro.eval.metrics import auc_score, binary_metrics, error_reduction
from repro.eval.operators import OPERATORS, edge_features
from repro.eval.reconstruction import reconstruction_precision

__all__ = [
    "LogisticRegression",
    "LinkPredictionData",
    "prepare_link_prediction",
    "holdout_pairs",
    "sample_negative_pairs",
    "evaluate_operator",
    "evaluate_all_operators",
    "auc_score",
    "binary_metrics",
    "error_reduction",
    "OPERATORS",
    "edge_features",
    "reconstruction_precision",
]
