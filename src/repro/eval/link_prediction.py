"""Future link prediction (Section V.E, Tables III-VI).

Protocol, replicated from the paper:

1. remove the 20% most recent edges; train embeddings on the remainder;
2. held-out (deduplicated) pairs are positives; an equal number of
   never-connected pairs are negatives;
3. per Table II operator, build edge features, split 50/50 into classifier
   train/test, fit logistic regression, measure AUC / F1 / precision /
   recall; repeat the split 10 times and average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.classifiers import LogisticRegression
from repro.eval.metrics import auc_score, binary_metrics
from repro.eval.operators import OPERATORS, edge_features
from repro.graph.temporal_graph import TemporalGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive


@dataclass
class LinkPredictionData:
    """A prepared instance of the protocol (steps 1-2)."""

    train_graph: TemporalGraph
    positive_pairs: np.ndarray  # (n, 2)
    negative_pairs: np.ndarray  # (n, 2)
    full_graph: TemporalGraph = field(repr=False)


def holdout_pairs(graph: TemporalGraph, fraction: float = 0.2) -> tuple[TemporalGraph, np.ndarray]:
    """Split off the most recent ``fraction`` of edges; dedupe to (u, v) pairs.

    Pairs that also appear among the older (training) edges are dropped —
    those links are not *future* links, the classifier has literally seen
    them.  Returns ``(train_graph, positive_pairs)``.
    """
    check_fraction("fraction", fraction)
    train_graph, held_ids = graph.split_recent(fraction)
    lo = np.minimum(graph.src[held_ids], graph.dst[held_ids])
    hi = np.maximum(graph.src[held_ids], graph.dst[held_ids])
    pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
    pairs = pairs[~train_graph.has_edges(pairs[:, 0], pairs[:, 1])]
    if pairs.shape[0] == 0:
        raise ValueError(
            "holdout produced no novel pairs; the graph may be too repetitive"
        )
    return train_graph, pairs


def sample_negative_pairs(
    graph: TemporalGraph, count: int, rng=None, max_tries: int = 200
) -> np.ndarray:
    """``count`` node pairs with no edge anywhere in ``graph`` (Section V.E)."""
    check_positive("count", count)
    rng = ensure_rng(rng)
    n = graph.num_nodes
    found: set[tuple[int, int]] = set()
    for _ in range(max_tries):
        need = count - len(found)
        if need <= 0:
            break
        us = rng.integers(n, size=2 * need + 8)
        vs = rng.integers(n, size=2 * need + 8)
        for u, v in zip(us, vs):
            if u == v:
                continue
            a, b = (int(u), int(v)) if u < v else (int(v), int(u))
            if (a, b) in found or graph.has_edge(a, b):
                continue
            found.add((a, b))
            if len(found) == count:
                break
    if len(found) < count:
        raise RuntimeError(
            f"could not sample {count} negative pairs (graph too dense?)"
        )
    return np.array(sorted(found), dtype=np.int64)


def prepare_link_prediction(
    graph: TemporalGraph, fraction: float = 0.2, rng=None
) -> LinkPredictionData:
    """Steps 1-2 of the protocol: holdout + negative sampling."""
    rng = ensure_rng(rng)
    train_graph, positives = holdout_pairs(graph, fraction)
    negatives = sample_negative_pairs(graph, positives.shape[0], rng)
    return LinkPredictionData(
        train_graph=train_graph,
        positive_pairs=positives,
        negative_pairs=negatives,
        full_graph=graph,
    )


def evaluate_operator(
    embeddings: np.ndarray,
    data: LinkPredictionData,
    operator,
    train_ratio: float = 0.5,
    repeats: int = 10,
    rng=None,
) -> dict[str, float]:
    """Steps 3-4 for one operator: features -> LR -> averaged metrics."""
    check_fraction("train_ratio", train_ratio)
    check_positive("repeats", repeats)
    rng = ensure_rng(rng)
    pairs = np.concatenate([data.positive_pairs, data.negative_pairs], axis=0)
    labels = np.concatenate(
        [
            np.ones(data.positive_pairs.shape[0], dtype=np.int64),
            np.zeros(data.negative_pairs.shape[0], dtype=np.int64),
        ]
    )
    features = edge_features(embeddings, pairs, operator)

    sums = {"auc": 0.0, "f1": 0.0, "precision": 0.0, "recall": 0.0}
    n = labels.size
    n_train = int(round(n * train_ratio))
    for _ in range(repeats):
        perm = rng.permutation(n)
        train_idx, test_idx = perm[:n_train], perm[n_train:]
        # Degenerate single-class splits would crash the classifier; with
        # balanced data and n in the hundreds this is effectively impossible,
        # but reshuffle defensively anyway.
        if labels[train_idx].min() == labels[train_idx].max():
            perm = rng.permutation(n)
            train_idx, test_idx = perm[:n_train], perm[n_train:]
        clf = LogisticRegression().fit(features[train_idx], labels[train_idx])
        scores = clf.predict_proba(features[test_idx])
        preds = clf.predict(features[test_idx])
        truth = labels[test_idx]
        sums["auc"] += auc_score(truth, scores)
        m = binary_metrics(truth, preds)
        sums["f1"] += m["f1"]
        sums["precision"] += m["precision"]
        sums["recall"] += m["recall"]
    return {k: v / repeats for k, v in sums.items()}


def evaluate_all_operators(
    embeddings: np.ndarray,
    data: LinkPredictionData,
    train_ratio: float = 0.5,
    repeats: int = 10,
    rng=None,
) -> dict[str, dict[str, float]]:
    """Tables III-VI layout: ``{operator: {metric: value}}``."""
    rng = ensure_rng(rng)
    return {
        name: evaluate_operator(
            embeddings, data, op, train_ratio=train_ratio, repeats=repeats, rng=rng
        )
        for name, op in OPERATORS.items()
    }
