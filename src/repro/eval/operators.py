"""Binary operators turning two node embeddings into one edge feature
(Table II of the paper).

Each operator encodes a different hypothesis about how linked nodes relate in
the embedding space — e.g. Weighted-L1/L2 succeed exactly when linked nodes
are *close*, which is what EHNA's Euclidean objective optimizes.
"""

from __future__ import annotations

import numpy as np


def mean_op(ex: np.ndarray, ey: np.ndarray) -> np.ndarray:
    """``(e_x + e_y) / 2`` elementwise."""
    return (ex + ey) / 2.0


def hadamard_op(ex: np.ndarray, ey: np.ndarray) -> np.ndarray:
    """``e_x * e_y`` elementwise."""
    return ex * ey


def weighted_l1_op(ex: np.ndarray, ey: np.ndarray) -> np.ndarray:
    """``|e_x - e_y|`` elementwise."""
    return np.abs(ex - ey)


def weighted_l2_op(ex: np.ndarray, ey: np.ndarray) -> np.ndarray:
    """``|e_x - e_y|²`` elementwise."""
    return (ex - ey) ** 2


#: Table II, in paper order.
OPERATORS = {
    "Mean": mean_op,
    "Hadamard": hadamard_op,
    "Weighted-L1": weighted_l1_op,
    "Weighted-L2": weighted_l2_op,
}


def edge_features(embeddings: np.ndarray, pairs: np.ndarray, operator) -> np.ndarray:
    """Apply ``operator`` to the embeddings of each (u, v) pair.

    ``operator`` may be a callable or a Table II name.
    """
    if isinstance(operator, str):
        try:
            operator = OPERATORS[operator]
        except KeyError:
            raise KeyError(
                f"unknown operator {operator!r}; expected one of {list(OPERATORS)}"
            ) from None
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must be an (n, 2) array")
    return operator(embeddings[pairs[:, 0]], embeddings[pairs[:, 1]])
