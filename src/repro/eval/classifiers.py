"""L2-regularized logistic regression (the paper's LIBLINEAR classifier [41]).

LIBLINEAR is unavailable offline; this drop-in solves the identical convex
objective

    min_w  C · Σ log(1 + exp(-ŷ_i (w·x_i + b)))  +  ||w||² / 2

with scipy's L-BFGS, which converges to the same optimum on these feature
sizes (d ≤ a few hundred).  Features are standardized internally so the
regularizer treats all operator outputs comparably.
"""

from __future__ import annotations

import numpy as np

from scipy.optimize import minimize

from repro.utils.validation import check_positive


class LogisticRegression:
    """Binary logistic regression with L2 regularization."""

    def __init__(self, c: float = 1.0, max_iter: int = 200, standardize: bool = True):
        check_positive("c", c)
        check_positive("max_iter", max_iter)
        self.c = c
        self.max_iter = max_iter
        self.standardize = standardize
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def _transform(self, x: np.ndarray) -> np.ndarray:
        if not self.standardize:
            return x
        return (x - self._mu) / self._sigma

    def fit(self, x, y) -> "LogisticRegression":
        """Fit on features ``x`` (n, d) and 0/1 labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2 or x.shape[0] != y.size:
            raise ValueError("x must be (n, d) with one label per row")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be 0/1")
        if self.standardize:
            self._mu = x.mean(axis=0)
            sigma = x.std(axis=0)
            self._sigma = np.where(sigma > 1e-12, sigma, 1.0)
        xt = self._transform(x)
        sign = 2.0 * y - 1.0  # ±1
        n, d = xt.shape

        def objective(params):
            w, b = params[:d], params[d]
            margins = sign * (xt @ w + b)
            # log(1 + exp(-m)) computed stably.
            loss = np.logaddexp(0.0, -margins)
            probs = 1.0 / (1.0 + np.exp(np.clip(margins, -500, 500)))
            grad_m = -probs * sign
            grad_w = self.c * (xt.T @ grad_m) + w
            grad_b = self.c * grad_m.sum()
            value = self.c * loss.sum() + 0.5 * w @ w
            return value, np.concatenate([grad_w, [grad_b]])

        result = minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights = result.x[:d]
        self.bias = float(result.x[d])
        return self

    def decision_function(self, x) -> np.ndarray:
        """Raw margins ``w·x + b``."""
        if self.weights is None:
            raise RuntimeError("call fit() before predicting")
        x = np.asarray(x, dtype=np.float64)
        return self._transform(x) @ self.weights + self.bias

    def predict_proba(self, x) -> np.ndarray:
        """P(y=1 | x)."""
        margins = self.decision_function(x)
        return 1.0 / (1.0 + np.exp(-np.clip(margins, -500, 500)))

    def predict(self, x) -> np.ndarray:
        """Hard 0/1 predictions at the 0.5 threshold."""
        return (self.decision_function(x) >= 0.0).astype(np.int64)
