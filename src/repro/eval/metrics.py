"""Classification metrics used in Tables III-VI: AUC, F1, precision, recall.

Implemented from scratch (no sklearn offline): AUC via the Mann-Whitney
rank statistic with tie correction, the threshold metrics from the confusion
counts.  ``error_reduction`` is the Table III footnote formula from
"Watch your step" [40].
"""

from __future__ import annotations

import numpy as np

from scipy.stats import rankdata


def auc_score(y_true, scores) -> float:
    """Area under the ROC curve via the rank-sum statistic (ties averaged)."""
    y_true = np.asarray(y_true, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ValueError("y_true and scores must be equal-length 1-D arrays")
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both positive and negative examples")
    ranks = rankdata(scores)
    rank_sum = ranks[y_true].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def binary_metrics(y_true, y_pred) -> dict[str, float]:
    """Precision, recall, F1 and accuracy from hard predictions.

    Degenerate denominators (no predicted/true positives) yield 0.0, matching
    the usual convention.
    """
    y_true = np.asarray(y_true, dtype=bool)
    y_pred = np.asarray(y_pred, dtype=bool)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError("y_true and y_pred must be equal-length 1-D arrays")
    tp = int(np.sum(y_true & y_pred))
    fp = int(np.sum(~y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    accuracy = (tp + tn) / y_true.size
    return {
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "accuracy": accuracy,
    }


def error_reduction(best_baseline: float, ours: float) -> float:
    """Relative error reduction ``((1 - them) - (1 - us)) / (1 - them)`` [40].

    Positive when our method beats the baseline; the baseline hitting a
    perfect 1.0 yields 0 reduction by convention (no error left to reduce).
    """
    them_err = 1.0 - best_baseline
    if them_err <= 0:
        return 0.0
    return (ours - best_baseline) / them_err
