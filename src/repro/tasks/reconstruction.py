"""Network reconstruction as a declarative task (Section V.D, Figure 4)."""

from __future__ import annotations

import numpy as np

from repro.eval.reconstruction import reconstruction_precision
from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, TaskData
from repro.utils.validation import check_positive

#: Laptop-scale cutoff grid (the paper's 1e2..1e6, shrunk with the graphs).
DEFAULT_PS = (100, 300, 1000, 3000, 10000)


class ReconstructionTask(Task):
    """Rank node pairs by embedding dot product; measure Precision@P.

    Methods train on the *full* graph (reconstruction probes how well the
    embedding preserves observed structure), so this task shares its fit
    with any other full-graph task.  Metrics are keyed ``"precision@<P>"``.
    """

    name = "reconstruction"

    def __init__(self, ps=DEFAULT_PS, sample_size: int | None = None, repeats: int = 3):
        for p in ps:
            check_positive("P", p)
        check_positive("repeats", repeats)
        self.ps = tuple(int(p) for p in ps)
        self.sample_size = sample_size
        self.repeats = int(repeats)

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        return TaskData(train_graph=graph, payload=None, full_graph=graph)

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        curve = reconstruction_precision(
            model.embeddings(),
            data.train_graph,
            list(self.ps),
            sample_size=self.sample_size,
            repeats=self.repeats,
            rng=rng,
        )
        return {f"precision@{p}": v for p, v in curve.items()}
