"""``python -m repro.tasks`` — run evaluation grids from the shell."""

import sys

from repro.tasks.cli import main

if __name__ == "__main__":
    sys.exit(main())
