"""Node classification: a logistic probe over embeddings, community labels.

A new scenario beyond the paper's Section V (the ROADMAP's
scenario-diversity axis), standard in the temporal-embedding literature:
freeze the trained embedding table, fit a one-vs-rest logistic-regression
probe on a labeled node split, and report accuracy / macro-F1 on the rest.
Labels come from :func:`repro.datasets.generators.community_labels` — the
community structure the dataset generators encode implicitly — or can be
supplied explicitly for external graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.generators import community_labels
from repro.eval.classifiers import LogisticRegression
from repro.eval.metrics import binary_metrics
from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, TaskData
from repro.utils.validation import check_fraction, check_positive


@dataclass
class ClassificationPayload:
    """Labels for every node, fixed for all methods evaluated on a cell."""

    labels: np.ndarray  # (num_nodes,) int64 class ids
    num_classes: int


def one_vs_rest_probe(
    features: np.ndarray,
    labels: np.ndarray,
    train_idx: np.ndarray,
    test_idx: np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Fit one binary LR per class on the train split; argmax on the test.

    Returns the predicted class ids for ``test_idx``.  A class absent from
    the train split fits against all-zero targets and simply scores low.
    """
    margins = np.empty((test_idx.size, num_classes))
    for c in range(num_classes):
        clf = LogisticRegression().fit(
            features[train_idx], (labels[train_idx] == c).astype(np.int64)
        )
        margins[:, c] = clf.decision_function(features[test_idx])
    return np.argmax(margins, axis=1)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> float:
    """Unweighted mean of the per-class binary F1 scores."""
    scores = [
        binary_metrics(y_true == c, y_pred == c)["f1"] for c in range(num_classes)
    ]
    return float(np.mean(scores))


class NodeClassificationTask(Task):
    """Probe community membership from frozen embeddings.

    Trains on the full graph (classification probes the final
    representation, nothing is held out of training), so it shares a fit
    with :class:`~repro.tasks.reconstruction.ReconstructionTask`.
    """

    name = "node_classification"

    def __init__(
        self,
        num_communities: int = 4,
        train_ratio: float = 0.5,
        repeats: int = 5,
        labels: np.ndarray | None = None,
    ):
        check_positive("num_communities", num_communities)
        check_fraction("train_ratio", train_ratio)
        check_positive("repeats", repeats)
        self.num_communities = int(num_communities)
        self.train_ratio = float(train_ratio)
        self.repeats = int(repeats)
        self.labels = None if labels is None else np.asarray(labels, dtype=np.int64)

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        if self.labels is not None:
            labels = self.labels
            if labels.size != graph.num_nodes:
                raise ValueError(
                    f"got {labels.size} labels for {graph.num_nodes} nodes"
                )
        else:
            labels = community_labels(graph, self.num_communities, seed=rng)
        num_classes = max(self.num_communities, int(labels.max()) + 1)
        return TaskData(
            train_graph=graph,
            payload=ClassificationPayload(labels=labels, num_classes=num_classes),
            full_graph=graph,
        )

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        payload: ClassificationPayload = data.payload
        features = model.embeddings()
        n = payload.labels.size
        n_train = max(int(round(n * self.train_ratio)), payload.num_classes)
        acc_sum = f1_sum = 0.0
        for _ in range(self.repeats):
            perm = rng.permutation(n)
            train_idx, test_idx = perm[:n_train], perm[n_train:]
            preds = one_vs_rest_probe(
                features, payload.labels, train_idx, test_idx, payload.num_classes
            )
            truth = payload.labels[test_idx]
            acc_sum += float(np.mean(preds == truth))
            f1_sum += macro_f1(truth, preds, payload.num_classes)
        return {
            "accuracy": acc_sum / self.repeats,
            "macro_f1": f1_sum / self.repeats,
        }
