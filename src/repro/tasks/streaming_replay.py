"""Streaming replay: prequential evaluation through the online service.

Replays the held-out suffix of a dataset through
:class:`~repro.stream.service.OnlineService` in arrival order, scoring each
micro-batch *before* ingesting it — the classic test-then-train (prequential)
protocol for streams.  Every held event ``(u, v, t)`` becomes a ranking
query at its own timestamp, answered by whatever the service has absorbed
so far, so the metric measures the model **as an online system**: early
queries see a stale model, later ones benefit from incremental absorption.

Alongside ranking quality (MRR), the task reports the service's operational
counters — sustained ingest events/sec, encode p50/p99 latency, absorb
count — making the streaming SLO part of the result table.

The Runner's cached fit is never touched: ``evaluate`` clones the trained
model through a ``save``/``load`` round-trip in a temporary directory and
streams into the clone, so a later task sharing the same ``fit_key`` (link
prediction, temporal ranking) still sees the pristine batch-trained model.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.base import EmbeddingMethod
from repro.graph.temporal_graph import TemporalGraph
from repro.stream.loader import EventStreamLoader
from repro.stream.service import OnlineService
from repro.tasks.base import Task, TaskData
from repro.utils.validation import check_fraction, check_positive


@dataclass
class ReplayPayload:
    """The held-out suffix to stream, as edge ids into the full graph."""

    held: np.ndarray


class StreamingReplayTask(Task):
    """Test-then-train replay of the held-out suffix through a service."""

    name = "streaming_replay"

    def __init__(
        self,
        fraction: float = 0.2,
        batch_size: int = 50,
        num_candidates: int = 10,
        max_queries: int = 20,
        train_every: int = 1,
        epochs: int = 1,
        compact_every: int = 4096,
    ):
        check_fraction("fraction", fraction)
        check_positive("batch_size", batch_size)
        check_positive("num_candidates", num_candidates)
        check_positive("max_queries", max_queries)
        check_positive("train_every", train_every)
        check_positive("epochs", epochs)
        check_positive("compact_every", compact_every)
        self.fraction = float(fraction)
        self.batch_size = int(batch_size)
        self.num_candidates = int(num_candidates)
        self.max_queries = int(max_queries)
        self.train_every = int(train_every)
        self.epochs = int(epochs)
        self.compact_every = int(compact_every)

    @property
    def fit_key(self):
        # The link-prediction holdout split: one batch fit serves this task,
        # link prediction and temporal ranking alike.
        return ("holdout", self.fraction)

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        train_graph, held = graph.split_recent(self.fraction)
        return TaskData(
            train_graph=train_graph,
            payload=ReplayPayload(held=np.asarray(held, dtype=np.int64)),
            full_graph=graph,
        )

    @staticmethod
    def _clone(model: EmbeddingMethod) -> EmbeddingMethod:
        """A fully independent copy of a trained model (save/load round-trip),
        so streaming into it can't mutate the Runner's cached fit."""
        with tempfile.TemporaryDirectory() as tmp:
            path = model.save(Path(tmp) / "model.npz")
            return type(model).load(path)

    def _rank_batch(
        self,
        service: OnlineService,
        batch,
        servable: int,
        quota: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Reciprocal ranks for up to ``quota`` queries drawn from ``batch``.

        Only events whose endpoints the model can already serve (node id
        below ``servable``) are eligible — nodes first seen mid-stream only
        become queryable after an absorb grows the embedding table.
        """
        eligible = np.flatnonzero(
            (batch.src < servable) & (batch.dst < servable)
        )
        if eligible.size == 0 or quota <= 0:
            return np.empty(0)
        if eligible.size > quota:
            eligible = np.sort(rng.choice(eligible, size=quota, replace=False))
        sources = batch.src[eligible]
        positives = batch.dst[eligible]
        anchors = batch.time[eligible].astype(np.float64)

        cands = np.empty((eligible.size, self.num_candidates), dtype=np.int64)
        for i, (u, v) in enumerate(zip(sources, positives)):
            mask = np.ones(servable, dtype=bool)
            mask[u] = mask[v] = False
            pool = np.flatnonzero(mask)
            if pool.size < self.num_candidates:
                raise RuntimeError(
                    f"cannot rank against {self.num_candidates} candidates "
                    f"with only {servable} servable nodes; lower num_candidates"
                )
            cands[i] = np.sort(
                rng.choice(pool, self.num_candidates, replace=False)
            )

        q, c = cands.shape
        nodes = np.concatenate([sources, positives, cands.ravel()])
        at = np.concatenate([anchors, anchors, np.repeat(anchors, c)])
        emb = service.encode(nodes, at=at.tolist())
        src_emb, pos_emb = emb[:q], emb[q : 2 * q]
        cand_emb = emb[2 * q :].reshape(q, c, -1)
        pos_score = np.sum(src_emb * pos_emb, axis=1)
        cand_score = np.einsum("qd,qcd->qc", src_emb, cand_emb)
        better = (cand_score > pos_score[:, None]).sum(axis=1)
        ties = (cand_score == pos_score[:, None]).sum(axis=1)
        return 1.0 / (1.0 + better + 0.5 * ties)

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        payload: ReplayPayload = data.payload
        full = data.full_graph
        clone = self._clone(model)
        service = OnlineService(
            clone,
            compact_every=self.compact_every,
            train_every=self.train_every,
            epochs=self.epochs,
        )
        loader = EventStreamLoader.from_graph(
            full, payload.held, batch_size=self.batch_size
        )
        quota_per_batch = max(1, -(-self.max_queries // max(len(loader), 1)))

        ranks: list[np.ndarray] = []
        queries = 0
        servable = data.train_graph.num_nodes
        for batch in loader:
            # Test first: score this batch against the pre-ingest model ...
            rr = self._rank_batch(
                service, batch, servable, min(quota_per_batch, self.max_queries - queries), rng
            )
            ranks.append(rr)
            queries += rr.size
            # ... then train: ingest (auto-absorbs every train_every batches).
            service.ingest(batch)
            servable = clone.graph.num_nodes if service.staleness == 0 else servable
        service.absorb()

        stats = service.stats()
        rr = np.concatenate(ranks) if ranks else np.empty(0)
        return {
            "mrr": float(rr.mean()) if rr.size else 0.0,
            "queries": float(rr.size),
            "events_per_sec": float(stats["ingest_events_per_sec"]),
            "encode_p50_ms": float(stats["encode_p50_ms"]),
            "encode_p99_ms": float(stats["encode_p99_ms"]),
            "absorbs": float(stats["absorbs"]),
        }
