"""Pure-efficiency task: train, measure nothing but the Runner's timers.

Table VIII is a timing study — its "metric" is the per-cell ``fit_seconds``
the Runner captures for every cell anyway.  This task contributes an empty
metric dict and exists so an efficiency grid is expressible in the same
(datasets × methods × tasks) vocabulary as the accuracy tables.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, TaskData


class FitTimingTask(Task):
    """Fit on the full graph; report no metrics (timing rides on the cell)."""

    name = "fit_timing"

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        return TaskData(train_graph=graph, payload=None, full_graph=graph)

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        return {}
