"""The task protocol: declarative evaluation scenarios over trained models.

Protocol v2 (``repro.base``) made every *method* uniform; this module does
the same for *tasks*.  A :class:`Task` is a declarative description of one
evaluation scenario from Section V — what to hold out, what to measure —
split into two phases so the :class:`~repro.tasks.runner.Runner` can cache
the expensive part between them:

- ``prepare(graph, rng) -> TaskData`` derives the training graph and any
  held-out evaluation payload from a dataset graph (once per
  dataset × task);
- ``evaluate(model, data, rng) -> {metric: value}`` scores a *trained*
  model against the prepared data (once per dataset × task × method).

Tasks never call ``fit`` themselves.  The Runner owns training, keyed by
:attr:`Task.fit_key` — a hashable description of how ``prepare`` derives
its training graph — so any two tasks with equal ``fit_key`` (e.g. link
prediction and temporal ranking over the same 20% holdout) share one
trained model per (method, dataset) instead of refitting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Hashable

import numpy as np

from repro.base import EmbeddingMethod
from repro.graph.temporal_graph import TemporalGraph


@dataclass
class TaskData:
    """Output of :meth:`Task.prepare`.

    ``train_graph`` is what the Runner fits methods on; ``payload`` holds
    whatever the task's ``evaluate`` needs (held-out pairs, labels, ranking
    queries, ...) and is opaque to the Runner.
    """

    train_graph: TemporalGraph
    payload: Any = None
    full_graph: TemporalGraph | None = field(default=None, repr=False)


class Task(abc.ABC):
    """One evaluation scenario (see module docstring for the lifecycle)."""

    #: Registry/CLI identifier and the label used in result tables.
    name: str = "task"

    @property
    def fit_key(self) -> Hashable:
        """Hashable description of how ``prepare`` derives its training graph.

        Two tasks returning equal keys MUST produce identical
        ``TaskData.train_graph`` from the same dataset graph — that is the
        contract that lets the Runner reuse one trained model across them.
        The default is the full input graph (no holdout).
        """
        return ("full",)

    @abc.abstractmethod
    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        """Derive the training graph and evaluation payload from ``graph``."""

    @abc.abstractmethod
    def evaluate(
        self, model: EmbeddingMethod, data: TaskData, rng: np.random.Generator
    ) -> dict[str, float]:
        """Score a trained ``model`` against ``data``; flat metric dict."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def check_same_split(task: Task, data: TaskData, cached: TemporalGraph) -> None:
    """Guard the ``fit_key`` contract: a task claiming a cached fit must have
    prepared the very graph that fit was trained on."""
    if (
        data.train_graph.num_edges != cached.num_edges
        or data.train_graph.num_nodes != cached.num_nodes
    ):
        raise RuntimeError(
            f"task {task.name!r} declares fit_key {task.fit_key!r} but prepared "
            "a different training graph than the cached fit for that key; "
            "fix the task's fit_key property"
        )
