"""Task API v2: declarative evaluation tasks, a caching Runner, structured results.

The evaluation counterpart of the v2 method protocol: Section V's
(dataset × method × task) grid expressed as data instead of hand-rolled
drivers.

- :class:`~repro.tasks.base.Task` — the two-phase protocol
  (``prepare(graph, rng)`` / ``evaluate(model, data, rng)``);
- four scenarios: :class:`LinkPredictionTask`, :class:`ReconstructionTask`
  (the paper's Tables III-VI and Figure 4), plus
  :class:`NodeClassificationTask` (community-label probe) and
  :class:`TemporalRankingTask` (time-anchored future-neighbor ranking —
  the first consumer of ``encode(nodes, at=times)``),
  :class:`StreamingReplayTask` (prequential replay through the online
  service — see ``repro.stream``), and
  :class:`FitTimingTask` for pure efficiency grids (Table VIII);
- :class:`Runner` — executes a grid with one ``fit()`` per
  (method, dataset, fit-key), per-cell timing capture and per-cell RNG
  isolation;
- :class:`ResultTable` — the one structured result shape
  (``to_markdown()`` / ``to_json()``, uniform error-reduction column).

Any grid cell is runnable from the shell: ``python -m repro.tasks --help``.
"""

from repro.tasks.base import Task, TaskData
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.node_classification import NodeClassificationTask
from repro.tasks.reconstruction import ReconstructionTask
from repro.tasks.results import RESULT_SCHEMA, Cell, ResultTable
from repro.tasks.runner import Runner, cell_rng
from repro.tasks.streaming_replay import StreamingReplayTask
from repro.tasks.temporal_ranking import TemporalRankingTask
from repro.tasks.timing import FitTimingTask

#: CLI/registry names for every built-in task type.
TASK_TYPES = {
    LinkPredictionTask.name: LinkPredictionTask,
    ReconstructionTask.name: ReconstructionTask,
    NodeClassificationTask.name: NodeClassificationTask,
    TemporalRankingTask.name: TemporalRankingTask,
    StreamingReplayTask.name: StreamingReplayTask,
    FitTimingTask.name: FitTimingTask,
}

__all__ = [
    "Task",
    "TaskData",
    "LinkPredictionTask",
    "ReconstructionTask",
    "NodeClassificationTask",
    "TemporalRankingTask",
    "StreamingReplayTask",
    "FitTimingTask",
    "Runner",
    "cell_rng",
    "ResultTable",
    "Cell",
    "RESULT_SCHEMA",
    "TASK_TYPES",
]
