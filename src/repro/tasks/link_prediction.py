"""Future link prediction as a declarative task (Tables III-VI).

A thin task-protocol wrapper over :mod:`repro.eval.link_prediction`: the
protocol, operators and metrics are exactly the legacy harness's, so a
Runner cell in shared-RNG mode consumes the generator stream in the same
order as the pre-Runner drivers and reproduces their numbers bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.eval.link_prediction import (
    evaluate_all_operators,
    evaluate_operator,
    prepare_link_prediction,
)
from repro.eval.operators import OPERATORS
from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, TaskData
from repro.utils.validation import check_fraction, check_positive


class LinkPredictionTask(Task):
    """Predict held-out future links from embeddings (Section V.E).

    Metrics are keyed ``"<operator>/<metric>"`` (e.g. ``"Hadamard/auc"``)
    so one flat dict carries the whole Table III-VI block for a method.
    """

    name = "link_prediction"

    def __init__(
        self,
        fraction: float = 0.2,
        operators=None,
        repeats: int = 10,
        train_ratio: float = 0.5,
    ):
        check_fraction("fraction", fraction)
        check_positive("repeats", repeats)
        check_fraction("train_ratio", train_ratio)
        if operators is not None:
            unknown = [op for op in operators if op not in OPERATORS]
            if unknown:
                raise ValueError(
                    f"unknown operators {unknown}; expected among {list(OPERATORS)}"
                )
        self.fraction = float(fraction)
        self.operators = None if operators is None else tuple(operators)
        self.repeats = int(repeats)
        self.train_ratio = float(train_ratio)

    @property
    def fit_key(self):
        return ("holdout", self.fraction)

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        data = prepare_link_prediction(graph, fraction=self.fraction, rng=rng)
        return TaskData(
            train_graph=data.train_graph, payload=data, full_graph=graph
        )

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        embeddings = model.embeddings()
        if self.operators is None:
            # The all-operators helper iterates OPERATORS in Table II order,
            # which is also the legacy drivers' rng-consumption order.
            per_op = evaluate_all_operators(
                embeddings,
                data.payload,
                train_ratio=self.train_ratio,
                repeats=self.repeats,
                rng=rng,
            )
        else:
            per_op = {
                op: evaluate_operator(
                    embeddings,
                    data.payload,
                    op,
                    train_ratio=self.train_ratio,
                    repeats=self.repeats,
                    rng=rng,
                )
                for op in self.operators
            }
        return {
            f"{op}/{metric}": value
            for op, metrics in per_op.items()
            for metric, value in metrics.items()
        }
