"""The grid Runner: (datasets × methods × tasks) with a trained-model cache.

The paper's Section V is one big grid; the legacy drivers walked fragments
of it with a fresh ``fit()`` per table.  The Runner executes any rectangle
of the grid with

- **one fit per (method, dataset, fit_key)** — tasks declaring the same
  :attr:`~repro.tasks.base.Task.fit_key` (e.g. link prediction and temporal
  ranking over the same holdout) reuse one trained model instead of
  refitting per table;
- **per-cell timing capture** — every cell records its fit (cache-aware)
  and evaluation wall-clock;
- **isolated randomness** (``rng_mode="cell"``, the default): every
  prepare/evaluate gets a child generator derived from ``(seed, dataset,
  task, method)``, so a cell's numbers do not depend on which other cells
  ran before it — the RNG-sharing bug the legacy drivers had;
- **legacy randomness** (``rng_mode="shared"``): one generator threads
  through the grid in execution order, bit-reproducing the pre-Runner
  drivers at a fixed seed.  The experiment adapters use this so the
  published tables keep their numbers.
"""

from __future__ import annotations

import hashlib
import inspect
import sys
from collections.abc import Mapping

import numpy as np

from repro.datasets.registry import load
from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, check_same_split
from repro.tasks.results import Cell, ResultTable
from repro.utils.rng import ensure_rng
from repro.utils.timers import Timer

#: Supported randomness policies.
RNG_MODES = ("cell", "shared")


def cell_rng(seed: int, *labels: str) -> np.random.Generator:
    """A child generator unique to ``(seed, *labels)``.

    Independent streams keyed by *names*, not grid positions: adding or
    reordering datasets/methods/tasks leaves every other cell's stream
    untouched.  The labels are hashed (sha256) into the seed sequence
    because Python's own ``hash`` is salted per process.
    """
    digest = hashlib.sha256("\x1f".join(labels).encode()).digest()[:8]
    child = int.from_bytes(digest, "little")
    return np.random.default_rng(np.random.SeedSequence([int(seed), child]))


def _construct(factory, graph: TemporalGraph):
    """Call a method factory, passing the training graph only when the
    factory *requires* exactly one positional argument (e.g. Table VIII's
    LINE budget depends on the edge count).  Zero-arg factories and classes
    whose parameters all have defaults are called bare."""
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return factory()
    required = [
        p
        for p in sig.parameters.values()
        if p.default is inspect.Parameter.empty
        and p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    if len(required) == 1:
        return factory(graph)
    return factory()


class Runner:
    """Execute a (datasets × methods × tasks) grid; return a ResultTable."""

    def __init__(
        self,
        datasets,
        methods: Mapping[str, callable],
        tasks,
        *,
        scale: float = 0.3,
        seed: int = 0,
        rng_mode: str = "cell",
        verbose: bool = False,
    ):
        """
        Parameters
        ----------
        datasets:
            Registry names (loaded via ``repro.datasets.load(name, scale,
            seed)``) or a mapping ``{name: TemporalGraph}`` of pre-built
            graphs.
        methods:
            ``{name: factory}``; a factory returns a fresh, unfitted
            :class:`~repro.base.EmbeddingMethod`.  A factory requiring one
            positional argument receives the training graph.
        tasks:
            :class:`~repro.tasks.base.Task` instances; task names must be
            unique within a grid.
        rng_mode:
            ``"cell"`` (isolated per-cell child generators, the default) or
            ``"shared"`` (one stream threaded in execution order, matching
            the legacy drivers bit for bit).
        """
        if rng_mode not in RNG_MODES:
            raise ValueError(f"rng_mode must be one of {RNG_MODES}, got {rng_mode!r}")
        if isinstance(datasets, Mapping):
            self._graphs = dict(datasets)
            self.datasets = list(self._graphs)
        else:
            self._graphs = None
            self.datasets = [str(d) for d in datasets]
        self.methods = dict(methods)
        self.tasks = list(tasks)
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"task names must be unique within a grid, got {names}")
        self.scale = float(scale)
        self.seed = 0 if seed is None else int(seed)
        self.rng_mode = rng_mode
        self.verbose = verbose

    # ------------------------------------------------------------------
    def _load_graph(self, name: str) -> TemporalGraph:
        if self._graphs is not None:
            return self._graphs[name]
        return load(name, scale=self.scale, seed=self.seed)

    def _rng_for(self, shared, *labels) -> np.random.Generator:
        if self.rng_mode == "shared":
            return shared
        return cell_rng(self.seed, *labels)

    def _say(self, message: str) -> None:
        # Progress goes to stderr: the CLI pipes stdout (markdown/JSON).
        if self.verbose:
            print(f"[runner] {message}", file=sys.stderr)

    # ------------------------------------------------------------------
    def run(self) -> ResultTable:
        """Walk the grid (datasets outer, then tasks, then methods)."""
        shared = ensure_rng(self.seed) if self.rng_mode == "shared" else None
        cells: list[Cell] = []
        for ds_name in self.datasets:
            graph = self._load_graph(ds_name)
            fit_cache: dict = {}  # (method, fit_key) -> (model, seconds)
            for task in self.tasks:
                prep_rng = self._rng_for(shared, "prepare", ds_name, task.name)
                data = task.prepare(graph, prep_rng)
                for m_name, factory in self.methods.items():
                    key = (m_name, task.fit_key)
                    cached = key in fit_cache
                    if cached:
                        model, fit_seconds = fit_cache[key]
                        check_same_split(task, data, model.graph)
                    else:
                        model = _construct(factory, data.train_graph)
                        with Timer() as t:
                            model.fit(data.train_graph)
                        fit_seconds = t.elapsed
                        fit_cache[key] = (model, fit_seconds)
                    eval_rng = self._rng_for(
                        shared, "evaluate", ds_name, task.name, m_name
                    )
                    with Timer() as t:
                        metrics = task.evaluate(model, data, eval_rng)
                    cells.append(
                        Cell(
                            dataset=ds_name,
                            method=m_name,
                            task=task.name,
                            metrics=metrics,
                            fit_seconds=fit_seconds,
                            eval_seconds=t.elapsed,
                            fit_cached=cached,
                        )
                    )
                    self._say(
                        f"{ds_name} × {task.name} × {m_name}: "
                        f"fit {fit_seconds:.2f}s"
                        f"{' (cached)' if cached else ''}, "
                        f"eval {t.elapsed:.2f}s"
                    )
        return ResultTable(cells)
