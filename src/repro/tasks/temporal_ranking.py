"""Temporal ranking: rank true future neighbors at held-out event times.

The one task that genuinely exercises the v2 time-anchored surface,
``encode(nodes, at=times)``: every query embeds its source and candidates
*as of the held-out event's timestamp*, so a time-aware method (EHNA) gets
to aggregate exactly the history available at prediction time, while
table-serving baselines answer with their frozen vectors (their documented
time-invariance).  Nothing in the legacy harnesses evaluated this surface.

Protocol: hold out the most recent ``fraction`` of events (the
link-prediction split, so the fit is shared with
:class:`~repro.tasks.link_prediction.LinkPredictionTask`); each held event
``(u, v, t)`` becomes a query ranking the true future neighbor ``v``
against ``num_candidates`` sampled non-neighbors of ``u``, all scored by
dot product of anchored embeddings.  Reported: MRR and Hits@k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.tasks.base import Task, TaskData
from repro.utils.validation import check_fraction, check_positive


@dataclass
class RankingPayload:
    """Prepared ranking queries, fixed for all methods on a cell."""

    sources: np.ndarray  # (q,) query source nodes
    anchors: np.ndarray  # (q,) event times (the encode() anchors)
    positives: np.ndarray  # (q,) the true future neighbor
    candidates: np.ndarray  # (q, C) sampled non-neighbor distractors


class TemporalRankingTask(Task):
    """Rank the true future neighbor at the moment the event happened."""

    name = "temporal_ranking"

    def __init__(
        self,
        fraction: float = 0.2,
        num_candidates: int = 20,
        max_queries: int = 40,
        ks: tuple[int, ...] = (1, 5),
    ):
        check_fraction("fraction", fraction)
        check_positive("num_candidates", num_candidates)
        check_positive("max_queries", max_queries)
        for k in ks:
            check_positive("k", k)
        self.fraction = float(fraction)
        self.num_candidates = int(num_candidates)
        self.max_queries = int(max_queries)
        self.ks = tuple(int(k) for k in ks)

    @property
    def fit_key(self):
        return ("holdout", self.fraction)

    def _sample_candidates(
        self,
        train_graph: TemporalGraph,
        u: int,
        v: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """``num_candidates`` distinct distractor nodes for query ``(u, v)``.

        Preferred distractors are neither endpoint nor a training-time
        neighbor of ``u``; when a hub (or a tiny graph) leaves too few of
        those, remaining slots are topped up with ``u``'s own training
        neighbors — still never ``u`` or the true answer ``v`` — so the
        query stays well-posed at every scale.
        """
        n = train_graph.num_nodes
        mask = np.ones(n, dtype=bool)
        mask[u] = mask[v] = False
        mask[train_graph.neighbors(u)] = False
        eligible = np.flatnonzero(mask)
        if eligible.size >= self.num_candidates:
            return np.sort(rng.choice(eligible, self.num_candidates, replace=False))
        mask[train_graph.neighbors(u)] = True
        mask[u] = mask[v] = False
        fallback = np.flatnonzero(mask)
        if fallback.size < self.num_candidates:
            raise RuntimeError(
                f"cannot rank against {self.num_candidates} candidates in a "
                f"{n}-node graph; lower num_candidates"
            )
        extra = np.setdiff1d(fallback, eligible)
        top_up = rng.choice(
            extra, self.num_candidates - eligible.size, replace=False
        )
        return np.sort(np.concatenate([eligible, top_up]))

    def prepare(self, graph: TemporalGraph, rng: np.random.Generator) -> TaskData:
        train_graph, held = graph.split_recent(self.fraction)
        if held.size > self.max_queries:
            held = np.sort(rng.choice(held, size=self.max_queries, replace=False))
        sources = graph.src[held].astype(np.int64)
        positives = graph.dst[held].astype(np.int64)
        anchors = graph.time[held].astype(np.float64)
        candidates = np.stack(
            [
                self._sample_candidates(train_graph, int(u), int(v), rng)
                for u, v in zip(sources, positives)
            ]
        )
        return TaskData(
            train_graph=train_graph,
            payload=RankingPayload(
                sources=sources,
                anchors=anchors,
                positives=positives,
                candidates=candidates,
            ),
            full_graph=graph,
        )

    def evaluate(self, model, data: TaskData, rng) -> dict[str, float]:
        p: RankingPayload = data.payload
        q, c = p.candidates.shape
        # One batched, per-node-anchored encode call covers every query's
        # source, its true neighbor and all its distractors.
        nodes = np.concatenate([p.sources, p.positives, p.candidates.ravel()])
        anchors = np.concatenate([p.anchors, p.anchors, np.repeat(p.anchors, c)])
        emb = model.encode(nodes, at=anchors.tolist())
        src_emb = emb[:q]
        pos_emb = emb[q : 2 * q]
        cand_emb = emb[2 * q :].reshape(q, c, -1)

        pos_score = np.sum(src_emb * pos_emb, axis=1)
        cand_score = np.einsum("qd,qcd->qc", src_emb, cand_emb)
        # Average-rank tie handling keeps the metric deterministic without
        # favoring either side of an exact score collision.
        better = (cand_score > pos_score[:, None]).sum(axis=1)
        ties = (cand_score == pos_score[:, None]).sum(axis=1)
        rank = 1.0 + better + 0.5 * ties

        out = {"mrr": float(np.mean(1.0 / rank))}
        for k in self.ks:
            out[f"hits@{k}"] = float(np.mean(rank <= k))
        return out
