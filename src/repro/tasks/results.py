"""Structured results for task grids: one schema for every table.

The legacy drivers each invented a nested-dict shape (operator→metric→method,
dataset→method→P, variant→dataset…).  A :class:`ResultTable` is the single
shape the Runner emits: a flat list of :class:`Cell` records — one per
(dataset × method × task) — carrying the metric dict plus the Runner's
timing capture.  Renderers (`to_markdown`, `to_json`) and the uniform
error-reduction column live here; the legacy drivers reshape cells back
into their historical layouts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.eval.metrics import error_reduction

#: Versioned identifier embedded in every JSON export.
RESULT_SCHEMA = "repro.tasks/result-table@1"


@dataclass
class Cell:
    """One grid cell: a method evaluated on a task over a dataset."""

    dataset: str
    method: str
    task: str
    metrics: dict[str, float] = field(default_factory=dict)
    fit_seconds: float = 0.0
    eval_seconds: float = 0.0
    fit_cached: bool = False


def _ordered_unique(items) -> list:
    seen = {}
    for item in items:
        seen.setdefault(item, None)
    return list(seen)


class ResultTable:
    """An immutable-ish collection of grid cells with uniform renderers."""

    def __init__(self, cells):
        self.cells: list[Cell] = list(cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    # axes and lookups
    # ------------------------------------------------------------------
    def datasets(self) -> list[str]:
        """Dataset names in first-appearance order."""
        return _ordered_unique(c.dataset for c in self.cells)

    def methods(self) -> list[str]:
        """Method names in first-appearance order."""
        return _ordered_unique(c.method for c in self.cells)

    def tasks(self) -> list[str]:
        """Task names in first-appearance order."""
        return _ordered_unique(c.task for c in self.cells)

    def cell(self, dataset: str, method: str, task: str) -> Cell:
        """The unique cell at the given coordinates (KeyError if absent)."""
        for c in self.cells:
            if c.dataset == dataset and c.method == method and c.task == task:
                return c
        raise KeyError(f"no cell for ({dataset!r}, {method!r}, {task!r})")

    def metric_names(self, dataset: str, task: str) -> list[str]:
        """Metric keys seen on (dataset, task) cells, first-appearance order."""
        return _ordered_unique(
            name
            for c in self.cells
            if c.dataset == dataset and c.task == task
            for name in c.metrics
        )

    def row(self, dataset: str, task: str, metric: str) -> dict[str, float]:
        """``{method: value}`` for one metric of one (dataset, task) block."""
        return {
            c.method: c.metrics[metric]
            for c in self.cells
            if c.dataset == dataset and c.task == task and metric in c.metrics
        }

    def num_fits(self) -> int:
        """How many actual ``fit()`` calls produced this table (cache misses)."""
        return sum(not c.fit_cached for c in self.cells)

    # ------------------------------------------------------------------
    # the uniform error-reduction column
    # ------------------------------------------------------------------
    def reduction(
        self, dataset: str, task: str, metric: str, target: str = "EHNA"
    ) -> float | None:
        """Error reduction of ``target`` vs the best other method on a row.

        The Table III footnote formula, applied uniformly to any
        higher-is-better metric; None when the row lacks the target or any
        baseline.
        """
        row = self.row(dataset, task, metric)
        if target not in row:
            return None
        baselines = [v for m, v in row.items() if m != target]
        if not baselines:
            return None
        return error_reduction(max(baselines), row[target])

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def to_markdown(self, target: str = "EHNA", timings: bool = True) -> str:
        """GitHub-flavored pipe tables, one block per (dataset, task)."""
        lines: list[str] = []
        for dataset in self.datasets():
            for task in self.tasks():
                metrics = self.metric_names(dataset, task)
                if not metrics:
                    continue
                methods = _ordered_unique(
                    c.method
                    for c in self.cells
                    if c.dataset == dataset and c.task == task
                )
                lines.append(f"### {dataset} · {task}")
                lines.append("")
                header = ["metric", *methods]
                with_er = any(
                    self.reduction(dataset, task, m, target) is not None
                    for m in metrics
                )
                if with_er:
                    header.append("err.red.")
                lines.append("| " + " | ".join(header) + " |")
                lines.append("|" + "---|" * len(header))
                for metric in metrics:
                    row = self.row(dataset, task, metric)
                    cells = [metric] + [
                        f"{row[m]:.4f}" if m in row else "—" for m in methods
                    ]
                    if with_er:
                        er = self.reduction(dataset, task, metric, target)
                        cells.append(f"{100 * er:+.1f}%" if er is not None else "—")
                    lines.append("| " + " | ".join(cells) + " |")
                lines.append("")
        if timings and self.cells:
            lines.append("### timings")
            lines.append("")
            lines.append("| dataset | task | method | fit (s) | cached | eval (s) |")
            lines.append("|---|---|---|---|---|---|")
            for c in self.cells:
                lines.append(
                    f"| {c.dataset} | {c.task} | {c.method} "
                    f"| {c.fit_seconds:.3f} | {'yes' if c.fit_cached else 'no'} "
                    f"| {c.eval_seconds:.3f} |"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def to_json(self, indent: int | None = None) -> str:
        """Versioned JSON: ``{"schema": ..., "cells": [...]}``."""
        payload = {
            "schema": RESULT_SCHEMA,
            "cells": [
                {
                    "dataset": c.dataset,
                    "method": c.method,
                    "task": c.task,
                    "metrics": dict(c.metrics),
                    "fit_seconds": c.fit_seconds,
                    "eval_seconds": c.eval_seconds,
                    "fit_cached": c.fit_cached,
                }
                for c in self.cells
            ],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Inverse of :meth:`to_json` (schema-checked)."""
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(
                f"unsupported result schema {schema!r}; expected {RESULT_SCHEMA!r}"
            )
        return cls(Cell(**cell) for cell in payload["cells"])

    def __repr__(self) -> str:
        return (
            f"ResultTable(cells={len(self.cells)}, datasets={self.datasets()}, "
            f"methods={self.methods()}, tasks={self.tasks()})"
        )
