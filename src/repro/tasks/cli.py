"""Command-line entry point: run any grid cell from the shell.

``python -m repro.tasks --datasets digg --methods EHNA LINE --tasks
link_prediction`` executes the requested (datasets × methods × tasks)
rectangle through the caching Runner and prints a markdown or JSON
:class:`~repro.tasks.results.ResultTable`.  ``make tables`` runs the
smallest-scale grid through this interface.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datasets.registry import UnknownDatasetError, available
from repro.experiments.methods import default_methods
from repro.tasks import TASK_TYPES, Runner
from repro.tasks.runner import RNG_MODES

#: Per-task constructor kwargs derived from the CLI's --repeats knob.
_REPEAT_KWARG = {
    "link_prediction": "repeats",
    "reconstruction": "repeats",
    "node_classification": "repeats",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tasks",
        description=(
            "Run a (datasets × methods × tasks) evaluation grid with one "
            "fit() per method/dataset and structured results."
        ),
    )
    parser.add_argument(
        "--datasets", nargs="+", default=["digg"], metavar="NAME",
        help=f"dataset names (registry: {', '.join(available())})",
    )
    parser.add_argument(
        "--methods", nargs="+", default=["EHNA"], metavar="NAME",
        help="method names from the Section V roster "
             "(LINE, Node2Vec, CTDNE, HTNE, EHNA)",
    )
    parser.add_argument(
        "--tasks", nargs="+", default=["link_prediction"], metavar="NAME",
        choices=sorted(TASK_TYPES), help=f"task names: {', '.join(sorted(TASK_TYPES))}",
    )
    parser.add_argument("--scale", type=float, default=0.3,
                        help="dataset scale multiplier (default 0.3)")
    parser.add_argument("--seed", type=int, default=0, help="grid seed (default 0)")
    parser.add_argument("--dim", type=int, default=32,
                        help="embedding dimension (default 32)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="classifier-split repeats per eval (default 3)")
    parser.add_argument("--candidates", type=int, default=20,
                        help="temporal_ranking distractors per query (default 20)")
    parser.add_argument("--queries", type=int, default=40,
                        help="temporal_ranking max held-out queries (default 40)")
    parser.add_argument("--ehna-epochs", type=int, default=3,
                        help="EHNA training epochs (default 3)")
    parser.add_argument("--sgns-epochs", type=int, default=2,
                        help="skip-gram baseline epochs (default 2)")
    parser.add_argument("--rng-mode", choices=RNG_MODES, default="cell",
                        help="per-cell isolated RNG (default) or the legacy "
                             "shared stream")
    parser.add_argument("--format", choices=("markdown", "json"),
                        default="markdown", help="output format")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the rendered table to this file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress lines")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    roster = default_methods(
        dim=args.dim,
        seed=args.seed,
        ehna_epochs=args.ehna_epochs,
        sgns_epochs=args.sgns_epochs,
    )
    unknown = [m for m in args.methods if m not in roster]
    if unknown:
        print(
            f"error: unknown methods {unknown}; expected among {list(roster)}",
            file=sys.stderr,
        )
        return 2
    methods = {name: roster[name] for name in args.methods}

    tasks = []
    for name in args.tasks:
        kwargs = {}
        repeat_kwarg = _REPEAT_KWARG.get(name)
        if repeat_kwarg:
            kwargs[repeat_kwarg] = args.repeats
        if name == "temporal_ranking":
            kwargs["num_candidates"] = args.candidates
            kwargs["max_queries"] = args.queries
        if name == "streaming_replay":
            kwargs["max_queries"] = args.queries
        tasks.append(TASK_TYPES[name](**kwargs))

    runner = Runner(
        args.datasets,
        methods,
        tasks,
        scale=args.scale,
        seed=args.seed,
        rng_mode=args.rng_mode,
        verbose=not args.quiet,
    )
    try:
        table = runner.run()
    except UnknownDatasetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rendered = (
        table.to_markdown() if args.format == "markdown" else table.to_json(indent=2)
    )
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.out is not None:
        args.out.write_text(rendered)
        print(f"wrote {args.out}", file=sys.stderr)
    return 0
