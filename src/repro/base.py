"""The common interface all embedding methods implement (protocol v2).

EHNA and every baseline (Node2Vec, CTDNE, LINE, HTNE) expose the same
surface so the evaluation harnesses (network reconstruction, link
prediction, efficiency study) can treat them uniformly — exactly how
Section V compares them "on an equal footing" — and so a trained model can
be *served*: asked for an embedding of any node as of any time, updated
with arriving edges, and persisted to disk.

The v2 lifecycle::

    fit(graph) ──► encode(nodes, at=times)   time-anchored inference
              │    embeddings()              = encode(all, at=last event)
              │
              ├─► partial_fit(edges)         append streamed events, train
              │                              incrementally, stay servable
              │
              └─► save(path) ──► load(path)  versioned npz checkpoint
                                             (config + RNG + parameters)

Subclasses implement ``fit``/``embeddings`` plus four small hooks —
``_config_dict``, ``_state_dict``, ``_load_state_dict`` and
``_apply_partial_fit`` — and inherit the checkpoint plumbing and the
``partial_fit`` graph-extension path from this base class.  Time-invariant
methods (the static and table-producing baselines) inherit the default
``encode``, which documents and implements their semantics: the anchor time
is ignored and the post-training table row is returned.  EHNA overrides
``encode`` to run its aggregator at the requested anchors.
"""

from __future__ import annotations

import abc
from pathlib import Path

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)


def parse_edge_batch(edges):
    """Normalize a streamed-edge batch into ``(src, dst, time, weight)``.

    Two layouts are accepted, disambiguated by type (a 3-edge batch of rows
    would otherwise be indistinguishable from three parallel columns):

    - a **tuple** of parallel column arrays ``(src, dst, time)`` or
      ``(src, dst, time, weight)``;
    - anything else (list, ndarray): a 2-D row matrix of shape ``(n, 3)`` /
      ``(n, 4)`` whose columns are ``u, v, t[, w]``.
    """
    if isinstance(edges, tuple):
        if len(edges) not in (3, 4):
            raise ValueError(
                "a tuple edge batch must be (src, dst, time) or "
                f"(src, dst, time, weight), got {len(edges)} elements"
            )
        src, dst, time = edges[0], edges[1], edges[2]
        weight = edges[3] if len(edges) == 4 else None
        return src, dst, time, weight
    if (
        isinstance(edges, list)
        and len(edges) in (3, 4)
        and all(isinstance(e, np.ndarray) and e.ndim == 1 for e in edges)
    ):
        # A list of 3-4 ndarrays is almost certainly columns mistyped as a
        # list; silently transposing it into "rows" would corrupt the graph
        # whenever the arrays happen to have length 3 or 4.
        raise ValueError(
            "ambiguous edge batch: pass column arrays as a tuple "
            "(src, dst, time[, weight]), or rows as an (n, 3)/(n, 4) matrix"
        )
    arr = np.asarray(edges, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] not in (3, 4):
        raise ValueError(
            "edges must be a (src, dst, time[, weight]) tuple of arrays or an "
            f"(n, 3)/(n, 4) row matrix, got shape {getattr(arr, 'shape', None)}"
        )
    weight = arr[:, 3] if arr.shape[1] == 4 else None
    return arr[:, 0].astype(np.int64), arr[:, 1].astype(np.int64), arr[:, 2], weight


def resolve_anchors(graph: TemporalGraph, nodes: np.ndarray, at):
    """Per-node anchor times for ``encode(nodes, at)``.

    ``at`` may be ``None`` (each node's last event time — the
    ``embeddings()`` anchor; isolated nodes get a missing anchor), a scalar
    applied to every node, or a sequence aligned with ``nodes`` (entries may
    be ``None`` to request the historyless fallback).  Returns a float
    array with ``NaN`` marking missing anchors for the ``None``/scalar
    forms (both resolved in one vectorized pass), or an aligned list for
    the sequence form.
    """
    if at is None:
        return graph.last_event_times(nodes)
    if isinstance(at, (int, float, np.integer, np.floating)):
        return np.full(nodes.size, float(at))
    anchors = list(at)
    if len(anchors) != nodes.size:
        raise ValueError(
            f"at has {len(anchors)} entries for {nodes.size} nodes; pass a "
            "scalar, None, or one anchor per node"
        )
    return [None if t is None else float(t) for t in anchors]


class EmbeddingMethod(abc.ABC):
    """A node-embedding learner over a temporal network (protocol v2)."""

    #: Human-readable name used in result tables.
    name: str = "method"

    #: The graph most recently passed to ``fit`` / produced by
    #: ``partial_fit`` (set by subclasses' ``fit``; ``None`` before).
    graph: TemporalGraph | None = None

    @abc.abstractmethod
    def fit(self, graph: TemporalGraph) -> "EmbeddingMethod":
        """Train on ``graph`` and return self."""

    @abc.abstractmethod
    def embeddings(self) -> np.ndarray:
        """The learned ``(num_nodes, dim)`` embedding matrix."""

    def embedding_of(self, node: int) -> np.ndarray:
        """Convenience accessor for a single node's vector."""
        return self.embeddings()[node]

    # ------------------------------------------------------------------
    # v2: time-anchored inference
    # ------------------------------------------------------------------
    def encode(self, nodes, at=None) -> np.ndarray:
        """Embed ``nodes`` as of anchor time(s) ``at``; returns ``(n, dim)``.

        **Time-invariance note:** this default implementation serves the
        post-training embedding table regardless of ``at`` — correct for the
        static baselines (node2vec, DeepWalk, LINE ignore time entirely)
        and the honest answer for table-producing temporal baselines (CTDNE,
        HTNE), whose training consumed time but whose output is one frozen
        vector per node.  EHNA overrides this to aggregate each node's
        historical neighborhood *up to* ``at``, so the same node yields
        different embeddings at different anchors.
        """
        nodes = np.atleast_1d(np.asarray(nodes, dtype=np.int64))
        # Validate the anchor spec even though the table ignores it, so
        # malformed serving requests fail identically across methods
        # (at=None is trivially valid and skips the per-node resolution).
        if at is not None and self.graph is not None:
            resolve_anchors(self.graph, nodes, at)
        return self.embeddings()[nodes]

    # ------------------------------------------------------------------
    # v2: incremental training
    # ------------------------------------------------------------------
    def partial_fit(
        self, edges=None, num_nodes: int | None = None, epochs: int | None = None
    ) -> "EmbeddingMethod":
        """Append streamed ``edges`` to the graph and train incrementally.

        ``edges`` is parsed by :func:`parse_edge_batch`.  The temporal graph
        is extended (new nodes grow the embedding space), and the method
        runs ``epochs`` incremental training epochs over the *fresh* events
        only — no refit from scratch.  Requires a previous ``fit``.

        ``edges=None`` is the **buffered-graph absorb**: events already
        ingested into ``self.graph`` via
        :meth:`~repro.graph.temporal_graph.TemporalGraph.extend_in_place`
        (the amortized streaming path — see ``repro.stream``) are claimed
        with ``take_fresh()`` and trained on exactly once.  With nothing
        buffered since the last absorb this is a no-op, so a zero-event
        training tick costs nothing and changes nothing.
        """
        if self.graph is None:
            raise RuntimeError("call fit() before partial_fit()")
        if edges is None:
            fresh = self.graph.take_fresh()
            if fresh.size == 0:
                return self
            self._apply_partial_fit(self.graph, fresh, epochs)
            return self
        src, dst, time, weight = parse_edge_batch(edges)
        new_graph, fresh = self.graph.extend(
            src, dst, time, weight, num_nodes=num_nodes
        )
        if fresh.size == 0:
            return self
        self.graph = new_graph  # in place before the hook runs
        self._apply_partial_fit(new_graph, fresh, epochs)
        return self

    def _apply_partial_fit(
        self, graph: TemporalGraph, fresh_edge_ids: np.ndarray, epochs: int | None
    ) -> None:
        """Subclass hook: absorb ``graph`` (the extended network, already
        assigned to ``self.graph``) by training on ``fresh_edge_ids`` and
        updating any graph-derived state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement incremental training"
        )

    # ------------------------------------------------------------------
    # v2: checkpointing
    # ------------------------------------------------------------------
    #: Keys the base class reserves in the checkpoint array namespace.
    _GRAPH_KEYS = ("graph/src", "graph/dst", "graph/time", "graph/weight")

    def _precision_name(self) -> str:
        """The precision-policy name recorded in this method's checkpoints.

        The default reads the conventional ``precision`` attribute the
        baselines carry ("float64" when absent); EHNA overrides it to report
        its config's policy.
        """
        return getattr(self, "precision", None) or "float64"

    def save(self, path, watermark: dict | None = None) -> Path:
        """Persist config, RNG state, graph and parameters to a ``.npz``.

        The archive carries a versioned header (see
        :mod:`repro.utils.checkpoint`) that records the precision policy the
        model was trained under plus a CRC32 checksum per array, and is
        **published atomically** (temp file + ``os.replace``), so a crash
        mid-save leaves the previous checkpoint intact; :meth:`load` refuses
        mismatched versions, failed checksums and precision-inconsistent
        archives with clear errors.  ``watermark`` optionally embeds a
        stream-recovery cursor (see
        :meth:`repro.stream.OnlineService.checkpoint`, which is how online
        services snapshot themselves).  Returns the resolved path.
        """
        arrays, meta = self._state_dict()
        arrays = dict(arrays)
        meta = dict(meta)
        meta["name"] = self.name
        meta["rng_state"] = rng_state(self._rng)
        if self.graph is not None:
            arrays["graph/src"] = self.graph.src
            arrays["graph/dst"] = self.graph.dst
            arrays["graph/time"] = self.graph.time
            arrays["graph/weight"] = self.graph.weight
            meta["graph_num_nodes"] = self.graph.num_nodes
        return save_checkpoint(
            path,
            type(self).__name__,
            self._config_dict(),
            arrays,
            meta,
            precision=self._precision_name(),
            watermark=watermark,
        )

    @classmethod
    def load(cls, path, precision: str | None = None) -> "EmbeddingMethod":
        """Rebuild a trained method from :meth:`save` output.

        Callable on the base class (dispatches to the recorded subclass) or
        on a concrete class (which then must match the checkpoint).

        ``precision`` optionally pins the expected policy: loading a
        ``float32`` archive while requiring ``"float64"`` (or vice versa)
        raises :class:`CheckpointError` instead of silently casting a
        trained model across precisions — re-fit under the desired policy,
        or load under the recorded one and convert the *embeddings*
        explicitly.  Independently of the request, an archive whose header
        precision disagrees with its own recorded configuration is refused
        as corrupt.  Within a matching policy, array loading casts values
        into the model's buffers (a no-op for same-precision saves).
        """
        ck = load_checkpoint(path)
        klass = _find_method_class(ck.class_name)
        if klass is None:
            raise CheckpointError(
                f"checkpoint was written by unknown method class {ck.class_name!r}"
            )
        if cls is not EmbeddingMethod and not issubclass(klass, cls):
            raise CheckpointError(
                f"checkpoint holds a {ck.class_name}, not a {cls.__name__}; "
                f"load it via {ck.class_name}.load(...)"
            )
        if precision is not None and precision != ck.precision:
            raise CheckpointError(
                f"checkpoint was saved under precision {ck.precision!r} but "
                f"{precision!r} was requested; load it under the recorded "
                f"policy or re-fit the model at the desired precision"
            )
        model = klass._from_config(ck.config)
        if model._precision_name() != ck.precision:
            raise CheckpointError(
                f"checkpoint header records precision {ck.precision!r} but its "
                f"configuration rebuilds a {model._precision_name()!r} model — "
                f"the archive is inconsistent (was it hand-edited?)"
            )
        meta = dict(ck.meta)
        arrays = dict(ck.arrays)
        if all(k in arrays for k in cls._GRAPH_KEYS):
            model.graph = TemporalGraph(
                int(meta["graph_num_nodes"]),
                arrays.pop("graph/src"),
                arrays.pop("graph/dst"),
                arrays.pop("graph/time"),
                arrays.pop("graph/weight"),
            )
        model._rng = restore_rng(meta["rng_state"])
        model.name = meta.get("name", klass.name)
        model._load_state_dict(arrays, meta)
        return model

    @classmethod
    def _from_config(cls, config: dict) -> "EmbeddingMethod":
        """Construct an untrained instance from :meth:`_config_dict` output."""
        return cls(**config)

    def _config_dict(self) -> dict:
        """Subclass hook: JSON-serializable constructor kwargs."""
        raise NotImplementedError(f"{type(self).__name__} lacks _config_dict")

    def _state_dict(self) -> tuple[dict, dict]:
        """Subclass hook: ``(arrays, meta)`` capturing all trained state."""
        raise NotImplementedError(f"{type(self).__name__} lacks _state_dict")

    def _load_state_dict(self, arrays: dict, meta: dict) -> None:
        """Subclass hook: restore trained state (``self.graph`` and
        ``self._rng`` are already in place when this runs)."""
        raise NotImplementedError(f"{type(self).__name__} lacks _load_state_dict")


def _find_method_class(name: str):
    """Locate the concrete :class:`EmbeddingMethod` subclass called ``name``."""
    # Checkpoints may be loaded before the method modules were imported;
    # pull in the standard roster so __subclasses__ can see it.
    import repro.baselines  # noqa: F401
    import repro.core.model  # noqa: F401

    stack = list(EmbeddingMethod.__subclasses__())
    while stack:
        klass = stack.pop()
        if klass.__name__ == name:
            return klass
        stack.extend(klass.__subclasses__())
    return None
