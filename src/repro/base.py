"""The common interface all embedding methods implement.

EHNA and every baseline (Node2Vec, CTDNE, LINE, HTNE) expose the same
``fit`` / ``embeddings`` protocol so the evaluation harnesses (network
reconstruction, link prediction, efficiency study) can treat them uniformly —
exactly how Section V compares them "on an equal footing".
"""

from __future__ import annotations

import abc

import numpy as np

from repro.graph.temporal_graph import TemporalGraph


class EmbeddingMethod(abc.ABC):
    """A node-embedding learner over a temporal network."""

    #: Human-readable name used in result tables.
    name: str = "method"

    @abc.abstractmethod
    def fit(self, graph: TemporalGraph) -> "EmbeddingMethod":
        """Train on ``graph`` and return self."""

    @abc.abstractmethod
    def embeddings(self) -> np.ndarray:
        """The learned ``(num_nodes, dim)`` embedding matrix."""

    def embedding_of(self, node: int) -> np.ndarray:
        """Convenience accessor for a single node's vector."""
        return self.embeddings()[node]
