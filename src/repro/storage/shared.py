"""Shared-memory storage: zero-copy graphs across worker processes.

The third :class:`~repro.storage.GraphStorage` backend (after
``ArrayStorage`` and ``MemmapStorage``) places a temporal graph's event
columns *and* its derived index structures — the incidence CSR, the
distinct-neighbor CSR, the pair index, the scaled timestamps — inside one
``multiprocessing.shared_memory`` segment.  A :class:`PackHandle` describing
the segment (name, array table, metadata) is picklable and tiny, so a worker
process attaches with

    graph = TemporalGraph.from_handle(handle)

paying zero copies and zero index rebuilds: every array the walk engine
gathers from is the leader's physical memory, mapped read-only.

Two layers live here:

- :class:`SharedArrayPack` — a generic named bundle of numpy arrays in one
  segment.  The parallel trainer reuses it for flat parameter vectors and
  Hogwild weight tables.
- :class:`SharedMemoryStorage` — the graph-shaped pack implementing the
  ``GraphStorage`` protocol (``backend = "shared"``), with the derived index
  arrays packed next to the event columns.

**Write discipline.**  Every view handed out is read-only
(``writeable=False``).  ``array(name, writable=True)`` re-derives write
access over the same bytes — the escape hatch the Hogwild trainer and the
leader's parameter steps need — and reprolint rule PAR001 confines such
calls (and any other writeable-flag flip) to ``repro/parallel``.

**Cleanup.**  The creating process owns the segment: a ``weakref.finalize``
unlinks it when the pack is garbage collected or the interpreter exits, and
:meth:`close` does the same eagerly (idempotent — the finalizer runs once).
Attaching processes only ever close their mapping.  Resource-tracker
bookkeeping needs no special handling here: spawn children inherit the
leader's tracker daemon (``spawn.py`` passes ``tracker_fd``), whose cache is
a *set*, so the attach-side re-registration is idempotent and the owner's
``unlink`` issues the single matching unregister.  An extra unregister on
attach (the Python 3.11 stand-in for 3.12's ``track=False``) would actually
*cause* the tracker noise it tries to prevent — a ``KeyError`` in the
tracker daemon when the owner later unlinks.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.storage.base import COLUMNS, GraphStorage

#: Byte alignment of every array inside a segment.  64 covers the widest
#: dtype here and keeps rows cache-line aligned for the gather-heavy walks.
_ALIGN = 64


@dataclass(frozen=True)
class PackHandle:
    """Picklable description of a :class:`SharedArrayPack` segment.

    ``arrays`` is a tuple of ``(name, dtype_str, shape, offset)`` rows;
    ``meta`` is a tuple of ``(key, value)`` pairs (kept as pairs so the
    handle stays hashable).  The handle is all a worker needs to attach.
    """

    name: str
    arrays: tuple
    meta: tuple = ()

    def meta_dict(self) -> dict:
        return dict(self.meta)


def _release_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Close (and, for the owner, unlink) a segment; safe to call once.

    Outstanding numpy views keep the underlying mmap alive and make
    ``close`` raise ``BufferError`` — swallowed here, because unlinking is
    what actually releases the name, and the map dies with the last view.
    """
    try:
        shm.close()
    except BufferError:
        pass  # views outstanding; the mapping dies with them
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass  # already unlinked (e.g. an explicit close ran first)


class SharedArrayPack:
    """A named bundle of numpy arrays in one shared-memory segment.

    Create with :meth:`create` (the owning process) or :meth:`attach` (a
    worker, from a pickled :class:`PackHandle`).  Views are read-only; see
    the module docstring for the write discipline and cleanup contract.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: PackHandle, owner: bool):
        self._shm = shm
        self._handle = handle
        self._owner = owner
        self._views: dict[str, np.ndarray] = {}
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, arrays: dict, meta: dict | None = None, name: str | None = None):
        """Pack ``arrays`` (name -> ndarray, order preserved) into a fresh segment."""
        if not arrays:
            raise ValueError("a shared pack needs at least one array")
        specs = []
        offset = 0
        for key, arr in arrays.items():
            arr = np.asarray(arr)
            offset = -(-offset // _ALIGN) * _ALIGN  # round up to alignment
            specs.append((str(key), arr.dtype.str, tuple(arr.shape), offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1), name=name)
        handle = PackHandle(
            name=shm.name,
            arrays=tuple(specs),
            meta=tuple((meta or {}).items()),
        )
        pack = cls(shm, handle, owner=True)
        for (key, dstr, shape, off), arr in zip(specs, arrays.values()):
            view = np.ndarray(shape, dtype=np.dtype(dstr), buffer=shm.buf, offset=off)
            view[...] = arr
            view.flags.writeable = False
            pack._views[key] = view
        return pack

    @classmethod
    def attach(cls, handle: PackHandle):
        """Map an existing segment read-only (worker side; zero copy)."""
        shm = shared_memory.SharedMemory(name=handle.name, create=False)
        pack = cls(shm, handle, owner=False)
        for key, dstr, shape, off in handle.arrays:
            view = np.ndarray(tuple(shape), dtype=np.dtype(dstr), buffer=shm.buf, offset=off)
            view.flags.writeable = False
            pack._views[key] = view
        return pack

    # -- access --------------------------------------------------------
    @property
    def handle(self) -> PackHandle:
        return self._handle

    @property
    def owner(self) -> bool:
        """Whether this process created (and will unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    @property
    def segment_name(self) -> str:
        return self._handle.name

    @property
    def nbytes(self) -> int:
        """Bytes of the packed arrays (excluding alignment padding)."""
        return sum(v.nbytes for v in self._views.values()) if self._views else 0

    def names(self) -> tuple[str, ...]:
        return tuple(key for key, _, _, _ in self._handle.arrays)

    def array(self, name: str, writable: bool = False) -> np.ndarray:
        """The named array as a view into the segment.

        The default view is read-only.  ``writable=True`` re-derives write
        access over the same bytes — only ``repro/parallel`` may do this
        (reprolint PAR001): the Hogwild weight tables and the leader's
        parameter vector are the two sanctioned shared-write sites.
        """
        if self.closed:
            raise ValueError(f"shared pack {self._handle.name!r} is closed")
        if not writable:
            try:
                return self._views[name]
            except KeyError:
                raise KeyError(f"no array {name!r} in shared pack") from None
        for key, dstr, shape, off in self._handle.arrays:
            if key == name:
                return np.ndarray(
                    tuple(shape), dtype=np.dtype(dstr), buffer=self._shm.buf, offset=off
                )
        raise KeyError(f"no array {name!r} in shared pack")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks.

        Idempotent: the underlying finalizer runs at most once, so calling
        ``close`` twice (or letting the garbage collector finalize after an
        explicit close) is a no-op.
        """
        self._views.clear()
        self._finalizer()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("owner" if self._owner else "attached")
        return (
            f"SharedArrayPack(name={self._handle.name!r}, "
            f"arrays={len(self._handle.arrays)}, {state})"
        )


class SharedMemoryStorage(GraphStorage):
    """Event columns + derived graph indexes in shared memory.

    The graph-shaped :class:`SharedArrayPack`: the four base event columns
    plus every derived structure a :class:`~repro.graph.TemporalGraph`
    normally builds (incidence CSR, distinct CSR, degrees, pair index,
    scaled times).  ``TemporalGraph.to_shared()`` builds one;
    ``TemporalGraph.from_handle()`` attaches a zero-copy, zero-rebuild twin
    in another process.  All views are read-only; mutation of a
    shared-backed graph materializes into a fresh ``ArrayStorage`` exactly
    like the memmap backend (the segment is an immutable snapshot).
    """

    backend = "shared"

    #: Derived index arrays packed next to the event columns, in pack order.
    DERIVED = (
        "inc_offsets",
        "inc_nbr",
        "inc_time",
        "inc_weight",
        "inc_eid",
        "degree",
        "dindptr",
        "dnbr",
        "dmult",
        "times01",
        "pair_keys",
    )

    def __init__(self, pack: SharedArrayPack):
        meta = pack.handle.meta_dict()
        self._pack = pack
        self._num_nodes = int(meta["num_nodes"])
        self._num_events = int(meta["num_events"])
        scale = meta.get("time_scale")
        self._time_scale = None if scale is None else (float(scale[0]), float(scale[1]))

    @classmethod
    def from_graph_arrays(
        cls,
        columns: dict,
        derived: dict,
        num_nodes: int,
        time_scale: tuple | None = None,
        name: str | None = None,
    ) -> "SharedMemoryStorage":
        """Pack already built graph arrays into a fresh segment (owner side)."""
        missing = [c for c in COLUMNS if c not in columns]
        missing += [d for d in cls.DERIVED if d not in derived]
        if missing:
            raise ValueError(f"missing graph arrays for shared storage: {missing}")
        arrays = {c: columns[c] for c in COLUMNS}
        arrays.update({d: derived[d] for d in cls.DERIVED})
        meta = {
            "num_nodes": int(num_nodes),
            "num_events": int(np.asarray(columns["src"]).size),
            "time_scale": None if time_scale is None else tuple(time_scale),
        }
        return cls(SharedArrayPack.create(arrays, meta=meta, name=name))

    @classmethod
    def attach(cls, handle: PackHandle) -> "SharedMemoryStorage":
        """Map another process's segment read-only (worker side)."""
        return cls(SharedArrayPack.attach(handle))

    # -- GraphStorage protocol -----------------------------------------
    def column(self, name: str) -> np.ndarray:
        if name not in COLUMNS:
            raise KeyError(f"unknown event column {name!r}")
        return self._pack.array(name)

    @property
    def num_events(self) -> int:
        return self._num_events

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def loaded_columns(self) -> tuple[str, ...]:
        return COLUMNS

    # -- shared-memory surface -----------------------------------------
    def array(self, name: str) -> np.ndarray:
        """Any packed array (event column or derived index), read-only."""
        return self._pack.array(name)

    @property
    def handle(self) -> PackHandle:
        """The picklable attach token (see :class:`PackHandle`)."""
        return self._pack.handle

    @property
    def time_scale(self) -> tuple[float, float] | None:
        """The graph's pinned ``times01`` span at pack time, if any."""
        return self._time_scale

    @property
    def owner(self) -> bool:
        return self._pack.owner

    @property
    def closed(self) -> bool:
        return self._pack.closed

    def close(self) -> None:
        """Release the mapping (owner: unlink the segment); idempotent."""
        self._pack.close()
