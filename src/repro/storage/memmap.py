"""Columnar, memory-mapped on-disk event store.

The layout is a *dataset directory*: one ``.npy`` file per event column plus
a JSON manifest describing what is inside —

```
store/
  manifest.json     {"format": "repro-event-store", "version": 1,
                     "num_events": N, "num_nodes": n, "time_sorted": true,
                     "columns": {"src": {"file": "src.npy", "dtype": "<i8"},
                                 ...},
                     "meta": {...}}          # free-form provenance
  src.npy  dst.npy  time.npy  weight.npy    # plain npy, one column each
```

Plain ``.npy`` files mean any numpy (or external tool) can read a column
directly; :class:`MemmapStorage` opens them with ``np.load(mmap_mode="r")``
**lazily** — a column's file is not even touched until the first access, and
once mapped the OS pages it in on demand, so a 10M-event store costs no
resident memory up front.

:class:`MemmapStorageWriter` is the chunked ingestion path: ``append`` takes
validated event columns in fixed-size chunks (never materializing the whole
log, never building a Python object per row) and streams each column's raw
bytes to disk; ``finalize`` seals the files into ``.npy`` form, globally
**stable-sorts by time** if the chunks did not arrive sorted (so a store is
always time-sorted, with arrival order preserved among ties — exactly the
``from_edges`` contract), and writes the manifest.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from pathlib import Path

import numpy as np
from numpy.lib import format as npy_format

from repro.storage.base import (
    COLUMN_DTYPES,
    COLUMNS,
    GraphStorage,
    validate_event_columns,
)

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: On-disk format identifier and version, refused on mismatch (same policy
#: as the checkpoint format in ``utils/checkpoint.py``).
FORMAT_NAME = "repro-event-store"
FORMAT_VERSION = 1

#: Rows per block for the sort/copy passes in ``finalize`` — bounds peak
#: memory at a few MB regardless of store size.
DEFAULT_CHUNK_EVENTS = 262_144


#: Validation levels for :class:`MemmapStorage` — ``"basic"`` checks the
#: manifest and each column's dtype/shape on first access; ``"deep"``
#: additionally verifies each column's bytes against the CRC32 digest the
#: manifest recorded at write time.
VALIDATE_LEVELS = ("basic", "deep")

#: Temp-file suffixes an interrupted :meth:`MemmapStorageWriter.finalize`
#: can leave behind; their presence marks a crashed, unfinished store.
_SCRATCH_PATTERNS = ("*.spill", "*.npy.tmp", "*.sorted.tmp.npy", "manifest.json.tmp")


class StoreFormatError(ValueError):
    """The directory is not a readable event store (bad manifest/format)."""


def is_store_dir(path) -> bool:
    """Whether ``path`` looks like an event-store directory (has a manifest)."""
    return (Path(path) / MANIFEST_NAME).is_file()


def _scratch_files(path: Path) -> list[str]:
    """Writer temp files left in ``path`` (evidence of a crashed finalize)."""
    found: set[str] = set()
    for pattern in _SCRATCH_PATTERNS:
        found.update(p.name for p in path.glob(pattern))
    return sorted(found)


def _crc32_column(arr: np.ndarray) -> int:
    """CRC32 of a (possibly memory-mapped) column, in bounded blocks."""
    crc = 0
    for lo in range(0, arr.size, DEFAULT_CHUNK_EVENTS):
        block = np.ascontiguousarray(arr[lo : lo + DEFAULT_CHUNK_EVENTS])
        crc = zlib.crc32(block.view(np.uint8), crc)
    return crc


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class MemmapStorage(GraphStorage):
    """Read a columnar event-store directory with lazy memory-mapped columns.

    Construction reads only the manifest; each column file is opened with
    ``np.load(mmap_mode="r")`` on first access and cached (see
    :attr:`~repro.storage.base.GraphStorage.loaded_columns`).  The mapped
    arrays are read-only — the store is an immutable event log.

    ``validate="deep"`` additionally checks each column's bytes against the
    CRC32 digest the writer recorded in the manifest, on the column's first
    access — a single flipped byte anywhere in a ``.npy`` file surfaces as
    :class:`StoreFormatError` naming the damaged column instead of silently
    corrupt embeddings.  Deep validation pages the whole column in once;
    the default ``"basic"`` keeps opening free of I/O beyond the manifest.
    """

    backend = "memmap"

    def __init__(self, path, validate: str = "basic"):
        if validate not in VALIDATE_LEVELS:
            raise ValueError(
                f"unknown validate level {validate!r}; pick one of "
                f"{VALIDATE_LEVELS}"
            )
        self.validate = validate
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.is_file():
            scratch = _scratch_files(self.path)
            if scratch:
                raise StoreFormatError(
                    f"{self.path} holds an unfinished event store: no "
                    f"{MANIFEST_NAME}, but writer temp files remain "
                    f"({', '.join(scratch)}) — a finalize crashed before "
                    "publishing; re-run the ingestion to rebuild the store"
                )
            raise StoreFormatError(
                f"{self.path} is not an event store: missing {MANIFEST_NAME}"
            )
        with manifest_path.open() as fh:
            manifest = json.load(fh)
        if manifest.get("format") != FORMAT_NAME:
            raise StoreFormatError(
                f"{manifest_path}: format {manifest.get('format')!r} is not "
                f"{FORMAT_NAME!r}"
            )
        if manifest.get("version") != FORMAT_VERSION:
            raise StoreFormatError(
                f"{manifest_path}: version {manifest.get('version')!r} "
                f"unsupported (expected {FORMAT_VERSION})"
            )
        missing = [c for c in COLUMNS if c not in manifest.get("columns", {})]
        if missing:
            raise StoreFormatError(f"{manifest_path}: missing columns {missing}")
        self.manifest = manifest
        self._mapped: dict[str, np.ndarray] = {}

    # -- GraphStorage surface ------------------------------------------
    def column(self, name: str) -> np.ndarray:
        col = self._mapped.get(name)
        if col is None:
            spec = self.manifest["columns"][name]
            col = np.load(self.path / spec["file"], mmap_mode="r")
            if col.ndim != 1 or col.dtype != np.dtype(spec["dtype"]):
                raise StoreFormatError(
                    f"{self.path / spec['file']}: expected 1-D {spec['dtype']}, "
                    f"found {col.ndim}-D {col.dtype}"
                )
            if col.size != self.num_events:
                raise StoreFormatError(
                    f"{self.path / spec['file']}: {col.size} rows, manifest "
                    f"says {self.num_events}"
                )
            if self.validate == "deep":
                recorded = spec.get("crc32")
                if recorded is None:
                    raise StoreFormatError(
                        f"{self.path}: column {name!r} has no CRC32 digest "
                        "in the manifest — the store predates digests; "
                        "rewrite it (or open with validate='basic')"
                    )
                actual = _crc32_column(col)
                if actual != int(recorded):
                    raise StoreFormatError(
                        f"{self.path / spec['file']}: column {name!r} fails "
                        f"its checksum (recorded CRC32 {int(recorded)}, "
                        f"found {actual}) — the file is corrupt"
                    )
            self._mapped[name] = col
        return col

    @property
    def num_events(self) -> int:
        return int(self.manifest["num_events"])

    @property
    def num_nodes(self) -> int:
        return int(self.manifest["num_nodes"])

    @property
    def loaded_columns(self) -> tuple[str, ...]:
        return tuple(c for c in COLUMNS if c in self._mapped)

    @property
    def meta(self) -> dict:
        """Free-form provenance recorded at write time (may be empty)."""
        return dict(self.manifest.get("meta") or {})

    @property
    def disk_bytes(self) -> int:
        """Total size of the column files on disk."""
        return sum(
            (self.path / spec["file"]).stat().st_size
            for spec in self.manifest["columns"].values()
        )

    # -- writing -------------------------------------------------------
    @classmethod
    def write(
        cls,
        path,
        src,
        dst,
        time,
        weight=None,
        num_nodes: int | None = None,
        meta: dict | None = None,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
    ) -> "MemmapStorage":
        """Write in-memory event columns as a store directory in one call.

        Chunks through :class:`MemmapStorageWriter`, so even a large
        in-memory table streams to disk in bounded blocks.  Unsorted input
        is sorted at finalize exactly like chunked ingestion.
        """
        src, dst, time, weight = validate_event_columns(src, dst, time, weight)
        writer = MemmapStorageWriter(path, num_nodes=num_nodes, meta=meta)
        for lo in range(0, src.size, int(chunk_events)):
            hi = lo + int(chunk_events)
            writer.append(src[lo:hi], dst[lo:hi], time[lo:hi], weight[lo:hi])
        return writer.finalize()


class MemmapStorageWriter:
    """Stream validated event chunks into a new store directory.

    ``append`` writes each chunk's raw column bytes straight to per-column
    spill files (O(chunk) memory, no per-row Python objects); ``finalize``
    seals them into ``.npy`` files, re-sorts by time when chunks arrived out
    of order, and writes the manifest.  Duplicate events are kept — repeat
    interactions are meaningful temporal events — and ties keep arrival
    order (stable sort), so a finalized store read back through
    ``TemporalGraph.from_storage`` is bitwise identical to
    ``TemporalGraph.from_edges`` over the same event sequence.
    """

    def __init__(self, path, num_nodes: int | None = None, meta: dict | None = None):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if is_store_dir(self.path):
            raise FileExistsError(f"{self.path} already contains an event store")
        self._num_nodes = None if num_nodes is None else int(num_nodes)
        self._meta = dict(meta or {})
        self._spills = {
            name: (self.path / f"{name}.spill").open("wb") for name in COLUMNS
        }
        self._count = 0
        self._max_node = -1
        self._last_time = -np.inf
        self._sorted = True
        self._finalized = False
        self._checksums: dict[str, int] = {}

    @property
    def num_events(self) -> int:
        """Events appended so far."""
        return self._count

    def append(self, src, dst, time, weight=None) -> "MemmapStorageWriter":
        """Validate one chunk of events and stream it to disk; returns self."""
        if self._finalized:
            raise RuntimeError("writer is finalized; open a new one to write more")
        src, dst, time, weight = validate_event_columns(src, dst, time, weight)
        if src.size == 0:
            return self
        if time[0] < self._last_time or np.any(np.diff(time) < 0):
            self._sorted = False
        self._last_time = float(time[-1])
        self._max_node = max(self._max_node, int(src.max()), int(dst.max()))
        for name, col in (("src", src), ("dst", dst), ("time", time), ("weight", weight)):
            col.astype(COLUMN_DTYPES[name], copy=False).tofile(self._spills[name])
        self._count += src.size
        return self

    def finalize(self) -> MemmapStorage:
        """Seal the store: npy-wrap the columns, sort if needed, write manifest.

        Finalize is **crash-safe**: every column is sealed to a ``.npy.tmp``
        sibling and renamed into place, and the manifest — the only thing
        that makes the directory a store — is published last, atomically
        (temp + ``os.replace`` + directory fsync).  A crash at any earlier
        instant leaves a directory with no manifest plus writer temp files,
        which :class:`MemmapStorage` reports as an unfinished store naming
        the leftovers instead of mapping half-written columns.  The manifest
        records each column's CRC32 (verified under ``validate="deep"``).
        """
        if self._finalized:
            raise RuntimeError("writer is already finalized")
        for fh in self._spills.values():
            fh.close()
        if self._count == 0:
            for name in COLUMNS:
                (self.path / f"{name}.spill").unlink()
            raise ValueError("an event store needs at least one event")
        if self._num_nodes is None:
            self._num_nodes = self._max_node + 1
        elif self._num_nodes <= self._max_node:
            raise ValueError(
                f"num_nodes={self._num_nodes} too small for max node id "
                f"{self._max_node}"
            )
        self._finalized = True
        for name in COLUMNS:
            self._seal_column(name)
        if not self._sorted:
            self._sort_by_time()
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "num_events": self._count,
            "num_nodes": self._num_nodes,
            "time_sorted": True,
            "columns": {
                name: {
                    "file": f"{name}.npy",
                    "dtype": COLUMN_DTYPES[name].str,
                    "crc32": self._checksums[name],
                }
                for name in COLUMNS
            },
            "meta": self._meta,
        }
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        with tmp.open("w") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path / MANIFEST_NAME)  # manifest appears atomically
        _fsync_directory(self.path)
        return MemmapStorage(self.path)

    def _seal_column(self, name: str) -> None:
        """Turn a raw spill file into ``<name>.npy`` via a temp sibling.

        The header + byte copy goes to ``<name>.npy.tmp`` (CRC32 of the
        data bytes accumulated along the way), is fsynced, and only then
        renamed to its final name — the published ``.npy`` is always whole.
        """
        spill = self.path / f"{name}.spill"
        dest = self.path / f"{name}.npy"
        tmp = self.path / f"{name}.npy.tmp"
        crc = 0
        with tmp.open("wb") as out:
            npy_format.write_array_header_1_0(
                out,
                {
                    "descr": COLUMN_DTYPES[name].str,
                    "fortran_order": False,
                    "shape": (self._count,),
                },
            )
            with spill.open("rb") as src:
                while True:
                    block = src.read(1 << 20)
                    if not block:
                        break
                    crc = zlib.crc32(block, crc)
                    out.write(block)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, dest)
        self._checksums[name] = crc
        spill.unlink()

    def _sort_by_time(self) -> None:
        """Globally stable-sort every column by the time column, in blocks.

        The permutation itself (one int64 per event) is the only full-length
        in-memory array; column data moves through fixed-size blocks between
        the existing map and a fresh memmap, then replaces the original file.
        The recorded checksums are recomputed over the sorted bytes as the
        blocks stream through.
        """
        time_mm = np.load(self.path / "time.npy", mmap_mode="r")
        order = np.argsort(time_mm, kind="stable")
        del time_mm
        n = self._count
        for name in COLUMNS:
            src_path = self.path / f"{name}.npy"
            tmp_path = self.path / f"{name}.sorted.tmp.npy"
            src_mm = np.load(src_path, mmap_mode="r")
            dst_mm = npy_format.open_memmap(
                tmp_path, mode="w+", dtype=COLUMN_DTYPES[name], shape=(n,)
            )
            crc = 0
            for lo in range(0, n, DEFAULT_CHUNK_EVENTS):
                hi = min(lo + DEFAULT_CHUNK_EVENTS, n)
                block = src_mm[order[lo:hi]]
                dst_mm[lo:hi] = block
                crc = zlib.crc32(np.ascontiguousarray(block).view(np.uint8), crc)
            dst_mm.flush()
            del src_mm, dst_mm
            # msync via flush() pushes the pages, but only an fsync makes
            # the file durable before it replaces the unsorted column.
            with tmp_path.open("rb+") as synced:
                os.fsync(synced.fileno())
            os.replace(tmp_path, src_path)
            self._checksums[name] = crc
