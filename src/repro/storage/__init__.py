"""Storage backends for temporal-graph event columns.

The :class:`GraphStorage` seam lets a :class:`~repro.graph.TemporalGraph`
keep its base event table either in memory (:class:`ArrayStorage`, the
default) or in a columnar, memory-mapped on-disk store
(:class:`MemmapStorage` — one ``.npy`` per column under a dataset directory
with a JSON manifest, columns mapped lazily), or in a shared-memory segment
(:class:`SharedMemoryStorage` — event columns plus the derived CSR indexes,
attachable zero-copy from worker processes via a picklable handle; the
substrate of ``repro.parallel``).  Chunked ingestion goes
through :class:`MemmapStorageWriter`; :func:`validate_event_columns` is the
shared validation gate for both backends and the graph itself.  See
``docs/architecture.md`` ("The storage layer") for the layout and the
manifest format.
"""

from repro.storage.base import (
    COLUMN_DTYPES,
    COLUMNS,
    ArrayStorage,
    GraphStorage,
    validate_event_columns,
)
from repro.storage.memmap import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    MemmapStorage,
    MemmapStorageWriter,
    StoreFormatError,
    is_store_dir,
)
from repro.storage.shared import PackHandle, SharedArrayPack, SharedMemoryStorage

__all__ = [
    "GraphStorage",
    "ArrayStorage",
    "MemmapStorage",
    "MemmapStorageWriter",
    "SharedMemoryStorage",
    "SharedArrayPack",
    "PackHandle",
    "StoreFormatError",
    "validate_event_columns",
    "is_store_dir",
    "COLUMNS",
    "COLUMN_DTYPES",
    "MANIFEST_NAME",
    "FORMAT_NAME",
    "FORMAT_VERSION",
]
