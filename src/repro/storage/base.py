"""The storage-backend seam: where a temporal graph's event columns live.

A :class:`~repro.graph.temporal_graph.TemporalGraph` is, at bottom, four
parallel columns — ``src``, ``dst``, ``time``, ``weight`` — sorted by time.
Everything else (the CSR incidence index, the distinct-neighbor CSR, the
pair index) is *derived* and always lives in memory.  :class:`GraphStorage`
is the contract for where the base columns come from:

- :class:`ArrayStorage` — plain in-memory numpy arrays, the default.  This
  is exactly what ``TemporalGraph`` held before the seam existed; every
  graph built through ``from_edges`` / ``extend`` / ``snapshot`` uses it.
- :class:`~repro.storage.memmap.MemmapStorage` — a columnar on-disk layout
  (one ``.npy`` per column under a dataset directory, plus a JSON manifest),
  memory-mapped lazily so a 10M-event log never needs to be resident at
  once.  ``TemporalGraph.from_storage`` builds a graph over it; all queries
  run the same vectorized numpy code against the mapped columns.

The seam is deliberately *read-oriented*: storage hands out time-sorted
columns, and mutation (``extend_in_place`` compaction) materializes the
merged result into a fresh :class:`ArrayStorage` — the on-disk store is an
immutable event log, not a database.

:func:`validate_event_columns` is the single validation gate for event
columns; ``TemporalGraph`` and the memmap ingestion writer both route
through it so a bad event is rejected identically no matter which door it
entered through.
"""

from __future__ import annotations

import numpy as np

#: The event-table columns every backend stores, in canonical order.
COLUMNS = ("src", "dst", "time", "weight")

#: The on-disk / in-memory dtype policy of each column.  Node ids are int64
#: in the base table (the *derived* CSR narrows to int32 when the id space
#: fits — see ``TemporalGraph._build_incidence``); time and weight are
#: float64 because time is data, not compute (the precision policy narrows
#: compute buffers, never timestamps).
COLUMN_DTYPES = {
    "src": np.dtype(np.int64),
    "dst": np.dtype(np.int64),
    "time": np.dtype(np.float64),
    "weight": np.dtype(np.float64),
}


def validate_event_columns(src, dst, time, weight=None):
    """Cast and check parallel event columns; returns the casted tuple.

    The shared gate behind ``TemporalGraph.from_edges`` / ``extend`` /
    ``extend_in_place`` *and* the memmap ingestion writer: self-loops,
    negative ids, non-finite timestamps and non-positive weights are
    rejected with the same messages everywhere.  Empty columns are allowed
    (a no-op extend batch, an empty ingest chunk); callers that need at
    least one event check separately.  ``weight=None`` fills unit weights.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    time = np.asarray(time, dtype=np.float64)
    if src.shape != dst.shape or src.shape != time.shape or src.ndim != 1:
        raise ValueError("src, dst and time must be 1-D arrays of equal length")
    if np.any(src == dst):
        raise ValueError("self-loops are not allowed in a temporal network")
    if not np.all(np.isfinite(time)):
        raise ValueError("timestamps must be finite")
    if weight is None:
        weight = np.ones(src.size, dtype=np.float64)
    else:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.shape != src.shape:
            raise ValueError("weight must match src/dst/time in length")
        if np.any(weight <= 0) or not np.all(np.isfinite(weight)):
            raise ValueError("edge weights must be finite and positive")
    if np.any(src < 0) or np.any(dst < 0):
        raise ValueError("node ids must be non-negative integers")
    return src, dst, time, weight


class GraphStorage:
    """Protocol for a temporal graph's base event columns.

    Subclasses provide :meth:`column` plus the :attr:`num_events` /
    :attr:`num_nodes` counts; the ``src``/``dst``/``time``/``weight``
    properties and the bookkeeping helpers are shared.  Columns must be
    time-sorted, validated (see :func:`validate_event_columns`) 1-D arrays
    of the :data:`COLUMN_DTYPES` dtypes; whether they are resident numpy
    arrays or lazily opened memory maps is the backend's business.
    """

    #: Short backend label ("memory", "memmap"), surfaced as
    #: ``TemporalGraph.storage_backend`` and used in dataset cache keys.
    backend = "abstract"

    #: Canonical column order (class-level alias of :data:`COLUMNS`).
    columns = COLUMNS

    def column(self, name: str) -> np.ndarray:
        """The named column as a 1-D array (may be a lazily opened memmap)."""
        raise NotImplementedError

    @property
    def num_events(self) -> int:
        """Number of events (rows) in the store."""
        raise NotImplementedError

    @property
    def num_nodes(self) -> int:
        """Size of the node-id space the events were recorded against."""
        raise NotImplementedError

    @property
    def loaded_columns(self) -> tuple[str, ...]:
        """Columns materialized/mapped so far (lazy backends load on demand)."""
        raise NotImplementedError

    # -- shared column accessors ---------------------------------------
    @property
    def src(self) -> np.ndarray:
        return self.column("src")

    @property
    def dst(self) -> np.ndarray:
        return self.column("dst")

    @property
    def time(self) -> np.ndarray:
        return self.column("time")

    @property
    def weight(self) -> np.ndarray:
        return self.column("weight")

    @property
    def nbytes(self) -> int:
        """Bytes of the columns loaded so far.

        For :class:`ArrayStorage` this is the full resident edge table; for
        a memmap backend it counts only the *mapped* columns — the figure is
        "what this process has asked for", and the OS pages the mapped
        bytes in and out beneath it.
        """
        return sum(self.column(name).nbytes for name in self.loaded_columns)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(backend={self.backend!r}, "
            f"events={self.num_events}, nodes={self.num_nodes})"
        )


class ArrayStorage(GraphStorage):
    """In-memory column storage — the default backend.

    Wraps already validated, time-sorted arrays without copying.  This is
    the storage every ``from_edges`` graph uses, and what a compaction of
    buffered streaming arrivals rebinds to (mutation always materializes;
    see the module docstring).
    """

    backend = "memory"

    def __init__(self, src, dst, time, weight, num_nodes: int | None = None):
        self._cols = {"src": src, "dst": dst, "time": time, "weight": weight}
        self._num_nodes = num_nodes

    def column(self, name: str) -> np.ndarray:
        return self._cols[name]

    @property
    def num_events(self) -> int:
        return int(self._cols["src"].size)

    @property
    def num_nodes(self) -> int:
        if self._num_nodes is None:
            if self.num_events == 0:
                return 0
            self._num_nodes = (
                int(max(self._cols["src"].max(), self._cols["dst"].max())) + 1
            )
        return self._num_nodes

    @property
    def loaded_columns(self) -> tuple[str, ...]:
        return COLUMNS
