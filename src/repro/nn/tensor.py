"""A small reverse-mode autodiff engine on numpy arrays.

The paper trains EHNA with a stacked LSTM, batch normalization, two custom
attention mechanisms and Adam.  PyTorch is not available in this offline
environment, so this module provides the required machinery from scratch:
:class:`Tensor` wraps an ``ndarray``, records the computation graph, and
``backward()`` propagates gradients with full broadcasting support.

Design notes
------------
- dtype-preserving: a tensor built from a floating array keeps that array's
  dtype, every op produces outputs in the operands' dtype, and scalars /
  non-float inputs are coerced to the *default* ``float64``.  The precision
  policy (:mod:`repro.nn.dtypes`) decides which floating dtype a model
  allocates its parameters in; the engine then carries it through the whole
  graph — ``float64`` (the reference mode, bitwise-identical to the
  historical hard-coded behavior, with 1e-6 gradcheck tolerances) or
  ``float32`` (the fast mode, validated under the policy's loosened
  tolerances).
- the graph is built eagerly by the arithmetic ops below; ``backward`` does an
  iterative topological sort, so deep BPTT chains cannot hit the recursion
  limit.
- gradients of broadcast operands are reduced back to the operand's shape by
  :func:`_unbroadcast`.
"""

from __future__ import annotations

import numpy as np

#: Dtype for tensors built from scalars and non-floating arrays.
DEFAULT_DTYPE = np.dtype(np.float64)


def _coerce_array(value, dtype=None) -> np.ndarray:
    """``value`` as a floating ndarray.

    Floating inputs keep their dtype unless ``dtype`` overrides it; scalars,
    integer and boolean inputs become ``dtype`` (default ``float64``).  This
    is the single place the engine decides dtypes, so constants entering a
    ``float32`` graph adopt ``float32`` instead of silently promoting the
    whole downstream computation to ``float64``.
    """
    arr = np.asarray(value)
    if dtype is not None:
        return np.asarray(arr, dtype=dtype)
    if arr.dtype.kind != "f":
        return arr.astype(DEFAULT_DTYPE)
    return arr


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were stretched from size 1.
    squeeze = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if squeeze:
        grad = grad.sum(axis=squeeze, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value, dtype=None) -> "Tensor":
    """Coerce scalars/arrays into constant (non-differentiable) tensors.

    ``dtype`` is the dtype non-tensor operands adopt — binary ops pass their
    own dtype so mixing a tensor with a Python scalar or plain array never
    promotes the result (tensor operands always keep their own dtype).
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(_coerce_array(value, dtype), requires_grad=False)


class Tensor:
    """An ndarray with an optional gradient and a backward rule.

    Only tensors with ``requires_grad=True`` (or downstream of one) record
    graph edges, so constants stay cheap.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _coerce_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # -- graph construction -------------------------------------------------
    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        """Internal node constructor; drops the graph if no parent needs grad."""
        needs = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs)
        if needs:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- public helpers ------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the underlying array (set by the precision policy)."""
        return self.data.dtype

    def detach(self) -> "Tensor":
        """A constant tensor sharing this one's data (cuts the graph)."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def item(self) -> float:
        """The value of a scalar tensor as a Python float."""
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data."""
        return self.data.copy()

    def backward(self, gradient=None) -> None:
        """Backpropagate from this tensor.

        ``gradient`` defaults to 1 for scalar outputs (the usual loss case)
        and must be supplied explicitly for non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without gradient on non-scalar tensor")
            gradient = np.ones_like(self.data)
        else:
            gradient = np.asarray(gradient, dtype=self.data.dtype)
            if gradient.shape != self.data.shape:
                raise ValueError("gradient shape must match tensor shape")

        # Iterative topological sort (DFS with explicit stack).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(-g)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other, self.data.dtype))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other, self.data.dtype) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other, self.data.dtype) / self

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other, self.data.dtype)
        if self.ndim != 2 or other.ndim != 2:
            raise ValueError("matmul supports 2-D tensors only")
        out_data = self.data @ other.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(g @ other.data.T)
            if other.requires_grad:
                other._accumulate(self.data.T @ g)

        return Tensor._make(out_data, (self, other), backward)

    # -- shape ops -------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        """Reshape (gradient reshapes back)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        """2-D transpose."""
        if self.ndim != 2:
            raise ValueError("transpose supports 2-D tensors only")

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.T)

        return Tensor._make(self.data.T, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, g)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- reductions --------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when None)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if not self.requires_grad:
                return
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
                return
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis``."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    # -- elementwise nonlinearities ------------------------------------------------
    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        out_data = np.log(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        return self**0.5

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        x = self.data
        out_data = np.empty_like(x)
        pos = x >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out_data[~pos] = ex / (1.0 + ex)

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise ``max(0, x)``."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"


# ---------------------------------------------------------------------------
# free functions over tensors
# ---------------------------------------------------------------------------
def apply_op(data, parents, backward) -> Tensor:
    """Build a custom autograd node: ``data`` with a hand-written backward.

    This is the public hook for *fused kernels* — operations whose forward is
    computed outside the elementwise op vocabulary (e.g. a whole BPTT unroll
    in one numpy loop) and whose backward is derived by hand.  ``parents``
    are the tensors the node depends on; ``backward(g)`` receives the
    upstream gradient and must call ``parent._accumulate`` on every parent
    with ``requires_grad`` (checking the flag itself, exactly like the
    built-in ops).  If no parent requires grad the graph edge is dropped and
    ``backward`` is never invoked.
    """
    return Tensor._make(data, tuple(parents), backward)


def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ``[·||·]`` operator)."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        pieces = np.split(g, splits, axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis: int = 0) -> Tensor:
    """Stack equal-shaped tensors along a new ``axis``."""
    tensors = [_as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        pieces = np.split(g, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max shift is treated as a constant: softmax is shift-invariant, so the
    gradient is unaffected.
    """
    shift = np.max(x.data, axis=axis, keepdims=True)
    e = (x - Tensor(shift)).exp()
    return e / e.sum(axis=axis, keepdims=True)


def squared_distance(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """``||a - b||²₂`` along ``axis`` — the metric of Eq. 3–7."""
    d = a - b
    return (d * d).sum(axis=axis)
