"""Optimizers: mini-batch SGD (with momentum) and Adam.

The paper trains with mini-batch stochastic gradient descent (Section IV.B);
Adam is provided as the practical default for the LSTM stack, whose gate
gradients span orders of magnitude.

Both optimizers follow the precision policy implicitly: momentum/moment
state is allocated with ``zeros_like`` on the parameters, every update uses
Python-scalar coefficients (weak under NumPy promotion), and gradients
arrive in the parameters' dtype from the autograd engine — so a ``float32``
model trains with ``float32`` optimizer state end to end, with no silent
promotion back to ``float64``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.validation import check_positive


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Tensor], lr: float):
        check_positive("lr", lr)
        params = list(params)
        if not params:
            raise ValueError("optimizer needs at least one parameter")
        for p in params:
            if not p.requires_grad:
                raise ValueError("all optimized tensors must require grad")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and grad clipping."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0, clip: float | None = None):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.clip = clip
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip is not None:
                g = np.clip(g, -self.clip, self.clip)
            if self.momentum > 0:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction and optional grad clipping."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        clip: float | None = None,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.clip = clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        correct1 = 1.0 - b1**self._t
        correct2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip is not None:
                g = np.clip(g, -self.clip, self.clip)
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / correct1
            v_hat = v / correct2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
