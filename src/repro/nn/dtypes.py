"""The precision policy of the compute substrate.

Every layer that allocates floating-point state — the autograd engine, the
parameter initializers, the fused LSTM kernel, the walk-batch padding, the
one-pass train step and the baselines' weight tables — used to hard-code
``float64``.  A :class:`Precision` bundles the choices those layers need into
one policy object:

- ``real``: the dtype of parameters, activations and gradients;
- gradcheck/test tolerances matched to that dtype (finite differences in
  single precision are far noisier than in double);
- ``loss_rtol``: the documented bound within which a fast-mode loss
  trajectory must track the reference-mode one;
- an index-width rule (:meth:`index_dtype`) shared with the graph/walk layer.

Two policies are registered:

``float64`` (the default, :data:`FLOAT64`)
    The *reference* mode.  Bitwise-identical to the historical behavior —
    every legacy-equivalence, fused-kernel and walk-engine bitwise suite runs
    under it unmodified.

``float32`` (:data:`FLOAT32`)
    The *fast* mode: single-precision reals halve memory traffic through the
    exact hot paths the fused pipeline optimized (BLAS ``sgemm`` vs ``dgemm``
    in the LSTM kernels, element-wise ops everywhere) and pair naturally with
    ``int32``-narrowed graph/walk index arrays.  Validated by
    loosened-tolerance gradchecks, loss-trajectory agreement within
    ``loss_rtol`` and task-level AUC parity (``benchmarks/bench_precision.py``).

Index narrowing is *orthogonal* to the real dtype: ``int32`` indices are
exact, so :class:`~repro.graph.temporal_graph.TemporalGraph` narrows its CSR
arrays whenever the id space fits — under *either* policy.  The rule lives
here once (:func:`index_dtype_for`); the graph layer and the policy's
:meth:`Precision.index_dtype` both delegate to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest value an ``int32`` index array may need to hold, exclusive.
_INT32_LIMIT = 2**31


def index_dtype_for(max_value: int) -> np.dtype:
    """The index dtype for arrays whose entries stay below ``max_value``.

    ``int32`` when every index fits (the explicit overflow guard — the
    largest incidence CSR needs ``2 * num_edges`` slots, so the graph layer
    passes ``max(2 * num_edges, num_nodes + 1)``), ``int64`` otherwise.
    Exact either way: narrowing never loses information, only memory
    traffic, which is why it applies regardless of the float policy.
    """
    if int(max_value) < _INT32_LIMIT:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


class UnknownPrecisionError(KeyError, ValueError):
    """An unregistered precision name was requested.

    Subclasses both ``KeyError`` (the policy table is a lookup) and
    ``ValueError`` (the name is an invalid argument), mirroring
    :class:`repro.datasets.UnknownDatasetError`.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


@dataclass(frozen=True)
class Precision:
    """One precision policy; see the module docstring for the two instances."""

    #: Registry name (``"float64"`` / ``"float32"``) — what configs store.
    name: str
    #: Dtype of parameters, activations and gradients.
    real: np.dtype
    #: Finite-difference step for gradient checks.
    gradcheck_eps: float
    #: Absolute tolerance for gradient checks.
    gradcheck_atol: float
    #: Relative tolerance for gradient checks.
    gradcheck_rtol: float
    #: Documented relative bound for fast-vs-reference loss trajectories.
    loss_rtol: float

    def index_dtype(self, max_value: int) -> np.dtype:
        """The shared index-width rule — see :func:`index_dtype_for`."""
        return index_dtype_for(max_value)


#: Reference mode — double precision, tight tolerances, bitwise-stable.
FLOAT64 = Precision(
    name="float64",
    real=np.dtype(np.float64),
    gradcheck_eps=1e-6,
    gradcheck_atol=1e-5,
    gradcheck_rtol=1e-4,
    loss_rtol=1e-6,
)

#: Fast mode — single precision reals, loosened tolerances.
FLOAT32 = Precision(
    name="float32",
    real=np.dtype(np.float32),
    gradcheck_eps=1e-2,
    gradcheck_atol=5e-2,
    gradcheck_rtol=5e-2,
    loss_rtol=5e-2,
)

#: Registered policies by name, in preference order.
PRECISIONS: dict[str, Precision] = {p.name: p for p in (FLOAT64, FLOAT32)}


def get_precision(name) -> Precision:
    """Resolve a policy by name (or pass a :class:`Precision` through).

    Raises
    ------
    UnknownPrecisionError
        If ``name`` is not registered; the message lists valid values.
    """
    if isinstance(name, Precision):
        return name
    try:
        return PRECISIONS[name]
    except (KeyError, TypeError):
        raise UnknownPrecisionError(
            f"unknown precision {name!r}; expected one of {list(PRECISIONS)}"
        ) from None


__all__ = [
    "Precision",
    "UnknownPrecisionError",
    "FLOAT64",
    "FLOAT32",
    "PRECISIONS",
    "get_precision",
    "index_dtype_for",
]
