"""Parameter initializers.

All initializers take an explicit RNG so model construction is reproducible
from the harness seed, and a ``dtype`` chosen by the precision policy
(:mod:`repro.nn.dtypes`).  Random draws always consume the RNG stream in
``float64`` and are cast afterwards, so a ``float32`` model is initialized
from bitwise the same stream as its ``float64`` twin — only the storage
narrows.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


def xavier_uniform(shape: tuple[int, ...], rng=None, gain: float = 1.0, dtype=np.float64) -> Tensor:
    """Glorot/Xavier uniform initialization for weight matrices."""
    rng = ensure_rng(rng)
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    draws = rng.uniform(-bound, bound, size=shape)
    return Tensor(draws.astype(dtype, copy=False), requires_grad=True)


def uniform(shape: tuple[int, ...], low: float, high: float, rng=None, dtype=np.float64) -> Tensor:
    """Uniform initialization in ``[low, high)``."""
    rng = ensure_rng(rng)
    draws = rng.uniform(low, high, size=shape)
    return Tensor(draws.astype(dtype, copy=False), requires_grad=True)


def zeros(shape: tuple[int, ...], dtype=np.float64) -> Tensor:
    """All-zero parameter (the usual bias initialization)."""
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=True)


def ones(shape: tuple[int, ...], dtype=np.float64) -> Tensor:
    """All-one parameter (batch-norm scale)."""
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=True)
