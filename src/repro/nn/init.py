"""Parameter initializers.

All initializers take an explicit RNG so model construction is reproducible
from the harness seed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng


def xavier_uniform(shape: tuple[int, ...], rng=None, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform initialization for weight matrices."""
    rng = ensure_rng(rng)
    fan_in, fan_out = shape[0], shape[-1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-bound, bound, size=shape), requires_grad=True)


def uniform(shape: tuple[int, ...], low: float, high: float, rng=None) -> Tensor:
    """Uniform initialization in ``[low, high)``."""
    rng = ensure_rng(rng)
    return Tensor(rng.uniform(low, high, size=shape), requires_grad=True)


def zeros(shape: tuple[int, ...]) -> Tensor:
    """All-zero parameter (the usual bias initialization)."""
    return Tensor(np.zeros(shape), requires_grad=True)


def ones(shape: tuple[int, ...]) -> Tensor:
    """All-one parameter (batch-norm scale)."""
    return Tensor(np.ones(shape), requires_grad=True)
