"""Neural-network layers on top of the autograd engine.

Implements exactly the components Algorithm 1 of the paper requires:
``Embedding`` (the node-embedding table ``e_v``), ``Linear`` (the readout
``W·[H||e_x]``), ``LSTM``/``StackedLSTM`` (the two aggregators) and
``BatchNorm1d`` (the BN of lines 4 and 6).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class Module:
    """Base class: parameter discovery, grad clearing, train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its submodules."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def modules(self) -> list["Module"]:
        """This module and all nested submodules."""
        found: list[Module] = [self]
        for value in self.__dict__.values():
            found.extend(_collect_modules(value))
        return found

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (affects BatchNorm)."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        for m in self.modules():
            m.training = False
        return self

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


def _collect_modules(value) -> list["Module"]:
    if isinstance(value, Module):
        return value.modules()
    if isinstance(value, (list, tuple)):
        out: list[Module] = []
        for item in value:
            out.extend(_collect_modules(item))
        return out
    return []


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        super().__init__()
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng)
        self.bias = init.zeros((out_features,)) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of node embeddings ``e_v``.

    The default initialization bound ``1/sqrt(dim)`` gives roughly unit-norm
    rows, so Euclidean distances between fresh embeddings are O(1) — the
    regime the attention (Eq. 3/4) and margin loss (Eq. 5-7) operate in.
    (word2vec-style models instead want the tiny ``0.5/dim`` bound; pass it
    via ``bound``.)
    """

    def __init__(self, num_embeddings: int, dim: int, rng=None, bound: float | None = None):
        super().__init__()
        check_positive("num_embeddings", num_embeddings)
        check_positive("dim", dim)
        self.num_embeddings = num_embeddings
        self.dim = dim
        if bound is None:
            bound = 1.0 / np.sqrt(dim)
        self.weight = init.uniform((num_embeddings, dim), -bound, bound, rng)

    def __call__(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


class LSTM(Module):
    """Single-layer LSTM over a list of per-step batches.

    ``forward(steps, mask)`` takes ``steps`` as a list of ``(B, D)`` tensors
    and an optional ``(T, B)`` 0/1 mask; masked steps carry the previous
    state through unchanged, which is how variable-length temporal walks are
    batched.  Gate order is input, forget, cell, output; the forget-gate bias
    starts at 1 (standard remedy for vanishing memory).
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None):
        super().__init__()
        check_positive("input_size", input_size)
        check_positive("hidden_size", hidden_size)
        rng = ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = init.xavier_uniform((input_size, 4 * hidden_size), rng)
        self.w_hh = init.xavier_uniform((hidden_size, 4 * hidden_size), rng)
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def step(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One LSTM step for inputs ``x`` (B, D) and state ``(h, c)``."""
        hs = self.hidden_size
        z = x @ self.w_ih + h @ self.w_hh + self.bias
        i = z[:, 0:hs].sigmoid()
        f = z[:, hs : 2 * hs].sigmoid()
        g = z[:, 2 * hs : 3 * hs].tanh()
        o = z[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def __call__(self, steps, mask=None) -> tuple[list[Tensor], Tensor]:
        """Run the full sequence; returns (per-step outputs, final hidden)."""
        if not steps:
            raise ValueError("LSTM needs at least one input step")
        batch = steps[0].shape[0]
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs: list[Tensor] = []
        for t, x in enumerate(steps):
            h_new, c_new = self.step(x, h, c)
            if mask is not None:
                m = Tensor(mask[t].reshape(batch, 1))
                h = m * h_new + (1.0 - m) * h
                c = m * c_new + (1.0 - m) * c
            else:
                h, c = h_new, c_new
            outputs.append(h)
        return outputs, h


class StackedLSTM(Module):
    """Multi-layer LSTM — the paper's aggregator (2 layers by default)."""

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 2, rng=None):
        super().__init__()
        check_positive("num_layers", num_layers)
        rng = ensure_rng(rng)
        self.layers = [
            LSTM(input_size if i == 0 else hidden_size, hidden_size, rng)
            for i in range(num_layers)
        ]

    def __call__(self, steps, mask=None) -> tuple[list[Tensor], Tensor]:
        """Feed the sequence through every layer; final hidden is the summary."""
        outputs = steps
        final = None
        for layer in self.layers:
            outputs, final = layer(outputs, mask=mask)
        return outputs, final


class BatchNorm1d(Module):
    """Batch normalization over feature vectors (B, D).

    Uses batch statistics and updates running averages in training mode;
    uses the running averages at inference, as in Ioffe & Szegedy [33].
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        check_positive("num_features", num_features)
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = init.ones((num_features,))
        self.beta = init.zeros((num_features,))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def __call__(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input of shape (B, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.ravel()
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.ravel()
            )
            inv = (var + self.eps) ** -0.5
            normalized = centered * inv
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            inv = Tensor(1.0 / np.sqrt(self.running_var + self.eps).reshape(1, -1))
            normalized = (x - mean) * inv
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Feed-forward composition of layers/callables."""

    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def __call__(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LSTM",
    "StackedLSTM",
    "BatchNorm1d",
    "Sequential",
    "concat",
]
