"""Neural-network layers on top of the autograd engine.

Implements exactly the components Algorithm 1 of the paper requires:
``Embedding`` (the node-embedding table ``e_v``), ``Linear`` (the readout
``W·[H||e_x]``), ``LSTM``/``StackedLSTM`` (the two aggregators) and
``BatchNorm1d`` (the BN of lines 4 and 6).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.tensor import Tensor, apply_op, concat
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class Module:
    """Base class: parameter discovery, grad clearing, train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> list[Tensor]:
        """All trainable tensors of this module and its submodules."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def modules(self) -> list["Module"]:
        """This module and all nested submodules."""
        found: list[Module] = [self]
        for value in self.__dict__.values():
            found.extend(_collect_modules(value))
        return found

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        """Switch to training mode (affects BatchNorm)."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Switch to inference mode."""
        for m in self.modules():
            m.training = False
        return self

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.data.size for p in self.parameters())


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad:
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


def _collect_modules(value) -> list["Module"]:
    if isinstance(value, Module):
        return value.modules()
    if isinstance(value, (list, tuple)):
        out: list[Module] = []
        for item in value:
            out.extend(_collect_modules(item))
        return out
    return []


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng=None,
        dtype=np.float64,
    ):
        super().__init__()
        check_positive("in_features", in_features)
        check_positive("out_features", out_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = init.xavier_uniform((in_features, out_features), rng, dtype=dtype)
        self.bias = init.zeros((out_features,), dtype=dtype) if bias else None

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of node embeddings ``e_v``.

    The default initialization bound ``1/sqrt(dim)`` gives roughly unit-norm
    rows, so Euclidean distances between fresh embeddings are O(1) — the
    regime the attention (Eq. 3/4) and margin loss (Eq. 5-7) operate in.
    (word2vec-style models instead want the tiny ``0.5/dim`` bound; pass it
    via ``bound``.)
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng=None,
        bound: float | None = None,
        dtype=np.float64,
    ):
        super().__init__()
        check_positive("num_embeddings", num_embeddings)
        check_positive("dim", dim)
        self.num_embeddings = num_embeddings
        self.dim = dim
        if bound is None:
            bound = 1.0 / np.sqrt(dim)
        self.weight = init.uniform((num_embeddings, dim), -bound, bound, rng, dtype=dtype)

    def __call__(self, indices) -> Tensor:
        # Narrowed (int32) walk-batch ids index directly; anything else is
        # normalized to int64 first.
        indices = np.asarray(indices)
        if indices.dtype.kind != "i":
            indices = indices.astype(np.int64)
        return self.weight[indices]


class LSTM(Module):
    """Single-layer LSTM over a list of per-step batches.

    ``forward(steps, mask)`` takes ``steps`` as a list of ``(B, D)`` tensors
    and an optional ``(T, B)`` 0/1 mask; masked steps carry the previous
    state through unchanged, which is how variable-length temporal walks are
    batched.  Gate order is input, forget, cell, output; the forget-gate bias
    starts at 1 (standard remedy for vanishing memory).
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None, dtype=np.float64):
        super().__init__()
        check_positive("input_size", input_size)
        check_positive("hidden_size", hidden_size)
        rng = ensure_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.dtype = np.dtype(dtype)
        self.w_ih = init.xavier_uniform((input_size, 4 * hidden_size), rng, dtype=dtype)
        self.w_hh = init.xavier_uniform((hidden_size, 4 * hidden_size), rng, dtype=dtype)
        bias = np.zeros(4 * hidden_size, dtype=dtype)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Tensor(bias, requires_grad=True)

    def step(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One LSTM step for inputs ``x`` (B, D) and state ``(h, c)``."""
        hs = self.hidden_size
        z = x @ self.w_ih + h @ self.w_hh + self.bias
        i = z[:, 0:hs].sigmoid()
        f = z[:, hs : 2 * hs].sigmoid()
        g = z[:, 2 * hs : 3 * hs].tanh()
        o = z[:, 3 * hs : 4 * hs].sigmoid()
        c_new = f * c + i * g
        h_new = o * c_new.tanh()
        return h_new, c_new

    def __call__(self, steps, mask=None) -> tuple[list[Tensor], Tensor]:
        """Run the full sequence; returns (per-step outputs, final hidden)."""
        if not steps:
            raise ValueError("LSTM needs at least one input step")
        batch = steps[0].shape[0]
        h = Tensor(np.zeros((batch, self.hidden_size), dtype=self.dtype))
        c = Tensor(np.zeros((batch, self.hidden_size), dtype=self.dtype))
        outputs: list[Tensor] = []
        for t, x in enumerate(steps):
            h_new, c_new = self.step(x, h, c)
            if mask is not None:
                m = Tensor(np.asarray(mask[t], dtype=self.dtype).reshape(batch, 1))
                h = m * h_new + (1.0 - m) * h
                c = m * c_new + (1.0 - m) * c
            else:
                h, c = h_new, c_new
            outputs.append(h)
        return outputs, h


class StackedLSTM(Module):
    """Multi-layer LSTM — the paper's aggregator (2 layers by default).

    ``__call__`` is the stepwise *reference* implementation: one autograd
    node per op per timestep per layer.  :meth:`fused` runs the same
    recurrence through :func:`fused_stacked_lstm` — a single autograd node
    with a hand-derived BPTT backward — and is gradcheck-verified against
    this reference in ``tests/nn/test_fused_lstm.py``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 2,
        rng=None,
        dtype=np.float64,
    ):
        super().__init__()
        check_positive("num_layers", num_layers)
        rng = ensure_rng(rng)
        self.layers = [
            LSTM(input_size if i == 0 else hidden_size, hidden_size, rng, dtype=dtype)
            for i in range(num_layers)
        ]

    def __call__(self, steps, mask=None) -> tuple[list[Tensor], Tensor]:
        """Feed the sequence through every layer; final hidden is the summary."""
        outputs = steps
        final = None
        for layer in self.layers:
            outputs, final = layer(outputs, mask=mask)
        return outputs, final

    def fused(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """Final hidden state via the single-node fused BPTT kernel.

        ``x`` is the whole sequence as one ``(B, T, D)`` tensor and ``mask``
        an optional ``(B, T)`` 0/1 validity array; equivalent to
        ``self([x[:, t] for t in range(T)], mask.T)[1]`` step for step.
        """
        return fused_stacked_lstm(x, self.layers, mask=mask)


def fused_stacked_lstm(x: Tensor, layers: list[LSTM], mask: np.ndarray | None = None) -> Tensor:
    """Masked multi-layer LSTM as **one** autograd node.

    Forward runs the full recurrence in a plain numpy loop (per-step matmuls
    in the same order as :meth:`LSTM.step`, so outputs match the stepwise
    reference bit for bit) while recording the gate activations and carried
    states; backward is a hand-derived backpropagation-through-time sweep —
    layers top-down, timesteps in reverse — that accumulates gradients for
    the input and every weight in a handful of array ops per step instead of
    a long chain of per-op closures.

    Parameters
    ----------
    x:
        ``(B, T, D)`` input sequence (``D`` = input size of ``layers[0]``).
    layers:
        The :class:`LSTM` layers, applied bottom to top; layer ``l``'s
        per-step *carried* outputs feed layer ``l + 1``.
    mask:
        Optional ``(B, T)`` 0/1 array; masked steps carry ``(h, c)`` through
        unchanged in every layer, exactly like the stepwise path.

    Returns the final carried hidden state of the top layer, ``(B, H)``.
    """
    if x.ndim != 3:
        raise ValueError(f"fused LSTM expects (B, T, D) input, got {x.shape}")
    batch, steps, _ = x.shape
    real = x.data.dtype  # the policy dtype threads through every buffer
    if mask is not None:
        mask = np.asarray(mask, dtype=real)
        if mask.shape != (batch, steps):
            raise ValueError(
                f"mask shape {mask.shape} must be (B, T) = {(batch, steps)}"
            )

    hs = layers[0].hidden_size
    n_layers = len(layers)
    # Per-layer forward tapes for the backward sweep.
    tape_x: list[np.ndarray] = []  # (T, B, D_l) inputs of each layer
    tape_gates: list[np.ndarray] = []  # (T, B, 4H) post-nonlinearity gates
    tape_tc: list[np.ndarray] = []  # (T, B, H) tanh of pre-mask cell states
    tape_carry_h: list[np.ndarray] = []  # (T, B, H) carried hidden states
    tape_carry_c: list[np.ndarray] = []  # (T, B, H) carried cell states

    if mask is None:
        m_col = m_inv = None
    else:
        m_col = np.ascontiguousarray(mask.T).reshape(steps, batch, 1)
        m_inv = 1.0 - m_col

    inp = np.ascontiguousarray(np.swapaxes(x.data, 0, 1))  # (T, B, D)
    for layer in layers:
        w_ih, w_hh, bias = layer.w_ih.data, layer.w_hh.data, layer.bias.data
        gates = np.empty((steps, batch, 4 * hs), dtype=real)
        tc_seq = np.empty((steps, batch, hs), dtype=real)
        h_seq = np.empty((steps, batch, hs), dtype=real)
        c_seq = np.empty((steps, batch, hs), dtype=real)
        h = np.zeros((batch, hs), dtype=real)
        c = np.zeros((batch, hs), dtype=real)
        for t in range(steps):
            # Same association order as LSTM.step: (x@Wih + h@Whh) + bias.
            z = inp[t] @ w_ih
            z += h @ w_hh
            z += bias
            gz = gates[t]
            _sigmoid(z[:, : 2 * hs], out=gz[:, : 2 * hs])  # i, f
            _sigmoid(z[:, 3 * hs :], out=gz[:, 3 * hs :])  # o
            np.tanh(z[:, 2 * hs : 3 * hs], out=gz[:, 2 * hs : 3 * hs])
            i = gz[:, 0:hs]
            f = gz[:, hs : 2 * hs]
            g = gz[:, 2 * hs : 3 * hs]
            o = gz[:, 3 * hs : 4 * hs]
            if m_col is not None:
                c_new = f * c  # (f*c) + (i*g), in place
                c_new += i * g
                np.tanh(c_new, out=tc_seq[t])
                h_new = o * tc_seq[t]
                np.multiply(m_col[t], h_new, out=h_seq[t])
                h_seq[t] += m_inv[t] * h
                np.multiply(m_col[t], c_new, out=c_seq[t])
                c_seq[t] += m_inv[t] * c
            else:
                np.multiply(f, c, out=c_seq[t])
                c_seq[t] += i * g
                np.tanh(c_seq[t], out=tc_seq[t])
                np.multiply(o, tc_seq[t], out=h_seq[t])
            h = h_seq[t]
            c = c_seq[t]
        tape_x.append(inp)
        tape_gates.append(gates)
        tape_tc.append(tc_seq)
        tape_carry_h.append(h_seq)
        tape_carry_c.append(c_seq)
        inp = h_seq  # carried outputs feed the next layer

    final = tape_carry_h[-1][steps - 1]

    def backward(g_final: np.ndarray) -> None:
        # d_out[t]: gradient on layer l's carried output h_t from the layer
        # above; None for the top layer, whose only downstream gradient is
        # g_final on the final carried state.
        d_out = None
        for li in range(n_layers - 1, -1, -1):
            layer = layers[li]
            w_ih, w_hh = layer.w_ih.data, layer.w_hh.data
            gates = tape_gates[li]
            tc_seq = tape_tc[li]
            h_seq = tape_carry_h[li]
            c_seq = tape_carry_c[li]
            xs = tape_x[li]
            # One vectorized pass over the whole tape for the gate-derivative
            # factors; the trailing multiplication order per step is unchanged
            # (same rounding as the stepwise reference).
            gi = gates[:, :, 0:hs]
            gf = gates[:, :, hs : 2 * hs]
            ggg = gates[:, :, 2 * hs : 3 * hs]
            go = gates[:, :, 3 * hs : 4 * hs]
            om_i = 1.0 - gi
            om_f = 1.0 - gf
            om_g2 = 1.0 - ggg * ggg
            om_o = 1.0 - go
            om_tc2 = 1.0 - tc_seq * tc_seq
            d_in = np.empty_like(xs)
            d_w_ih = np.zeros_like(w_ih) if layer.w_ih.requires_grad else None
            d_w_hh = np.zeros_like(w_hh) if layer.w_hh.requires_grad else None
            d_bias = (
                np.zeros_like(layer.bias.data) if layer.bias.requires_grad else None
            )
            dh = np.zeros((batch, hs), dtype=real)  # recurrent grad on carried h_t
            dc = np.zeros((batch, hs), dtype=real)  # recurrent grad on carried c_t
            # Scratch buffers reused across steps; every slot is fully
            # rewritten before it is read in each iteration.  All in-place
            # chains keep the reference's left-to-right association.
            dz = np.empty((batch, 4 * hs), dtype=real)
            b_hnew = np.empty((batch, hs), dtype=real)
            b_hskip = np.empty((batch, hs), dtype=real)
            b_cnew = np.empty((batch, hs), dtype=real)
            b_cskip = np.empty((batch, hs), dtype=real)
            b_do = np.empty((batch, hs), dtype=real)
            b_tmp = np.empty((batch, hs), dtype=real)
            for t in range(steps - 1, -1, -1):
                if d_out is not None:
                    dh_total = dh + d_out[t]
                elif t == steps - 1:
                    dh_total = g_final
                else:
                    dh_total = dh
                if m_col is not None:
                    dh_new = np.multiply(m_col[t], dh_total, out=b_hnew)
                    np.multiply(m_inv[t], dh_total, out=b_hskip)
                    dc_new = np.multiply(m_col[t], dc, out=b_cnew)
                    np.multiply(m_inv[t], dc, out=b_cskip)
                else:
                    dh_new = dh_total
                    np.copyto(b_cnew, dc)
                    dc_new = b_cnew
                i = gi[t]
                f = gf[t]
                gg = ggg[t]
                o = go[t]
                do = np.multiply(dh_new, tc_seq[t], out=b_do)
                # dc_new += ((dh_new * o) * om_tc2), left to right
                np.multiply(dh_new, o, out=b_tmp)
                b_tmp *= om_tc2[t]
                dc_new += b_tmp
                c_prev = c_seq[t - 1] if t > 0 else 0.0
                h_prev = h_seq[t - 1] if t > 0 else None
                np.multiply(dc_new, gg, out=b_tmp)
                b_tmp *= i
                np.multiply(b_tmp, om_i[t], out=dz[:, 0:hs])
                np.multiply(dc_new, c_prev, out=b_tmp)
                b_tmp *= f
                np.multiply(b_tmp, om_f[t], out=dz[:, hs : 2 * hs])
                np.multiply(dc_new, i, out=b_tmp)
                np.multiply(b_tmp, om_g2[t], out=dz[:, 2 * hs : 3 * hs])
                np.multiply(do, o, out=b_tmp)
                np.multiply(b_tmp, om_o[t], out=dz[:, 3 * hs : 4 * hs])
                np.matmul(dz, w_ih.T, out=d_in[t])
                if d_w_ih is not None:
                    d_w_ih += xs[t].T @ dz
                if d_w_hh is not None and h_prev is not None:
                    d_w_hh += h_prev.T @ dz
                if d_bias is not None:
                    d_bias += dz.sum(axis=0)
                np.matmul(dz, w_hh.T, out=dh)
                np.multiply(dc_new, f, out=dc)
                if m_col is not None:
                    dh += b_hskip
                    dc += b_cskip
            if d_w_ih is not None:
                layer.w_ih._accumulate(d_w_ih)
            if d_w_hh is not None:
                layer.w_hh._accumulate(d_w_hh)
            if d_bias is not None:
                layer.bias._accumulate(d_bias)
            d_out = d_in  # becomes the layer below's per-step output grad
        if x.requires_grad:
            x._accumulate(np.swapaxes(d_out, 0, 1))

    parents = [x]
    for layer in layers:
        parents.extend([layer.w_ih, layer.w_hh, layer.bias])
    return apply_op(final, parents, backward)


def _sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic, branchless.

    Bitwise-identical to :meth:`Tensor.sigmoid` (which splits on sign with
    boolean indexing): with ``e = exp(-|x|)``, the positive branch
    ``1 / (1 + exp(-x))`` and the negative branch ``exp(x) / (1 + exp(x))``
    are both exactly ``select(x >= 0, 1/(1+e), e/(1+e))`` — same exponent
    argument, same division — but evaluated without gather/scatter copies.
    """
    e = np.abs(x)
    np.negative(e, out=e)
    np.exp(e, out=e)
    num = np.where(x >= 0, 1.0, e)
    e += 1.0  # e becomes the shared denominator
    if out is None:
        return np.divide(num, e)
    np.divide(num, e, out=out)
    return out


class BatchNorm1d(Module):
    """Batch normalization over feature vectors (B, D).

    Uses batch statistics and updates running averages in training mode;
    uses the running averages at inference, as in Ioffe & Szegedy [33].
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.1,
        eps: float = 1e-5,
        dtype=np.float64,
    ):
        super().__init__()
        check_positive("num_features", num_features)
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = init.ones((num_features,), dtype=dtype)
        self.beta = init.zeros((num_features,), dtype=dtype)
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)
        #: When set to a list, every training forward appends its batch
        #: ``(mean, var)`` here.  The data-parallel trainer uses this to
        #: replay a shard's running-average updates on the leader — a log
        #: (not a single capture) because one training step may run this
        #: layer more than once (temporal and static aggregation parts).
        self.stats_log: list | None = None

    def __call__(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected input of shape (B, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            if self.stats_log is not None:
                self.stats_log.append((mean.data.ravel(), var.data.ravel()))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.ravel()
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.ravel()
            )
            inv = (var + self.eps) ** -0.5
            normalized = centered * inv
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            inv = Tensor(1.0 / np.sqrt(self.running_var + self.eps).reshape(1, -1))
            normalized = (x - mean) * inv
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Feed-forward composition of layers/callables."""

    def __init__(self, *layers):
        super().__init__()
        self.layers = list(layers)

    def __call__(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "LSTM",
    "StackedLSTM",
    "BatchNorm1d",
    "Sequential",
    "concat",
]
