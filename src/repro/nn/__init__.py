"""From-scratch numpy neural-network substrate (autograd, layers, optim).

Replaces the PyTorch stack the paper's implementation would use; see
DESIGN.md's substitution table.
"""

from repro.nn.dtypes import (
    FLOAT32,
    FLOAT64,
    PRECISIONS,
    Precision,
    UnknownPrecisionError,
    get_precision,
)
from repro.nn.gradcheck import check_gradients, numerical_gradient
from repro.nn.layers import (
    BatchNorm1d,
    Embedding,
    Linear,
    LSTM,
    Module,
    Sequential,
    StackedLSTM,
    fused_stacked_lstm,
)
from repro.nn.optim import Adam, SGD
from repro.nn.tensor import (
    Tensor,
    apply_op,
    concat,
    softmax,
    squared_distance,
    stack,
)

__all__ = [
    "Precision",
    "UnknownPrecisionError",
    "FLOAT64",
    "FLOAT32",
    "PRECISIONS",
    "get_precision",
    "Tensor",
    "apply_op",
    "concat",
    "stack",
    "softmax",
    "squared_distance",
    "Module",
    "Linear",
    "Embedding",
    "LSTM",
    "StackedLSTM",
    "fused_stacked_lstm",
    "BatchNorm1d",
    "Sequential",
    "SGD",
    "Adam",
    "check_gradients",
    "numerical_gradient",
]
