"""Finite-difference gradient checking for the autograd engine.

Used heavily by ``tests/nn`` to certify that every op and layer backward
matches central differences — the substitute for trusting a mature framework.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def numerical_gradient(fn, tensor: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn().data)
        flat[i] = orig - eps
        minus = float(fn().data)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn,
    tensors: list[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
    precision=None,
) -> float:
    """Compare autograd gradients of scalar ``fn()`` against finite differences.

    ``precision`` (a :class:`repro.nn.dtypes.Precision` or policy name)
    overrides ``eps``/``atol``/``rtol`` with the policy's tolerances —
    central differences in ``float32`` carry ~1e-3 relative noise, so the
    fast mode's checks must run looser than the ``float64`` defaults.

    Returns the worst absolute error; raises ``AssertionError`` on mismatch.
    """
    if precision is not None:
        from repro.nn.dtypes import get_precision

        policy = get_precision(precision)
        eps = policy.gradcheck_eps
        atol = policy.gradcheck_atol
        rtol = policy.gradcheck_rtol
    for t in tensors:
        t.zero_grad()
    out = fn()
    if out.data.size != 1:
        raise ValueError("check_gradients requires a scalar function")
    out.backward()
    worst = 0.0
    for t in tensors:
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, t, eps=eps)
        err = np.max(np.abs(analytic - numeric))
        worst = max(worst, float(err))
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            raise AssertionError(
                f"gradient mismatch: max |analytic - numeric| = {err:.3e}"
            )
    return worst
