"""Sharded walk generation over a shared-memory graph.

:class:`ParallelWalkEngine` fans a walk request out over fixed-size shards
of the start nodes.  Each shard runs an ordinary
:class:`~repro.walks.engine.BatchedWalkEngine` — in this process
(``num_workers <= 1``) or on a persistent spawn pool whose workers attached
the graph's shared segment once at startup (``num_workers >= 2``) — and the
shard batches are reassembled in shard order with
:func:`~repro.walks.base.concat_walk_batches`.

**Determinism.**  The shard layout depends only on the request and
``shard_size`` (never the worker count), and shard ``i`` draws from the
substream ``SeedSequence(entropy=(step_seed, i))``.  So for a fixed seed the
reassembled :class:`~repro.walks.base.WalkBatch` is bitwise-identical across
any worker count, including the inline path — what changes with workers is
wall-clock only.  The batches differ from a *single* engine call with one
stream (that interleaves all walks in one lockstep loop); the sharded
layout is its own deterministic sampling scheme.
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.pool import _WORKER, shard_ranges, shard_rng, spawn_pool
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative, check_positive
from repro.walks.base import WalkBatch, concat_walk_batches
from repro.walks.engine import BatchedWalkEngine


def _init_walk_worker(handle, engine_kwargs: dict) -> None:
    """Pool initializer: attach the graph, build this worker's engine once."""
    graph = TemporalGraph.from_handle(handle)
    _WORKER["walk_graph"] = graph
    _WORKER["walk_engine"] = BatchedWalkEngine(graph, **engine_kwargs)


def _run_shard(
    engine: BatchedWalkEngine,
    kind: str,
    nodes: np.ndarray,
    anchors,
    num_walks: int,
    length: int,
    step_seed: int,
    shard_idx: int,
    include_context: bool,
    chronological: bool,
) -> WalkBatch:
    """One shard's walks on its own RNG substream (leader or worker side)."""
    rng = shard_rng(step_seed, shard_idx)
    if kind == "temporal":
        return engine.temporal_walk_batch(
            nodes,
            anchors,
            num_walks,
            length,
            rng,
            include_context=include_context,
            chronological=chronological,
        )
    return engine.uniform_walk_batch(
        nodes, num_walks, length, rng, chronological=chronological
    )


def _pool_shard(*args) -> WalkBatch:
    """Pool task: run a shard on this worker's persistent engine."""
    return _run_shard(_WORKER["walk_engine"], *args)


class ParallelWalkEngine:
    """Walk-batch generation sharded across processes (or inline).

    Parameters
    ----------
    graph:
        Any :class:`~repro.graph.TemporalGraph`; non-shared backends are
        converted with ``to_shared()`` (the engine owns — and on
        :meth:`close` unlinks — that conversion's segment).
    num_workers:
        ``<= 1`` runs every shard inline (no pool, same math);
        ``>= 2`` runs shards on that many persistent spawn workers.
    shard_size:
        Start nodes per shard — with ``shard_size >= len(nodes)`` a request
        is one shard.  Part of the sampling scheme: changing it changes
        which substream a node's walks draw from (worker counts do not).
    p, q, decay, real_dtype, candidate_cap:
        Forwarded to every :class:`~repro.walks.engine.BatchedWalkEngine`.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        num_workers: int = 0,
        shard_size: int = 1024,
        p: float = 1.0,
        q: float = 1.0,
        decay: float = 1.0,
        real_dtype=np.float64,
        candidate_cap: int = 0,
    ):
        check_non_negative("num_workers", num_workers)
        check_positive("shard_size", shard_size)
        if graph.storage_backend != "shared":
            self._graph = graph.to_shared()
            self._own_graph = True
        else:
            self._graph = graph
            self._own_graph = False
        self.num_workers = int(num_workers)
        self.shard_size = int(shard_size)
        engine_kwargs = dict(
            p=p,
            q=q,
            decay=decay,
            real_dtype=np.dtype(real_dtype).str,
            candidate_cap=candidate_cap,
        )
        self._local = BatchedWalkEngine(self._graph, **engine_kwargs)
        self._pool = (
            spawn_pool(
                self.num_workers,
                _init_walk_worker,
                (self._graph.shared_handle, engine_kwargs),
            )
            if self.num_workers >= 2
            else None
        )

    @property
    def graph(self) -> TemporalGraph:
        """The shared-memory graph the shards walk on."""
        return self._graph

    def temporal_walk_batch(
        self,
        nodes,
        anchors,
        num_walks: int,
        length: int,
        seed=None,
        include_context: bool = False,
        chronological: bool = True,
    ) -> WalkBatch:
        """Sharded :meth:`BatchedWalkEngine.temporal_walk_batch`.

        ``seed`` may be an int, a generator (one draw is consumed), or
        ``None`` (nondeterministic).  Same seed → bitwise-same batch for
        every worker count.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        anchors = np.asarray(anchors, dtype=np.float64)
        if anchors.shape != nodes.shape:
            raise ValueError(f"anchors shape {anchors.shape} != nodes shape {nodes.shape}")
        return self._batch("temporal", nodes, anchors, num_walks, length, seed,
                           include_context, chronological)

    def uniform_walk_batch(
        self,
        nodes,
        num_walks: int,
        length: int,
        seed=None,
        chronological: bool = True,
    ) -> WalkBatch:
        """Sharded :meth:`BatchedWalkEngine.uniform_walk_batch`."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self._batch("uniform", nodes, None, num_walks, length, seed,
                           False, chronological)

    def _batch(self, kind, nodes, anchors, num_walks, length, seed,
               include_context, chronological) -> WalkBatch:
        if nodes.size == 0:
            raise ValueError("walk batch needs at least one start node")
        step_seed = int(ensure_rng(seed).integers(2**63 - 1))
        tasks = [
            (
                kind,
                nodes[lo:hi],
                None if anchors is None else anchors[lo:hi],
                num_walks,
                length,
                step_seed,
                shard_idx,
                include_context,
                chronological,
            )
            for shard_idx, (lo, hi) in enumerate(shard_ranges(nodes.size, self.shard_size))
        ]
        if self._pool is None:
            batches = [_run_shard(self._local, *t) for t in tasks]
        else:
            futures = [self._pool.submit(_pool_shard, *t) for t in tasks]
            batches = [f.result() for f in futures]
        return concat_walk_batches(batches)

    def close(self) -> None:
        """Shut the pool down; unlink the graph segment if this engine owns it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._own_graph:
            self._graph.storage.close()

    def __enter__(self) -> "ParallelWalkEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
