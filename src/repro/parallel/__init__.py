"""Multi-core data parallelism over a shared-memory graph.

Workers attach the leader's :class:`~repro.storage.SharedMemoryStorage`
segment zero-copy via a picklable handle; training state crosses the
process boundary as (graph handle, flat parameter snapshot, RNG seed) — the
isolation seam :mod:`repro.core.params` provides.  Three front doors:

- :class:`ParallelWalkEngine` — sharded walk generation, bitwise
  worker-count-invariant (``repro.parallel.walks``).
- ``fit_data_parallel`` — synchronous shard-averaged EHNA training, wired
  behind ``EHNAConfig.num_workers`` (``repro.parallel.trainer``).
- ``hogwild_train_corpus`` — lock-free shared-table training for the
  skip-gram baselines, wired behind ``train_corpus(num_workers=...)``
  (``repro.parallel.hogwild``).

See docs/architecture.md ("Using every core") for the worker lifecycle and
the sync-vs-hogwild tradeoffs.
"""

from repro.parallel.hogwild import hogwild_train_corpus
from repro.parallel.pool import shard_ranges, shard_rng, shard_seed_seq, spawn_pool
from repro.parallel.state import SharedParams
from repro.parallel.trainer import fit_data_parallel
from repro.parallel.walks import ParallelWalkEngine

__all__ = [
    "ParallelWalkEngine",
    "SharedParams",
    "fit_data_parallel",
    "hogwild_train_corpus",
    "shard_ranges",
    "shard_rng",
    "shard_seed_seq",
    "spawn_pool",
]
