"""Shared-memory parameter state: one flat vector, visible to every worker.

The sync trainer's parameter broadcast is not a broadcast at all: the
leader rebinds its :class:`~repro.core.params.FlatParams` onto a *writable*
view of a shared segment, workers rebind theirs onto read-only views of the
same bytes, and every ``FlatAdam.step`` on the leader is instantly visible
to all workers with zero copies and zero messages.

This module is one of the two sanctioned shared-write sites (with the
Hogwild weight tables) under reprolint rule PAR001: outside
``repro/parallel``, shared-memory arrays stay read-only.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import FlatParams
from repro.storage.shared import PackHandle, SharedArrayPack


class SharedParams:
    """A flat parameter vector living in a shared-memory segment."""

    _ARRAY = "params"

    def __init__(self, pack: SharedArrayPack):
        self._pack = pack

    @classmethod
    def create(cls, flat: FlatParams) -> "SharedParams":
        """Snapshot ``flat``'s current values into a fresh segment (leader)."""
        pack = SharedArrayPack.create({cls._ARRAY: flat.data})
        return cls(pack)

    @classmethod
    def attach(cls, handle: PackHandle) -> "SharedParams":
        """Map a leader's parameter segment (worker side)."""
        return cls(SharedArrayPack.attach(handle))

    @property
    def handle(self) -> PackHandle:
        return self._pack.handle

    @property
    def closed(self) -> bool:
        return self._pack.closed

    def writable(self) -> np.ndarray:
        """The leader's live, writable view (PAR001-sanctioned)."""
        return self._pack.array(self._ARRAY, writable=True)

    def readonly(self) -> np.ndarray:
        """A worker's read-only view of the same bytes."""
        return self._pack.array(self._ARRAY)

    def close(self) -> None:
        """Release the mapping (owner: unlink); idempotent.

        The leader must ``flat.rebind(flat.data.copy())`` first — tensors
        still viewing the segment would go stale with it.
        """
        self._pack.close()
