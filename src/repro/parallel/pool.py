"""Worker-pool plumbing shared by the parallel walk engine and trainers.

Three pieces, all deliberately small:

- :func:`spawn_pool` — a persistent ``ProcessPoolExecutor`` over the
  **spawn** start method.  Spawn (not fork) because the leader may hold
  threaded-BLAS state and live shared-memory mappings that are unsafe to
  fork; workers import fresh and attach to shared segments via picklable
  handles instead of inheriting memory.
- :func:`shard_ranges` — the fixed sharding of an index space.  Shards are
  a function of the *workload and config only* (never of the worker
  count), so the per-shard RNG substreams and the leader's shard-order
  reduction are identical no matter how many workers exist — the
  worker-count-invariance property the determinism tests pin.
- :func:`shard_seed_seq` — the per-shard child RNG: seeded from
  ``SeedSequence(entropy=(step_seed, shard_idx))``, where ``step_seed`` is
  one draw from the leader's stream per step.  Shards never share a stream
  and never consume the leader's stream beyond that single draw.

``_WORKER`` is the per-process registry worker initializers populate
(attached graph, model, engine); pool tasks read it instead of re-building
state per task — that is what makes the pool *persistent*.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.utils.validation import check_positive

#: Per-worker-process state, populated by pool initializers: the attached
#: graph/engine/model live here for the lifetime of the worker, so tasks
#: pay attach-and-build costs once, not per task.
_WORKER: dict = {}


def spawn_pool(num_workers: int, initializer, initargs=()) -> ProcessPoolExecutor:
    """A persistent spawn-method pool with initialized workers."""
    check_positive("num_workers", num_workers)
    return ProcessPoolExecutor(
        max_workers=int(num_workers),
        mp_context=mp.get_context("spawn"),
        initializer=initializer,
        initargs=tuple(initargs),
    )


def shard_ranges(total: int, shard_size: int) -> list:
    """Contiguous ``(lo, hi)`` shards of ``range(total)``.

    The layout depends only on ``total`` and ``shard_size`` — see the
    module docstring for why worker counts must not enter here.
    """
    check_positive("shard_size", shard_size)
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    return [(lo, min(lo + shard_size, total)) for lo in range(0, total, shard_size)]


def shard_seed_seq(step_seed: int, shard_idx: int) -> np.random.SeedSequence:
    """The deterministic child seed of shard ``shard_idx`` at ``step_seed``."""
    return np.random.SeedSequence(entropy=(int(step_seed), int(shard_idx)))


def shard_rng(step_seed: int, shard_idx: int) -> np.random.Generator:
    """A fresh generator on the shard's substream (see :func:`shard_seed_seq`)."""
    return np.random.default_rng(shard_seed_seq(step_seed, shard_idx))
