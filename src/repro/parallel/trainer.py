"""Synchronous data-parallel EHNA training.

One training step is split into ``config.parallel_shards`` shards of the
edge batch.  Every shard runs the full fused step math — temporal walks,
two-level aggregation, margin loss, backward — on its own RNG substream
(``SeedSequence(entropy=(step_seed, shard_idx))``), producing a gradient
contribution, a per-shard loss, and a log of its batch-norm statistics.
The leader reduces shard gradients in shard order (weighted by shard size),
replays the batch-norm running-average updates in the same order, and takes
one :class:`~repro.core.params.FlatAdam` step on the flat parameter vector.

**What crosses the process boundary.**  Down: the graph's
:class:`~repro.storage.PackHandle`, the parameter segment's handle, and the
config dict — once, at pool startup; then per shard only ``(edge_ids,
step_seed, shard_idx)``.  Up: sparse embedding-gradient rows, the dense
network gradient, the BN logs and the loss.  Parameters never move: workers
read the leader's live flat vector through the shared segment, so each
``FlatAdam.step`` is visible to every worker by the next shard.

**Determinism.**  The shard layout, substreams and reduction order are all
functions of the config — not of the worker count — so sync trajectories
are *worker-count-invariant*: ``num_workers=0`` (every shard inline, no
pool — the cheap bitwise comparator), 2, 4, 8 ... produce bitwise-equal
losses and parameters at a fixed seed.  They are intentionally *not*
bitwise-equal to the legacy ``num_workers=1`` path, whose batch-norm
statistics and RNG stream are whole-batch rather than per-shard; both are
faithful EHNA estimators (tests pin AUC agreement).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import FlatAdam, FlatParams, ParamGroup
from repro.core.trainer import Trainer, with_verbose
from repro.graph.temporal_graph import TemporalGraph
from repro.parallel.pool import _WORKER, shard_rng, spawn_pool
from repro.parallel.state import SharedParams


def _make_flat_adam(model, flat: FlatParams) -> FlatAdam:
    """The flat twin of ``EHNA._make_optimizers`` (same lrs, clip, betas)."""
    cfg = model.config
    network_lr = cfg.network_lr if cfg.network_lr is not None else cfg.lr / 20.0
    clip = cfg.grad_clip if cfg.grad_clip > 0 else None
    emb = flat.slice_of("embedding")
    groups = [ParamGroup("embedding", emb.start, emb.stop, lr=cfg.lr, clip=clip)]
    if emb.stop < flat.size:
        groups.append(
            ParamGroup("network", emb.stop, flat.size, lr=network_lr, clip=clip)
        )
    return FlatAdam(flat, groups)


def _shard_step(model, edge_ids: np.ndarray, step_seed: int, shard_idx: int) -> dict:
    """One shard's forward/backward; leaves the model's state untouched.

    Mirrors ``EHNA._train_batch_one_pass`` with an explicit per-shard RNG
    instead of the model stream.  Batch-norm running statistics are
    snapshotted and restored around the forward — the shard only *logs*
    its batch statistics (via ``BatchNorm1d.stats_log``) for the leader to
    replay, so inline and pooled execution leave identical leader state.
    """
    cfg = model.config
    graph = model.graph
    rng = shard_rng(step_seed, shard_idx)
    edge_ids = np.asarray(edge_ids, dtype=np.int64)
    xs = graph.src[edge_ids]
    ys = graph.dst[edge_ids]
    ts = graph.time[edge_ids]
    b = edge_ids.size
    q = cfg.num_negatives

    neg_x = model.sampler.sample((b, q), rng, exclude_x=xs, exclude_y=ys)
    neg_y = (
        model.sampler.sample((b, q), rng, exclude_x=xs, exclude_y=ys)
        if cfg.bidirectional
        else None
    )
    neg_t = np.repeat(ts, q)
    targets = [xs, ys, neg_x.ravel()]
    anchor = [ts, ts, neg_t]
    if neg_y is not None:
        targets.append(neg_y.ravel())
        anchor.append(neg_t)

    bns = model._batch_norms()
    saved = [(bn.running_mean, bn.running_var) for bn in bns]
    for bn in bns:
        bn.stats_log = []
    try:
        z = model._grouped_aggregate(
            np.concatenate(targets), np.concatenate(anchor), rng=rng
        )
        z_x, z_y = z[0:b], z[b : 2 * b]
        zn_x = z[2 * b : 2 * b + b * q].reshape((b, q, cfg.dim))
        zn_y = (
            z[2 * b + b * q : 2 * b + 2 * b * q].reshape((b, q, cfg.dim))
            if neg_y is not None
            else None
        )
        from repro.core.loss import margin_hinge_loss

        loss = margin_hinge_loss(
            z_x, z_y, zn_x, cfg.margin, neg_y=zn_y, metric=cfg.objective
        )
        model.embedding.zero_grad()
        model.aggregator.zero_grad()
        loss.backward()
        logs = [bn.stats_log for bn in bns]
    finally:
        for bn, (mean, var) in zip(bns, saved):
            bn.stats_log = None
            bn.running_mean = mean
            bn.running_var = var

    emb_grad = model.embedding.weight.grad
    real = emb_grad.dtype
    rows = np.flatnonzero(np.any(emb_grad, axis=1))
    net_parts = [
        (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
        for p in model.aggregator.parameters()
    ]
    net = np.concatenate(net_parts) if net_parts else np.zeros(0, dtype=real)
    return {
        "rows": rows,
        "emb": emb_grad[rows].copy(),
        "net": net,
        "bn": logs,
        "loss": float(loss.item()),
        "count": int(b),
    }


def _reduce_and_step(model, flat: FlatParams, opt: FlatAdam, results: list) -> float:
    """Shard-order weighted gradient average + BN replay + one Adam step."""
    total = sum(r["count"] for r in results)
    grad = np.zeros(flat.size, dtype=flat.dtype)
    emb_sl = flat.slice_of("embedding")
    emb_view = grad[emb_sl].reshape(model.embedding.weight.data.shape)
    bns = model._batch_norms()
    loss = 0.0
    for r in results:
        w = r["count"] / total
        emb_view[r["rows"]] += w * r["emb"]
        grad[emb_sl.stop :] += w * r["net"]
        for bn, entries in zip(bns, r["bn"]):
            for mean, var in entries:
                bn.running_mean = (
                    (1 - bn.momentum) * bn.running_mean + bn.momentum * mean
                )
                bn.running_var = (
                    (1 - bn.momentum) * bn.running_var + bn.momentum * var
                )
        loss += w * r["loss"]
    opt.step(grad)
    return loss


def _init_train_worker(graph_handle, params_handle, config: dict) -> None:
    """Pool initializer: attach graph + parameter segment, build the model.

    The worker's freshly initialized parameters are immediately rebound to
    read-only views of the leader's shared vector, so its init draws are
    throwaway; its RNG is never consumed either (shard steps carry explicit
    substream generators).
    """
    from repro.core.config import EHNAConfig
    from repro.core.model import EHNA

    graph = TemporalGraph.from_handle(graph_handle)
    model = EHNA(config=EHNAConfig(**config))
    model._build_runtime(graph, rng=np.random.default_rng(0))
    flat = FlatParams(model._named_parameters())
    shared = SharedParams.attach(params_handle)
    flat.rebind(shared.readonly())
    model.aggregator.train()
    _WORKER["train_graph"] = graph
    _WORKER["train_model"] = model
    _WORKER["train_flat"] = flat
    _WORKER["train_shared"] = shared


def _pool_shard_step(edge_ids: np.ndarray, step_seed: int, shard_idx: int) -> dict:
    """Pool task: run a shard on this worker's persistent model."""
    return _shard_step(_WORKER["train_model"], edge_ids, step_seed, shard_idx)


def fit_data_parallel(model, graph: TemporalGraph, verbose: bool = False, callbacks=()):
    """Train ``model`` on ``graph`` with sharded sync gradients.

    The entry point ``EHNA.fit`` dispatches to when
    ``config.num_workers != 1``.  ``num_workers=0`` runs every shard inline
    (no pool, no shared segments) with math identical to the pooled path;
    ``num_workers >= 2`` places graph and parameters in shared memory and
    fans shards out over a persistent spawn pool.
    """
    cfg = model.config
    if cfg.parallel != "sync":
        raise ValueError(
            f"EHNA data-parallel training requires parallel='sync'; "
            f"{cfg.parallel!r} is reserved for the skip-gram baselines"
        )
    model._build_runtime(graph)
    flat = FlatParams(model._named_parameters())
    opt = _make_flat_adam(model, flat)

    pool = None
    shared = None
    shared_graph = None
    try:
        if cfg.num_workers >= 2:
            shared_graph = graph if graph.storage_backend == "shared" else graph.to_shared()
            shared = SharedParams.create(flat)
            flat.rebind(shared.writable())
            pool = spawn_pool(
                cfg.num_workers,
                _init_train_worker,
                (shared_graph.shared_handle, shared.handle, model._config_dict()),
            )

        def train_batch(edge_ids: np.ndarray) -> float:
            step_seed = int(model._rng.integers(2**63 - 1))
            shards = [
                (s, i)
                for i, s in enumerate(np.array_split(edge_ids, cfg.parallel_shards))
                if s.size
            ]
            if pool is None:
                results = [_shard_step(model, s, step_seed, i) for s, i in shards]
            else:
                futures = [
                    pool.submit(_pool_shard_step, s, step_seed, i) for s, i in shards
                ]
                results = [f.result() for f in futures]
            return _reduce_and_step(model, flat, opt, results)

        model.aggregator.train()
        trainer = Trainer(
            epochs=cfg.epochs,
            batch_size=cfg.batch_size,
            rng=model._rng,
            callbacks=with_verbose([*model.callbacks, *callbacks], verbose),
            name=model.name,
        )
        model.loss_history = trainer.run(train_batch, num_items=graph.num_edges)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
        if shared is not None:
            # Re-privatize before unlinking: tensors must not keep viewing
            # a segment that is about to disappear.
            flat.rebind(flat.data.copy())
            shared.close()
        if shared_graph is not None and shared_graph is not graph:
            shared_graph.storage.close()

    model._final = model._final_embeddings()
    model._infer_seed = int(model._rng.integers(2**63 - 1))
    return model
