"""Hogwild training for the skip-gram baselines.

The SGNS update is the textbook Hogwild workload (Niu et al., 2011): each
``(center, context)`` pair touches a handful of rows of two big tables, and
collisions between concurrent updates are rare and bounded.  So instead of
the sync trainer's gradient protocol, the weight tables themselves move
into a shared segment, every worker applies its mini-batch updates
*lock-free* to the same bytes, and nobody reduces anything.

This module is the second sanctioned shared-write site under reprolint
PAR001 (with :mod:`repro.parallel.state`): workers re-derive writable views
over the shared tables and run the ordinary ``SkipGramNS.train_pairs`` on
them — ``np.add.at`` scatters straight into shared memory.

**Nondeterminism — by design.**  Update interleaving depends on OS
scheduling, lost updates between racing row writes are permitted, and the
reported per-epoch loss is each worker's local pre-update view.  Runs are
not bitwise-reproducible for ``num_workers >= 2`` even at a fixed seed;
quality is preserved statistically (the tests pin AUC within tolerance of
the serial path), which is the standard Hogwild guarantee.  For exact
reproducibility keep ``num_workers=1`` (the serial path).
"""

from __future__ import annotations

import numpy as np

from repro.core.trainer import TrainState
from repro.parallel.pool import _WORKER, spawn_pool
from repro.storage.shared import SharedArrayPack
from repro.utils.validation import check_positive


def _init_hogwild_worker(pack_handle, model_kwargs: dict, noise_weights) -> None:
    """Pool initializer: attach the tables, build a worker-side SGNS on them."""
    from repro.baselines.skipgram import SkipGramNS

    pack = SharedArrayPack.attach(pack_handle)
    model = SkipGramNS(noise_weights=noise_weights, seed=0, **model_kwargs)
    # Lock-free shared writes: the Hogwild contract, PAR001-sanctioned here.
    model.w_in = pack.array("w_in", writable=True)
    model.w_out = pack.array("w_out", writable=True)
    _WORKER["hogwild_pack"] = pack
    _WORKER["hogwild_model"] = model


def _hogwild_chunk(pairs: np.ndarray, seed: int, batch_size: int) -> tuple:
    """Pool task: one worker's SGD pass over its chunk of the pair list."""
    model = _WORKER["hogwild_model"]
    model._rng = np.random.default_rng(seed)  # negatives substream per chunk
    return model.train_pairs(pairs, batch_size=batch_size), int(pairs.shape[0])


def hogwild_train_corpus(
    model,
    sentences,
    window: int = 5,
    epochs: int = 1,
    batch_size: int = 64,
    num_workers: int = 2,
    callbacks=(),
    name: str = "SGNS",
) -> list[float]:
    """Train ``model`` (a :class:`~repro.baselines.skipgram.SkipGramNS`)
    on walk sentences with lock-free parallel updates.

    Mirrors ``SkipGramNS.train_corpus`` epoch for epoch: each epoch
    re-expands the corpus into shuffled pairs on the model's RNG, splits
    them into one contiguous chunk per worker, and lets the workers race
    over the shared tables.  Callbacks see the same
    :class:`~repro.core.trainer.TrainState` protocol as the serial trainer
    (weighted mean of the workers' local losses).

    On return the tables are re-privatized into ordinary arrays and the
    segment is unlinked, so the caller's model is indistinguishable from a
    serially trained one (up to Hogwild's nondeterministic values).
    """
    from repro.baselines.skipgram import sentences_to_pairs

    check_positive("num_workers", num_workers)
    if num_workers < 2:
        raise ValueError(
            f"hogwild needs num_workers >= 2, got {num_workers} "
            "(use the serial train_corpus path instead)"
        )
    check_positive("epochs", epochs)
    pack = SharedArrayPack.create({"w_in": model.w_in, "w_out": model.w_out})
    model_kwargs = dict(
        num_nodes=model.num_nodes,
        dim=model.dim,
        num_negatives=model.num_negatives,
        lr=model.lr,
        clip=model.clip,
        precision=model.precision,
    )
    pool = spawn_pool(
        num_workers,
        _init_hogwild_worker,
        (pack.handle, model_kwargs, model._noise_weights),
    )
    history: list[float] = []
    try:
        for cb in callbacks:
            begin = getattr(cb, "on_train_begin", None)
            if begin is not None:
                begin()
        for epoch in range(epochs):
            pairs = sentences_to_pairs(sentences, window, model._rng)
            chunks = [c for c in np.array_split(pairs, num_workers) if c.size]
            seeds = [int(model._rng.integers(2**63 - 1)) for _ in chunks]
            futures = [
                pool.submit(_hogwild_chunk, chunk, seed, batch_size)
                for chunk, seed in zip(chunks, seeds)
            ]
            total, count = 0.0, 0
            for f in futures:
                loss, n = f.result()
                total += loss * n
                count += n
            mean_loss = total / count
            history.append(mean_loss)
            state = TrainState(
                epoch=epoch + 1,
                epochs=epochs,
                mean_loss=mean_loss,
                history=history,
                name=name,
            )
            stop = False
            for cb in callbacks:
                if cb.on_epoch_end(state):
                    stop = True
            if stop:
                break
    finally:
        pool.shutdown(wait=True)
        # Re-privatize the trained tables before unlinking the segment.
        model.w_in = np.array(pack.array("w_in"))
        model.w_out = np.array(pack.array("w_out"))
        pack.close()
    return history
