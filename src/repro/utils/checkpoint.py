"""Versioned ``npz`` checkpoint format for embedding methods.

A checkpoint is a single ``.npz`` archive holding (a) a JSON header with the
format name, format version, the concrete method class, its constructor
configuration, the **precision policy** the model was trained under and any
JSON-serializable metadata (RNG state, loss history, …), and (b) the
method's parameter arrays verbatim.  Keeping the header *inside* the archive
makes checkpoints self-describing: ``load_checkpoint`` refuses anything
whose format or version it does not understand with a clear error instead of
a shape mismatch three layers down, and the loader can verify that the
header's precision agrees with the configuration it is about to rebuild the
model from (see :meth:`repro.base.EmbeddingMethod.load`).

The format is deliberately dumb — ``np.savez`` plus JSON — so checkpoints
stay readable from plain NumPy without importing this package.

**Crash safety.**  A checkpoint is *published atomically*: the archive is
written to a sibling temp file, flushed and fsynced, and only then renamed
over the target with ``os.replace`` — so at every instant the target path
holds either the complete previous checkpoint or the complete new one,
never a torn hybrid.  The header additionally records a CRC32 **checksum
per array**, verified on load, and an optional **stream watermark** (the
:class:`repro.stream.OnlineService` recovery cursor: ingested batch count,
absorbed-event count, stream head time).  Truncation, bit rot and torn
temp files all surface as a clear :class:`CheckpointError` naming what is
wrong instead of a shape mismatch three layers down.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.utils import faults

#: Identifies archives written by this module.
FORMAT = "repro.embedding_method"

#: Bumped whenever the layout changes incompatibly.  The precision,
#: checksum and watermark fields are *additive* header keys (absent means
#: "float64" / "unverified legacy archive" / "no stream state"), so none of
#: them bumped the version.
VERSION = 2

_HEADER_KEY = "__checkpoint_header__"


class CheckpointError(ValueError):
    """Raised when an archive is not a loadable checkpoint."""


@dataclass
class Checkpoint:
    """A parsed checkpoint: header fields plus the raw parameter arrays."""

    class_name: str
    version: int
    config: dict
    meta: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: Precision policy recorded at save time ("float64" for pre-policy
    #: archives, which never held anything else).
    precision: str = "float64"
    #: Stream watermark recorded by an online service (None for plain model
    #: checkpoints): where recovery resumes WAL replay.
    watermark: dict | None = None


def array_checksum(arr: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (C order) — the self-verification unit."""
    return zlib.crc32(np.ascontiguousarray(arr).tobytes())


def _resolve_npz_path(path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_checkpoint(
    path,
    class_name: str,
    config: dict,
    arrays: dict,
    meta: dict | None = None,
    precision: str = "float64",
    watermark: dict | None = None,
) -> Path:
    """Atomically write a versioned checkpoint archive; returns the path.

    ``config``, ``meta`` and ``watermark`` must be JSON-serializable;
    ``arrays`` maps names to numpy arrays (each one's CRC32 lands in the
    header for load-time verification).  ``precision`` records the policy
    the arrays were produced under so loaders can refuse inconsistent
    archives.  A ``.npz`` suffix is appended when missing (mirroring
    ``np.savez``).

    The archive is staged at ``<path>.tmp`` and published with
    ``os.replace`` after an fsync, so a crash at any point leaves the
    target either absent, the previous checkpoint, or the new one — never
    truncated.  A leftover ``.tmp`` from a crashed save is overwritten by
    the next save and ignored by :func:`load_checkpoint`.
    """
    payload = {}
    checksums = {}
    for name, arr in arrays.items():
        if name == _HEADER_KEY:
            raise CheckpointError(f"array name {name!r} is reserved")
        arr = np.asarray(arr)
        payload[name] = arr
        checksums[name] = array_checksum(arr)
    header = {
        "format": FORMAT,
        "version": VERSION,
        "class": class_name,
        "config": config,
        "precision": precision,
        "checksums": checksums,
        "meta": meta or {},
    }
    if watermark is not None:
        header["watermark"] = watermark
    try:
        encoded = json.dumps(header)
    except TypeError as exc:
        raise CheckpointError(f"checkpoint header is not JSON-serializable: {exc}")
    path = _resolve_npz_path(path)
    payload[_HEADER_KEY] = np.asarray(encoded)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        np.savez(faults.wrap_file(fh, "checkpoint.write"), **payload)
        fh.flush()
        os.fsync(fh.fileno())
    faults.crash_point("checkpoint.before_publish")
    os.replace(tmp, path)  # the checkpoint appears (or updates) atomically
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_checkpoint(path, verify: bool = True) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` when the file is missing, is not a
    checkpoint archive (truncated or corrupt zip included), carries an
    unsupported format/version header, or — with ``verify`` (the default)
    — when any array's bytes no longer match the CRC32 the header recorded
    for it.  Legacy archives without recorded checksums load with
    verification skipped.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _HEADER_KEY not in archive:
                raise CheckpointError(
                    f"{path} is not an embedding-method checkpoint (no header)"
                )
            header = json.loads(str(archive[_HEADER_KEY]))
            arrays = {
                name: archive[name] for name in archive.files if name != _HEADER_KEY
            }
    except (OSError, ValueError, zipfile.BadZipFile, KeyError, EOFError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(
            f"cannot read checkpoint {path}: {type(exc).__name__}: {exc} "
            "(truncated or corrupt archive? a crashed save never publishes "
            "a partial file, but bytes can rot after publication)"
        )

    if header.get("format") != FORMAT:
        raise CheckpointError(
            f"{path} has format {header.get('format')!r}, expected {FORMAT!r}"
        )
    version = header.get("version")
    if version != VERSION:
        raise CheckpointError(
            f"{path} was written with checkpoint version {version}, but this "
            f"code reads version {VERSION}; re-save the model with a matching "
            f"release"
        )
    checksums = header.get("checksums")
    if verify and checksums:
        recorded = set(checksums)
        present = set(arrays)
        if recorded != present:
            raise CheckpointError(
                f"{path}: archive arrays {sorted(present)} disagree with the "
                f"header's checksum manifest {sorted(recorded)} — the archive "
                "was modified after it was written"
            )
        for name, arr in arrays.items():
            actual = array_checksum(arr)
            if actual != int(checksums[name]):
                raise CheckpointError(
                    f"{path}: array {name!r} fails its checksum "
                    f"(recorded CRC32 {int(checksums[name])}, found {actual}) "
                    "— the archive is corrupt"
                )
    return Checkpoint(
        class_name=header["class"],
        version=version,
        config=header.get("config", {}),
        meta=header.get("meta", {}),
        arrays=arrays,
        precision=header.get("precision", "float64"),
        watermark=header.get("watermark"),
    )


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable state of a numpy Generator (bit generator + stream)."""
    return rng.bit_generator.state


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a Generator from :func:`rng_state` output."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_gen = getattr(np.random, name)()
    except AttributeError:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint")
    bit_gen.state = state
    return np.random.Generator(bit_gen)
