"""Versioned ``npz`` checkpoint format for embedding methods.

A checkpoint is a single ``.npz`` archive holding (a) a JSON header with the
format name, format version, the concrete method class, its constructor
configuration, the **precision policy** the model was trained under and any
JSON-serializable metadata (RNG state, loss history, …), and (b) the
method's parameter arrays verbatim.  Keeping the header *inside* the archive
makes checkpoints self-describing: ``load_checkpoint`` refuses anything
whose format or version it does not understand with a clear error instead of
a shape mismatch three layers down, and the loader can verify that the
header's precision agrees with the configuration it is about to rebuild the
model from (see :meth:`repro.base.EmbeddingMethod.load`).

The format is deliberately dumb — ``np.savez`` plus JSON — so checkpoints
stay readable from plain NumPy without importing this package.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Identifies archives written by this module.
FORMAT = "repro.embedding_method"

#: Bumped whenever the layout changes incompatibly.  The precision field is
#: an *additive* header key (absent means "float64", the historical
#: behavior), so it did not bump the version.
VERSION = 2

_HEADER_KEY = "__checkpoint_header__"


class CheckpointError(ValueError):
    """Raised when an archive is not a loadable checkpoint."""


@dataclass
class Checkpoint:
    """A parsed checkpoint: header fields plus the raw parameter arrays."""

    class_name: str
    version: int
    config: dict
    meta: dict = field(default_factory=dict)
    arrays: dict = field(default_factory=dict)
    #: Precision policy recorded at save time ("float64" for pre-policy
    #: archives, which never held anything else).
    precision: str = "float64"


def save_checkpoint(
    path,
    class_name: str,
    config: dict,
    arrays: dict,
    meta: dict | None = None,
    precision: str = "float64",
) -> Path:
    """Write a versioned checkpoint archive; returns the resolved path.

    ``config`` and ``meta`` must be JSON-serializable; ``arrays`` maps names
    to numpy arrays.  ``precision`` records the policy the arrays were
    produced under so loaders can refuse inconsistent archives.  A ``.npz``
    suffix is appended when missing (mirroring ``np.savez``).
    """
    header = {
        "format": FORMAT,
        "version": VERSION,
        "class": class_name,
        "config": config,
        "precision": precision,
        "meta": meta or {},
    }
    try:
        encoded = json.dumps(header)
    except TypeError as exc:
        raise CheckpointError(f"checkpoint header is not JSON-serializable: {exc}")
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    payload = {_HEADER_KEY: np.asarray(encoded)}
    for name, arr in arrays.items():
        if name == _HEADER_KEY:
            raise CheckpointError(f"array name {name!r} is reserved")
        payload[name] = np.asarray(arr)
    np.savez(path, **payload)
    return path


def load_checkpoint(path) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` when the file is missing, is not a
    checkpoint archive, or carries an unsupported format/version header.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            if _HEADER_KEY not in archive:
                raise CheckpointError(
                    f"{path} is not an embedding-method checkpoint (no header)"
                )
            header = json.loads(str(archive[_HEADER_KEY]))
            arrays = {
                name: archive[name] for name in archive.files if name != _HEADER_KEY
            }
    except (OSError, ValueError) as exc:
        if isinstance(exc, CheckpointError):
            raise
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}")

    if header.get("format") != FORMAT:
        raise CheckpointError(
            f"{path} has format {header.get('format')!r}, expected {FORMAT!r}"
        )
    version = header.get("version")
    if version != VERSION:
        raise CheckpointError(
            f"{path} was written with checkpoint version {version}, but this "
            f"code reads version {VERSION}; re-save the model with a matching "
            f"release"
        )
    return Checkpoint(
        class_name=header["class"],
        version=version,
        config=header.get("config", {}),
        meta=header.get("meta", {}),
        arrays=arrays,
        precision=header.get("precision", "float64"),
    )


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable state of a numpy Generator (bit generator + stream)."""
    return rng.bit_generator.state


def restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a Generator from :func:`rng_state` output."""
    name = state.get("bit_generator", "PCG64")
    try:
        bit_gen = getattr(np.random, name)()
    except AttributeError:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint")
    bit_gen.state = state
    return np.random.Generator(bit_gen)
