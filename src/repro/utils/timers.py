"""Wall-clock timing helpers used by the efficiency study (Table VIII)."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None
