"""Argument validation shared across the package.

All validators raise ``ValueError`` with the offending name and value, so
misconfiguration fails loudly at construction time rather than as a numerical
surprise mid-training.
"""

from __future__ import annotations


def check_positive(name: str, value) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value) -> None:
    """Require ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_fraction(name: str, value, inclusive: bool = False) -> None:
    """Require ``value`` in ``(0, 1)`` (or ``[0, 1]`` when inclusive)."""
    ok = 0.0 <= value <= 1.0 if inclusive else 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")
