"""Shared utilities: RNG handling, alias sampling, timing, validation,
checkpoint archives, fault injection."""

from repro.utils.alias import AliasTable, PackedAliasTables, build_alias_tables
from repro.utils.checkpoint import (
    Checkpoint,
    CheckpointError,
    array_checksum,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.faults import InjectedCrash
from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timers import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_non_negative,
)

__all__ = [
    "AliasTable",
    "PackedAliasTables",
    "build_alias_tables",
    "Checkpoint",
    "CheckpointError",
    "InjectedCrash",
    "array_checksum",
    "load_checkpoint",
    "save_checkpoint",
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_fraction",
    "check_positive",
    "check_non_negative",
]
