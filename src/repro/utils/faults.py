"""Fault injection for crash-safety testing.

The durability layer (the write-ahead log in ``repro.stream.wal``, the
atomic checkpoints in ``repro.utils.checkpoint``, the memmap store's
finalize) claims to survive a process dying at *any* instant.  That claim is
only testable if tests can actually kill the process at every interesting
instant — so the durable code paths are instrumented with **named injection
points**, and this module arms them:

- :func:`crash_point` — a named marker inside a durable code path.  A no-op
  (one global ``None`` check) unless a test armed that name via
  :func:`inject`, in which case it raises :class:`InjectedCrash` — the
  simulated ``kill -9`` (from the filesystem's point of view a raised
  exception that abandons all in-memory state is exactly a process death;
  what survives is what was written and flushed).
- :func:`torn_write` — write ``data`` to a file, but when the named point is
  armed with a ``byte_limit``, write only that many bytes and crash: a
  **torn write**, the half-record a real crash leaves at the tail of a log.
- :func:`wrap_file` — wrap an open binary file so the same byte budget
  applies to writers we don't control line by line (``np.savez`` writing a
  checkpoint archive).

Tests arm exactly one fault at a time::

    with faults.inject("wal.append.synced"):
        with pytest.raises(InjectedCrash):
            service.ingest(batch)          # dies after the WAL fsync
    recovered = OnlineService.recover(ckpt, wal_dir)

:data:`SERVICE_INJECTION_POINTS` enumerates every point in the service's
ingest -> WAL -> absorb -> checkpoint cycle, so the crash-everywhere sweep
(``tests/stream/test_recovery.py``, ``faults`` marker) can assert exact
recovery at each one without hand-maintaining the list in two places.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "InjectedCrash",
    "SERVICE_INJECTION_POINTS",
    "active_fault",
    "crash_point",
    "inject",
    "torn_write",
    "wrap_file",
]


class InjectedCrash(RuntimeError):
    """The simulated process death raised at an armed injection point."""


#: Every injection point in the OnlineService ingest->WAL->checkpoint cycle,
#: in the order the cycle hits them.  Points suffixed ``:torn`` are armed
#: with a byte limit (a partial write is left on disk); the rest crash
#: cleanly at the marker.  The crash-everywhere recovery sweep iterates this.
SERVICE_INJECTION_POINTS = (
    "service.ingest.validated",  # batch validated; nothing durable yet
    "wal.append.begin",  # inside the WAL, before any bytes hit the segment
    "wal.append.write:torn",  # record half-written: torn tail in the log
    "wal.append.synced",  # record durable, graph not yet touched
    "service.ingest.applied",  # graph extended, counters not yet updated
    "service.absorb.begin",  # before partial_fit trains
    "service.absorb.trained",  # trained, staleness not yet reset
    "service.checkpoint.begin",  # before the snapshot starts
    "checkpoint.write:torn",  # temp archive half-written, old ckpt intact
    "checkpoint.before_publish",  # temp complete + fsynced, not yet renamed
    "service.checkpoint.published",  # os.replace done, WAL not yet pruned
)


class _Fault:
    """One armed fault: a named point, an optional skip count and byte limit."""

    def __init__(self, point: str, skip: int = 0, byte_limit: int | None = None):
        self.point = str(point)
        self.skip = int(skip)
        self.byte_limit = None if byte_limit is None else int(byte_limit)
        self.hits = 0
        self.fired = False

    def _arm_hit(self) -> bool:
        """Count a hit; True when this is the armed occurrence."""
        if self.fired:
            return False
        self.hits += 1
        if self.hits <= self.skip:
            return False
        self.fired = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_Fault({self.point!r}, skip={self.skip}, "
            f"byte_limit={self.byte_limit}, fired={self.fired})"
        )


#: The single armed fault (tests arm one at a time), or None.
_ACTIVE: _Fault | None = None


def active_fault() -> _Fault | None:
    """The currently armed fault, or None (observability for tests)."""
    return _ACTIVE


@contextmanager
def inject(point: str, *, skip: int = 0, byte_limit: int | None = None):
    """Arm one injection point for the duration of the block.

    ``point`` names the marker to trip (for ``:torn`` points pass the bare
    name and a ``byte_limit``).  ``skip`` lets the fault pass the first
    ``skip`` hits before firing, so a sweep can crash the *n*-th WAL append
    rather than the first.  ``byte_limit`` turns the point into a torn
    write: the instrumented writer emits exactly that many bytes, then
    crashes.  Yields the armed fault (``fault.fired`` tells whether the code
    under test reached the point at all).  Nesting is rejected — one fault
    at a time keeps every crash scenario interpretable.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(f"a fault is already armed: {_ACTIVE!r}")
    fault = _Fault(point, skip=skip, byte_limit=byte_limit)
    _ACTIVE = fault
    try:
        yield fault
    finally:
        _ACTIVE = None


def crash_point(name: str) -> None:
    """Marker inside a durable code path; raises when ``name`` is armed.

    Armed points carrying a ``byte_limit`` do **not** fire here — they fire
    inside :func:`torn_write` / :func:`wrap_file`, where the partial bytes
    can actually be produced.
    """
    fault = _ACTIVE
    if fault is None or fault.point != name or fault.byte_limit is not None:
        return
    if fault._arm_hit():
        raise InjectedCrash(f"injected crash at {name!r}")


def torn_write(fh, data: bytes, name: str) -> None:
    """Write ``data`` to ``fh`` — torn short when ``name`` is armed.

    The unarmed path is a single ``fh.write(data)``.  Armed with a byte
    limit, exactly ``min(byte_limit, len(data))`` bytes are written and
    flushed (they must be *on disk* — a torn write the crash never persisted
    would be indistinguishable from no write), then :class:`InjectedCrash`
    is raised.
    """
    fault = _ACTIVE
    if (
        fault is None
        or fault.point != name
        or fault.byte_limit is None
        or not fault._arm_hit()
    ):
        fh.write(data)
        return
    fh.write(data[: fault.byte_limit])
    fh.flush()
    raise InjectedCrash(
        f"injected torn write at {name!r}: {min(fault.byte_limit, len(data))} "
        f"of {len(data)} bytes persisted"
    )


def wrap_file(fh, name: str):
    """Wrap an open binary file so a byte budget applies across writes.

    Returns ``fh`` untouched unless ``name`` is armed with a ``byte_limit``;
    armed, the wrapper forwards everything but counts bytes through
    ``write`` and crashes once the budget is spent — for writers that emit
    many internal writes we cannot intercept individually (``np.savez``
    building a checkpoint archive).
    """
    fault = _ACTIVE
    if fault is None or fault.point != name or fault.byte_limit is None:
        return fh
    return _BudgetedFile(fh, fault)


class _BudgetedFile:
    """File proxy that crashes after its fault's byte budget is written."""

    def __init__(self, fh, fault: _Fault):
        self._fh = fh
        self._fault = fault
        self._written = 0

    def write(self, data):
        budget = self._fault.byte_limit - self._written
        if budget <= 0 or self._fault.fired:
            self._fault.fired = True
            raise InjectedCrash(
                f"injected crash at {self._fault.point!r}: byte budget "
                f"{self._fault.byte_limit} exhausted"
            )
        chunk = bytes(data)[: max(budget, 0)]
        n = self._fh.write(chunk)
        self._written += len(chunk)
        if len(chunk) < len(data):
            self._fh.flush()
            self._fault.fired = True
            raise InjectedCrash(
                f"injected torn write at {self._fault.point!r}: byte budget "
                f"{self._fault.byte_limit} exhausted"
            )
        return n

    def __getattr__(self, attr):
        return getattr(self._fh, attr)
