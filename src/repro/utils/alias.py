"""Walker's alias method for O(1) sampling from discrete distributions.

Used by the node2vec walker (per-edge transition tables), LINE's edge sampler
and the degree-biased negative sampler (``P_n(v) ~ d_v^0.75``), all of which
draw millions of samples from fixed distributions.

Two entry points:

- :class:`AliasTable` — one distribution, the classic Vose construction.
- :class:`PackedAliasTables` — one table per CSR segment (e.g. one per graph
  node), all built in a single vectorized pass: every segment runs its own
  small/large pairing, but the pairings advance in lockstep across segments
  so the Python-level loop count is ``max`` segment size, not ``sum``.  This
  is what the batched walk engine uses for first-order node2vec transitions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


def build_alias_tables(weights, indptr) -> tuple[np.ndarray, np.ndarray]:
    """Build alias tables for every CSR segment in one vectorized pass.

    ``weights`` is a flat array of non-negative unnormalized probabilities and
    ``indptr`` the segment boundaries (segment ``s`` spans
    ``weights[indptr[s]:indptr[s+1]]``).  Empty segments are allowed; every
    non-empty segment must have a positive total.

    Returns ``(prob, alias)`` flat arrays aligned with ``weights``.  ``alias``
    holds *flat* indices (always inside the owning segment).  Entry ``i``
    resolves to ``i`` with probability ``prob[i]`` and to ``alias[i]``
    otherwise, once a segment and a uniform slot inside it were chosen.
    """
    w = np.asarray(weights, dtype=np.float64)
    indptr = np.asarray(indptr, dtype=np.int64)
    if w.ndim != 1:
        raise ValueError("weights must be a 1-D array")
    if indptr.ndim != 1 or indptr.size < 1 or indptr[-1] != w.size:
        raise ValueError("indptr must be 1-D and end at len(weights)")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")

    sizes = np.diff(indptr)
    if np.any(sizes < 0):
        raise ValueError("indptr must be non-decreasing")
    num_seg = sizes.size
    totals = np.zeros(num_seg, dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        totals[nonempty] = np.add.reduceat(w, indptr[:-1][nonempty])
    if np.any(nonempty & (totals <= 0)):
        raise ValueError("every non-empty segment must have positive total weight")

    prob = np.ones(w.size, dtype=np.float64)
    alias = np.arange(w.size, dtype=np.int64)
    if w.size == 0:
        return prob, alias

    # Scale every segment so its mean entry is exactly 1.
    scale = np.zeros(num_seg, dtype=np.float64)
    scale[nonempty] = sizes[nonempty] / totals[nonempty]
    scaled = w * np.repeat(scale, sizes)

    # Per-segment small/large stacks laid out in flat arrays: segment s's
    # stack space is [indptr[s], indptr[s+1]).  Entries are pushed in index
    # order, matching the LIFO discipline of the classic construction.
    seg_of = np.repeat(np.arange(num_seg, dtype=np.int64), sizes)
    small_mask = scaled < 1.0
    base = indptr[:-1]

    def _stack_init(mask):
        csum = np.cumsum(mask)
        pad = np.concatenate([[0], csum])
        rank = pad[1:] - 1 - pad[base[seg_of]]
        stack = np.empty(w.size, dtype=np.int64)
        idx = np.flatnonzero(mask)
        stack[base[seg_of[idx]] + rank[idx]] = idx
        top = np.bincount(seg_of[idx], minlength=num_seg).astype(np.int64)
        return stack, top

    small_stack, small_top = _stack_init(small_mask)
    large_stack, large_top = _stack_init(~small_mask)

    active = np.flatnonzero((small_top > 0) & (large_top > 0))
    while active.size:
        b = base[active]
        s = small_stack[b + small_top[active] - 1]
        l = large_stack[b + large_top[active] - 1]
        prob[s] = scaled[s]
        alias[s] = l
        small_top[active] -= 1
        scaled[l] += scaled[s] - 1.0
        demote = scaled[l] < 1.0
        if demote.any():
            d = active[demote]
            large_top[d] -= 1
            small_stack[base[d] + small_top[d]] = l[demote]
            small_top[d] += 1
        active = active[(small_top[active] > 0) & (large_top[active] > 0)]
    # Whatever is left on either stack has residual mass 1 up to float error;
    # its prob stays at the initialized 1.0 (alias points at itself).
    return prob, alias


class PackedAliasTables:
    """Alias tables for many distributions packed in CSR form.

    One table per segment of ``indptr``; all tables are constructed together
    by :func:`build_alias_tables`.  :meth:`sample` draws one slot from each of
    a batch of segments with two vectorized RNG calls — the batched walk
    engine's per-step transition sampler.
    """

    __slots__ = ("_indptr", "_sizes", "_prob", "_alias")

    def __init__(self, weights, indptr) -> None:
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._prob, self._alias = build_alias_tables(weights, self._indptr)
        self._sizes = np.diff(self._indptr)

    def __len__(self) -> int:
        return self._sizes.size

    def table_sizes(self) -> np.ndarray:
        """Number of entries of every table (read-only view)."""
        return self._sizes

    def sample(self, rows, rng=None) -> np.ndarray:
        """Draw one *local* index from each requested table.

        ``rows`` is an array of segment ids (repeats allowed); every row must
        be non-empty.  The draw order is one bounded-integer batch followed by
        one uniform batch, which at batch size 1 consumes the RNG stream
        exactly like ``AliasTable.sample`` (integer draw, then coin).
        """
        rng = ensure_rng(rng)
        rows = np.asarray(rows, dtype=np.int64)
        sizes = self._sizes[rows]
        if np.any(sizes <= 0):
            raise ValueError("cannot sample from an empty table")
        i = rng.integers(0, sizes)
        coin = rng.random(rows.size)
        flat = self._indptr[rows] + i
        return np.where(coin < self._prob[flat], i, self._alias[flat] - self._indptr[rows])

    def probabilities(self, row: int) -> np.ndarray:
        """Reconstruct one table's normalized probability vector (testing)."""
        lo, hi = self._indptr[row], self._indptr[row + 1]
        n = hi - lo
        p = np.zeros(n, dtype=np.float64)
        for i in range(n):
            p[i] += self._prob[lo + i]
            p[self._alias[lo + i] - lo] += 1.0 - self._prob[lo + i]
        return p / n


class AliasTable:
    """Preprocessed discrete distribution supporting O(1) draws.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero unnormalized probabilities.
    """

    __slots__ = ("_prob", "_alias", "_n")

    def __init__(self, weights) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not sum to zero")

        n = w.size
        scaled = w * (n / total)
        prob = np.empty(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are exactly 1 up to floating error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

        self._prob = prob
        self._alias = alias
        self._n = n

    def __len__(self) -> int:
        return self._n

    def sample(self, rng=None, size=None):
        """Draw index/indices distributed according to the stored weights."""
        rng = ensure_rng(rng)
        if size is None:
            i = int(rng.integers(self._n))
            return i if rng.random() < self._prob[i] else int(self._alias[i])
        idx = rng.integers(self._n, size=size)
        coin = rng.random(size=size)
        take_alias = coin >= self._prob[idx]
        out = np.where(take_alias, self._alias[idx], idx)
        return out.astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """Reconstruct the normalized probability vector (for testing)."""
        p = np.zeros(self._n, dtype=np.float64)
        for i in range(self._n):
            p[i] += self._prob[i]
            p[self._alias[i]] += 1.0 - self._prob[i]
        return p / self._n
