"""Walker's alias method for O(1) sampling from discrete distributions.

Used by the node2vec walker (per-edge transition tables), LINE's edge sampler
and the degree-biased negative sampler (``P_n(v) ~ d_v^0.75``), all of which
draw millions of samples from fixed distributions.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class AliasTable:
    """Preprocessed discrete distribution supporting O(1) draws.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero unnormalized probabilities.
    """

    __slots__ = ("_prob", "_alias", "_n")

    def __init__(self, weights) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise ValueError("weights must be finite and non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not sum to zero")

        n = w.size
        scaled = w * (n / total)
        prob = np.empty(n, dtype=np.float64)
        alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are exactly 1 up to floating error.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0

        self._prob = prob
        self._alias = alias
        self._n = n

    def __len__(self) -> int:
        return self._n

    def sample(self, rng=None, size=None):
        """Draw index/indices distributed according to the stored weights."""
        rng = ensure_rng(rng)
        if size is None:
            i = int(rng.integers(self._n))
            return i if rng.random() < self._prob[i] else int(self._alias[i])
        idx = rng.integers(self._n, size=size)
        coin = rng.random(size=size)
        take_alias = coin >= self._prob[idx]
        out = np.where(take_alias, self._alias[idx], idx)
        return out.astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """Reconstruct the normalized probability vector (for testing)."""
        p = np.zeros(self._n, dtype=np.float64)
        for i in range(self._n):
            p[i] += self._prob[i]
            p[self._alias[i]] += 1.0 - self._prob[i]
        return p / self._n
