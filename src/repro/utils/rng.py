"""Random-number-generator plumbing.

Every stochastic component in this package accepts either a seed or a
:class:`numpy.random.Generator`.  Funnelling construction through
:func:`ensure_rng` keeps experiments reproducible end to end: a single integer
seed at the harness level determines walks, negative samples, initial weights
and data splits.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged, so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are statistically independent of each other and of the parent's
    future output, which lets parallel components (e.g. per-walk samplers)
    stay reproducible regardless of execution order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
