"""Degree-biased negative sampling (Section IV.D).

Negatives are drawn from the noise distribution ``P_n(v) ∝ d_v^0.75`` [17, 38]
— the word2vec convention of sampling "negative words" by frequency.  Draws
colliding with the positive edge's endpoints are rejected and redrawn; a flag
additionally rejects existing neighbors (stricter than the paper, useful for
ablation).
"""

from __future__ import annotations

import numpy as np

from repro.graph.temporal_graph import TemporalGraph
from repro.utils.alias import AliasTable
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_non_negative


class NegativeSampler:
    """Alias-sampled noise distribution over nodes."""

    def __init__(self, graph: TemporalGraph, power: float = 0.75, exclude_neighbors: bool = False):
        check_non_negative("power", power)
        self.graph = graph
        self.power = power
        self.exclude_neighbors = exclude_neighbors
        weights = graph.degrees().astype(np.float64) ** power
        self._table = AliasTable(weights)

    def sample(self, shape, rng=None, exclude_x=None, exclude_y=None, max_tries: int = 32) -> np.ndarray:
        """Draw negatives of the given ``shape = (B, Q)``.

        ``exclude_x``/``exclude_y`` are length-``B`` endpoint arrays; sampled
        negatives equal to either endpoint of their row (or, optionally,
        adjacent to ``exclude_x``) are redrawn.  After ``max_tries`` rounds
        any survivors are kept — with ``Q`` small and graphs non-trivial this
        is vanishingly rare and only risks a slightly easier negative.
        """
        rng = ensure_rng(rng)
        out = self._table.sample(rng, size=shape).reshape(shape)
        if exclude_x is None and exclude_y is None:
            return out

        ex = None if exclude_x is None else np.asarray(exclude_x).reshape(-1, 1)
        ey = None if exclude_y is None else np.asarray(exclude_y).reshape(-1, 1)
        for _ in range(max_tries):
            bad = np.zeros(shape, dtype=bool)
            if ex is not None:
                bad |= out == ex
            if ey is not None:
                bad |= out == ey
            if self.exclude_neighbors and ex is not None:
                for i in range(shape[0]):
                    for j in range(shape[1]):
                        if not bad[i, j] and self.graph.has_edge(
                            int(ex[i, 0]), int(out[i, j])
                        ):
                            bad[i, j] = True
            n_bad = int(bad.sum())
            if n_bad == 0:
                break
            out[bad] = self._table.sample(rng, size=n_bad)
        return out
